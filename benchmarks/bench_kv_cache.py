"""Benchmark — the proxy read cache: hot-key hit rates vs replica read cost.

Three claims, the first two on the discrete-event simulator (deterministic),
the third on the asyncio backend over loopback TCP:

* **Zipf sweep**: at 8 clients behind one proxy, turning the lease-backed
  read cache on cuts *replica read sub-ops per operation* -- at skew 1.2
  (a hot-key-heavy distribution) by >= 3x -- because repeat reads of
  popular keys are answered from the proxy's cache without any replica
  round.  Reads stay atomic: entries are only served while a quorum of
  replicas holds the proxy's lease, and writes invalidate before they ack.
* **Invalidation storm**: a write-heavy workload over few keys forces the
  servers to chase leases with invalidations on nearly every write; the
  cache degrades gracefully (low hit rate, no wedge) and atomicity holds.
* **Asyncio**: the same cache on the real transport -- cached reads cut
  replica read sub-ops per op and the per-key checker stays green.

Run as a pytest-benchmark test or directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_kv_cache.py -s
    PYTHONPATH=src python benchmarks/bench_kv_cache.py [--quick]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.bench.report import format_rows
from repro.kvstore import (
    generate_workload,
    run_asyncio_kv_workload,
    run_sim_kv_workload,
)

from _bench_utils import (
    bench_json_path,
    print_section,
    result_row,
    write_bench_json,
    write_metrics_json,
)

SKEWS = (0.6, 1.0, 1.2)
LEASE_TTL = 480.0  # sim virtual units: long enough that expiry is not the story


# -- (a) zipf sweep: cache off vs on -------------------------------------------

def run_zipf_sweep(skews=SKEWS, num_clients=8, ops_per_client=150,
                   num_keys=32):
    """The same zipf workload per skew, proxied, with the cache off and on."""
    rows = []
    for skew in skews:
        workload = generate_workload(
            num_clients=num_clients, ops_per_client=ops_per_client,
            num_keys=num_keys, read_fraction=0.9, key_skew=skew, seed=11,
        )
        common = dict(num_shards=4, num_groups=2, use_proxy=True,
                      num_proxies=1)
        cold = run_sim_kv_workload(workload, **common)
        warm = run_sim_kv_workload(
            workload, read_cache=128, lease_ttl=LEASE_TTL, **common
        )
        rows.append((skew, cold, warm))
    return rows


def _sweep_table(rows):
    return [
        {
            "skew": f"{skew:.1f}",
            "hit rate": f"{warm.cache_hit_rate():.1%}",
            "read subs/op off": f"{cold.read_subs_per_op():.2f}",
            "read subs/op on": f"{warm.read_subs_per_op():.2f}",
            "ratio": f"{cold.read_subs_per_op() / warm.read_subs_per_op():.2f}x",
            "read p50 on/off": (
                f"{warm.read_stats().p50:.1f}/{cold.read_stats().p50:.1f}"
            ),
            "read p99 on/off": (
                f"{warm.read_stats().p99:.1f}/{cold.read_stats().p99:.1f}"
            ),
            "atomic": cold.check().all_atomic and warm.check().all_atomic,
        }
        for skew, cold, warm in rows
    ]


# -- (b) invalidation storm ----------------------------------------------------

def run_invalidation_storm(num_clients=6, ops_per_client=80, num_keys=6):
    """Write-heavy traffic over few hot keys: every cached entry is chased."""
    workload = generate_workload(
        num_clients=num_clients, ops_per_client=ops_per_client,
        num_keys=num_keys, read_fraction=0.4, key_skew=1.2, seed=13,
    )
    return run_sim_kv_workload(
        workload, num_shards=2, num_groups=1, use_proxy=True, num_proxies=1,
        read_cache=64, lease_ttl=LEASE_TTL,
    )


def _storm_table(result):
    cache = result.cache or {}
    return [{
        "ops": result.completed_ops,
        "hit rate": f"{result.cache_hit_rate():.1%}",
        "invalidations": cache.get("invalidations", 0),
        "write deferrals": cache.get("write_deferrals", 0),
        "leases granted": cache.get("leases_granted", 0),
        "atomic": result.check().all_atomic,
    }]


# -- (c) cached reads over loopback TCP ----------------------------------------

def run_asyncio_cached(num_clients=4, ops_per_client=25, num_keys=12):
    workload = generate_workload(
        num_clients=num_clients, ops_per_client=ops_per_client,
        num_keys=num_keys, read_fraction=0.9, key_skew=1.2, seed=5,
    )
    common = dict(num_shards=2, num_groups=1, use_proxy=True, num_proxies=1)
    cold = run_asyncio_kv_workload(workload, **common)
    warm = run_asyncio_kv_workload(workload, read_cache=64, **common)
    return cold, warm


def _asyncio_table(cold, warm):
    return [
        {
            "cache": name,
            "read subs/op": f"{result.read_subs_per_op():.2f}",
            "hit rate": (
                f"{result.cache_hit_rate():.1%}"
                if result.cache is not None else "-"
            ),
            "read p50": f"{result.read_stats().p50 * 1000:.1f}ms",
            "atomic": result.check().all_atomic,
        }
        for name, result in (("off", cold), ("on", warm))
    ]


# -- assertions shared by pytest and __main__ ----------------------------------

def check_sweep(rows, min_hot_ratio=3.0):
    ratios = {}
    for skew, cold, warm in rows:
        assert cold.check().all_atomic
        assert warm.check().all_atomic
        assert cold.completed_ops == warm.completed_ops
        assert warm.cache is not None and warm.cache["hits"] > 0
        ratios[skew] = cold.read_subs_per_op() / warm.read_subs_per_op()
    hottest = max(ratios)
    assert ratios[hottest] >= min_hot_ratio, (
        f"cache cut read subs/op only {ratios[hottest]:.2f}x at skew "
        f"{hottest} (want >= {min_hot_ratio}x); ratios: "
        + ", ".join(f"{s}: {r:.2f}" for s, r in sorted(ratios.items()))
    )
    # Every skew wins, not just the hot one: with the working set inside
    # the cache, even mild skew repeats keys often enough to pay off.
    # (Low skew can win *more* -- fewer writes land on the cached hot keys,
    # so fewer invalidations -- which is why no monotonicity is asserted.)
    assert all(ratio > 1.5 for ratio in ratios.values()), ratios


def check_storm(result):
    assert result.check().all_atomic
    assert result.cache is not None
    # Write-heavy hot keys means held leases are chased constantly...
    assert result.cache["invalidations"] > 0
    # ...and nothing wedges: every op completes despite the deferrals.
    assert result.completed_ops > 0


def check_asyncio(cold, warm):
    assert cold.check().all_atomic
    assert warm.check().all_atomic
    assert warm.cache is not None and warm.cache["hits"] > 0
    assert warm.read_subs_per_op() < cold.read_subs_per_op()


# -- pytest entry points --------------------------------------------------------

def test_kv_cache_zipf_sweep(benchmark):
    rows = benchmark.pedantic(run_zipf_sweep, rounds=1, iterations=1)
    print_section("KV cache — replica read sub-ops/op, cache off vs on (sim)")
    print(format_rows(_sweep_table(rows),
                      ["skew", "hit rate", "read subs/op off",
                       "read subs/op on", "ratio", "read p50 on/off",
                       "read p99 on/off", "atomic"]))
    check_sweep(rows)


def test_kv_cache_invalidation_storm(benchmark):
    result = benchmark.pedantic(run_invalidation_storm, rounds=1, iterations=1)
    print_section("KV cache — invalidation storm (sim)")
    print(format_rows(_storm_table(result),
                      ["ops", "hit rate", "invalidations", "write deferrals",
                       "leases granted", "atomic"]))
    check_storm(result)


def test_kv_cache_asyncio(benchmark):
    cold, warm = benchmark.pedantic(run_asyncio_cached, rounds=1, iterations=1)
    print_section("KV cache — cached reads over loopback TCP")
    print(format_rows(_asyncio_table(cold, warm),
                      ["cache", "read subs/op", "hit rate", "read p50",
                       "atomic"]))
    check_asyncio(cold, warm)


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    if quick:
        sweep = run_zipf_sweep(skews=(1.2,), ops_per_client=80, num_keys=24)
        storm = run_invalidation_storm(num_clients=4, ops_per_client=40)
        net = run_asyncio_cached(num_clients=3, ops_per_client=12)
    else:
        sweep = run_zipf_sweep()
        storm = run_invalidation_storm()
        net = run_asyncio_cached()
    print_section("KV cache — replica read sub-ops/op, cache off vs on (sim)")
    print(format_rows(_sweep_table(sweep),
                      ["skew", "hit rate", "read subs/op off",
                       "read subs/op on", "ratio", "read p50 on/off",
                       "read p99 on/off", "atomic"]))
    print_section("KV cache — invalidation storm (sim)")
    print(format_rows(_storm_table(storm),
                      ["ops", "hit rate", "invalidations", "write deferrals",
                       "leases granted", "atomic"]))
    print_section("KV cache — cached reads over loopback TCP")
    print(format_rows(_asyncio_table(*net),
                      ["cache", "read subs/op", "hit rate", "read p50",
                       "atomic"]))
    check_sweep(sweep, min_hot_ratio=3.0 if not quick else 2.0)
    check_storm(storm)
    check_asyncio(*net)
    json_path = bench_json_path(sys.argv[1:])
    if json_path:
        def cache_row(result, scenario):
            row = result_row(result, scenario)
            row["read_subs_per_op"] = round(result.read_subs_per_op(), 3)
            if result.cache is not None:
                row["cache"] = dict(result.cache)
                row["cache_hit_rate"] = round(result.cache_hit_rate(), 4)
            return row

        write_bench_json(json_path, "kv_cache", {
            "zipf": [
                {"skew": skew,
                 "cold": cache_row(cold, "cache-off"),
                 "warm": cache_row(warm, "cache-on"),
                 "read_subs_ratio": round(
                     cold.read_subs_per_op() / warm.read_subs_per_op(), 3)}
                for skew, cold, warm in sweep
            ],
            "storm": cache_row(storm, "invalidation-storm"),
            "asyncio": [cache_row(net[0], "cache-off"),
                        cache_row(net[1], "cache-on")],
        })
        write_metrics_json(json_path, "kv_cache_sim", sweep[-1][2])
        write_metrics_json(json_path, "kv_cache_asyncio", net[1])
    print("\nall read-cache checks passed")
