"""Benchmark X4 — quantifying the inconsistency of fast implementations.

The paper's conclusion sketches its future work: fix the fast (and therefore
non-atomic) implementations and quantify *how much* inconsistency they
introduce.  This benchmark performs that measurement with the staleness
metrics of :mod:`repro.consistency.staleness`:

* the atomic W2R2 / W2R1 implementations: 0% stale reads, k-atomicity = 1;
* the W1R2 and W1R1 candidates under write contention: a measurable fraction
  of stale reads, k-atomicity ≥ 2, but bounded version lag -- the
  "probabilistically atomic" behaviour the authors' companion work (reference
  [28]) studies.
"""

from __future__ import annotations


from repro.bench.report import format_rows
from repro.consistency import check_atomicity, measure_staleness
from repro.protocols.registry import build_protocol
from repro.sim.delays import UniformDelay
from repro.sim.runtime import Simulation
from repro.util.ids import client_ids, server_ids
from repro.workloads.generators import apply_open_loop, asymmetric_write_contention

from _bench_utils import print_section

PROTOCOLS = ["abd-mwmr", "fast-read-mwmr", "fast-write-attempt", "fast-rw-attempt"]


def _measure(key: str, seeds=(0, 1, 2)):
    total_reads = 0
    stale_reads = 0
    inversions = 0
    max_lag = 0
    atomic_runs = 0
    for seed in seeds:
        protocol = build_protocol(key, server_ids(5), 1, readers=2, writers=2)
        simulation = Simulation(protocol, delay_model=UniformDelay(0.5, 1.5, seed=seed))
        workload = asymmetric_write_contention(
            client_ids("w", protocol.writers), client_ids("r", 2), rounds=3
        )
        apply_open_loop(simulation, workload)
        result = simulation.run()
        verdict = check_atomicity(result.history)
        report = measure_staleness(result.history)
        total_reads += report.read_count
        stale_reads += report.stale_read_count
        inversions += report.inversions
        max_lag = max(max_lag, report.max_version_lag)
        atomic_runs += 1 if verdict.atomic else 0
    return {
        "protocol": key,
        "runs": len(seeds),
        "atomic runs": atomic_runs,
        "reads": total_reads,
        "stale reads": stale_reads,
        "stale %": round(100.0 * stale_reads / max(1, total_reads), 1),
        "max version lag": max_lag,
        "inversions": inversions,
    }


def test_futurework_inconsistency_quantification(benchmark):
    rows = benchmark(lambda: [_measure(key) for key in PROTOCOLS])

    print_section("X4 — future work: how much inconsistency do fast implementations introduce?")
    print(format_rows(
        rows,
        ["protocol", "runs", "atomic runs", "reads", "stale reads", "stale %",
         "max version lag", "inversions"],
    ))

    by_key = {row["protocol"]: row for row in rows}
    # Atomic protocols: no staleness at all.
    assert by_key["abd-mwmr"]["stale reads"] == 0
    assert by_key["fast-read-mwmr"]["stale reads"] == 0
    assert by_key["abd-mwmr"]["atomic runs"] == by_key["abd-mwmr"]["runs"]
    # Fast candidates: measurable but bounded inconsistency.
    assert by_key["fast-write-attempt"]["stale reads"] > 0
    assert by_key["fast-write-attempt"]["max version lag"] >= 1
    assert by_key["fast-rw-attempt"]["stale reads"] > 0
