"""Benchmark F8 — sieve-based elimination of affected servers (Fig. 8).

Fig. 8 shows how the chain argument survives when the first round-trip of a
read blindly changes the crucial information on some servers: those servers
are eliminated and the (shortened) chain argument runs on the rest.  This
benchmark sweeps the number of affected servers for several system sizes and
reports whether the sieve still certifies the contradiction -- which it must
exactly while at least three unaffected servers remain (t = 1).
"""

from __future__ import annotations

import pytest

from repro.bench.report import format_rows
from repro.theory.sieve import run_sieve
from repro.util.ids import server_ids

from _bench_utils import print_section


@pytest.mark.parametrize("num_servers", [4, 6, 8, 12])
def test_fig8_sieve_sweep(benchmark, num_servers):
    servers = server_ids(num_servers)

    def sweep():
        results = []
        for affected_count in range(0, num_servers - 2):
            affected = servers[num_servers - affected_count:]
            results.append((affected_count, run_sieve(num_servers, affected)))
        return results

    results = benchmark(sweep)

    rows = [
        {
            "affected |Sigma_1|": count,
            "unaffected |Sigma_2|": len(cert.unaffected),
            "shortened chain length": cert.chain_length,
            "verified": cert.all_verified,
        }
        for count, cert in results
    ]
    print_section(f"Fig. 8 — sieve construction, S={num_servers}, t=1")
    print(format_rows(
        rows,
        ["affected |Sigma_1|", "unaffected |Sigma_2|", "shortened chain length", "verified"],
    ))

    for count, cert in results:
        assert cert.chain_length == num_servers - count + 1
        if len(cert.unaffected) >= 3:
            assert cert.all_verified
        else:
            assert not cert.all_verified
