"""Benchmark — elastic control plane: bounded cutover stalls + the autoscaler.

Measures the two promises of the frame-based incremental drain
(:class:`repro.kvstore.engine.ControlPlaneEngine`):

* **stall bounded by range size, not shard size**: a large shard is moved
  live while every client hammers exactly that shard's keys.  The longest
  cluster-wide gap between consecutive client-op completions tracks
  ``drain_range_size`` -- small ranges install keys incrementally so
  backed-off ops complete range by range, where the emulated one-shot
  drain (one range spanning the whole shard) pauses all progress for the
  full transfer+install.  Same workload, same move, swept range sizes.

* **autoscaler chases a moving hotspot**: a two-phase Zipf workload whose
  hot keys move between phases runs with the metrics-driven autoscaler
  armed; throughput stays within a solid fraction of the no-autoscaler
  baseline while shards migrate under load, with per-key atomicity intact
  on both backends.

Run as a pytest-benchmark test or directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_kv_autoscale.py -s
    PYTHONPATH=src python benchmarks/bench_kv_autoscale.py [--quick]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.bench.report import format_rows
from repro.kvstore import (
    KVOp,
    KVWorkload,
    ShardMap,
    generate_workload,
    run_asyncio_kv_workload,
    run_sim_kv_workload,
)
from repro.sim.delays import ConstantDelay

from _bench_utils import (
    bench_json_path,
    print_section,
    result_row,
    write_bench_json,
    write_metrics_json,
)

#: One range per donor->receiver flow: the emulated one-shot drain.
ONE_SHOT = 1_000_000

STALL_SWEEP = (2, 8, ONE_SHOT)
SIM_CLIENTS, SIM_OPS, SIM_KEYS = 4, 60, 160
CHASE_CLIENTS, CHASE_OPS, CHASE_KEYS = 4, 60, 32


def max_completion_gap(result) -> float:
    """The longest cluster-wide gap between consecutive op completions."""
    finishes = sorted(
        op.finish
        for history in result.histories.values()
        for op in history.operations
        if op.finish is not None
    )
    if len(finishes) < 2:
        return 0.0
    return max(b - a for a, b in zip(finishes, finishes[1:]))


def cutover_pause_p99(result) -> float:
    """The control tier's per-range cutover pause p99 (0.0 when no drain)."""
    metrics = result.metrics or {}
    control = metrics.get("control", {})
    hist = control.get("histograms", {}).get("cutover_pause")
    return float(hist["p99"]) if hist else 0.0


def _hot_shard_setup(clients, ops, keys, seed=13):
    """A fresh map plus a workload that hammers exactly one (large) shard.

    Every op targets a key the ring routes to the same shard, so when that
    shard migrates mid-run the whole client population is racing the drain
    -- the cluster-wide completion gap then *is* the cutover pause clients
    see, instead of being hidden by traffic to untouched shards.
    """
    shard_map = ShardMap(4, num_groups=2, readers=clients, writers=clients)
    victim = None
    victim_group = None
    shard_keys = []
    index = 1
    while len(shard_keys) < keys:
        key = f"k{index}"
        index += 1
        spec = shard_map.shard_for(key)
        if victim is None:
            victim = spec.shard_id
            victim_group = spec.group.group_id
        if spec.shard_id == victim:
            shard_keys.append(key)
    target_group = next(g for g in shard_map.groups if g != victim_group)
    base = generate_workload(
        num_clients=clients, ops_per_client=ops, num_keys=len(shard_keys),
        seed=seed, key_skew=0.0, read_fraction=0.3, pipeline_depth=5,
    )
    sequences = {
        client: [KVOp(op.kind, shard_keys[int(op.key[1:]) - 1], op.value)
                 for op in seq]
        for client, seq in base.sequences.items()
    }
    workload = KVWorkload(sequences=sequences,
                          pipeline_depth=base.pipeline_depth)
    return shard_map, workload, victim, target_group


def run_stall_sweep(
    range_sizes=STALL_SWEEP, clients=SIM_CLIENTS, ops=SIM_OPS, keys=SIM_KEYS
):
    """The same single-shard live migration at several drain range sizes.

    The moved shard holds every key the workload touches, so the one-shot
    drain (one range spanning the whole shard) pauses all client progress
    for the full transfer+install -- while small ranges install keys
    incrementally and backed-off ops complete range by range.
    """
    rows = []
    for range_size in range_sizes:
        shard_map, workload, victim, target_group = _hot_shard_setup(
            clients, ops, keys
        )
        result = run_sim_kv_workload(
            workload,
            shard_map=shard_map,
            move_to=(victim, target_group),
            drain_range_size=range_size,
            delay_model=ConstantDelay(1.0),
            server_overhead=0.3,
            server_per_op=0.3,
        )
        control = (result.metrics or {}).get("control", {}).get("counters", {})
        rows.append(
            {
                "range size": ("one-shot" if range_size >= ONE_SHOT
                               else range_size),
                "ranges drained": int(control.get("ranges_drained", 0)),
                "max stall": f"{max_completion_gap(result):.1f}",
                "cutover p99": f"{cutover_pause_p99(result):.1f}",
                "throughput": f"{result.throughput():.2f}",
                "atomic": result.check().all_atomic,
                "_stall": max_completion_gap(result),
                "_cutover": cutover_pause_p99(result),
                "_result": result,
            }
        )
    return rows


def moving_hotspot_workload(
    clients=CHASE_CLIENTS, ops=CHASE_OPS, keys=CHASE_KEYS, skew=1.6, seed=29
) -> KVWorkload:
    """Two Zipf phases whose popular keys occupy different key-space regions.

    Phase two remaps ``k<i>`` to ``k<N+1-i>``: the Zipf head lands on
    different shards, so a placement tuned for phase one is wrong for phase
    two -- exactly the imbalance the autoscaler exists to chase.
    """
    first = generate_workload(
        num_clients=clients, ops_per_client=ops // 2, num_keys=keys,
        key_skew=skew, read_fraction=0.5, seed=seed,
    )
    second = generate_workload(
        num_clients=clients, ops_per_client=ops - ops // 2, num_keys=keys,
        key_skew=skew, read_fraction=0.5, seed=seed + 1,
    )

    def flip(op):
        index = int(op.key[1:])
        flipped = f"k{keys + 1 - index}"
        return type(op)(op.kind, flipped, op.value)

    sequences = {
        client: first.sequences[client] +
        [flip(op) for op in second.sequences[client]]
        for client in first.sequences
    }
    return KVWorkload(sequences=sequences,
                      pipeline_depth=first.pipeline_depth)


def run_autoscale_chase(
    clients=CHASE_CLIENTS, ops=CHASE_OPS, keys=CHASE_KEYS,
    autoscale_interval=60.0,
):
    """The hotspot workload with and without the autoscaler (simulator)."""
    workload = moving_hotspot_workload(clients, ops, keys)
    common = dict(
        num_shards=8,
        num_groups=2,
        delay_model=ConstantDelay(1.0),
        server_overhead=0.3,
        server_per_op=0.3,
    )
    baseline = run_sim_kv_workload(workload, **common)
    scaled = run_sim_kv_workload(
        workload, autoscale=True, autoscale_interval=autoscale_interval,
        drain_range_size=8, **common,
    )
    return baseline, scaled


def run_net_autoscale(clients=3, ops=24, keys=24):
    """The hotspot workload with the autoscaler armed, on loopback TCP."""
    workload = moving_hotspot_workload(clients, ops, keys)
    return run_asyncio_kv_workload(
        workload,
        num_shards=8,
        num_groups=2,
        autoscale=True,
        autoscale_interval=0.05,
        drain_range_size=8,
        service_overhead=0.0005,
        service_per_op=0.0005,
    )


def _print_stall_sweep(rows):
    print_section("Incremental drains — client-op stall vs drain range size")
    print(format_rows(
        [{k: v for k, v in row.items() if not k.startswith("_")}
         for row in rows],
        ["range size", "ranges drained", "max stall", "cutover p99",
         "throughput", "atomic"],
    ))


def _print_chase(baseline, scaled, net=None):
    print_section("Autoscaler — moving Zipf hotspot under live load")
    rows = []
    entries = [("sim baseline", baseline), ("sim autoscaled", scaled)]
    if net is not None:
        entries.append(("asyncio autoscaled", net))
    for label, result in entries:
        record = result.autoscale or {}
        rows.append(
            {
                "run": label,
                "ops": result.completed_ops,
                "throughput": f"{result.throughput():.2f}",
                "autoscale actions": len(record.get("actions", [])),
                "drains": record.get("drains_completed", 0),
                "ranges": record.get("ranges_drained", 0),
                "atomic": result.check().all_atomic,
            }
        )
    print(format_rows(rows, ["run", "ops", "throughput", "autoscale actions",
                             "drains", "ranges", "atomic"]))


def test_stall_is_bounded_by_range_size(benchmark):
    rows = benchmark.pedantic(run_stall_sweep, rounds=1, iterations=1)
    _print_stall_sweep(rows)
    for row in rows:
        assert row["atomic"]
    by_size = {row["range size"]: row for row in rows}
    # The tentpole claim, measured two ways.  (1) The per-range cutover
    # pause -- how long a key range is unavailable between its fence and
    # its install -- orders strictly with the range size:
    assert (by_size[2]["_cutover"]
            < by_size[8]["_cutover"]
            < by_size["one-shot"]["_cutover"])
    # (2) Client-visible: with every client hammering the migrating shard,
    # the longest cluster-wide completion gap under the one-shot drain is
    # strictly worse than with incremental ranges.
    assert by_size[2]["_stall"] < by_size["one-shot"]["_stall"]
    assert by_size[8]["_stall"] <= by_size["one-shot"]["_stall"]


def test_autoscaler_chases_the_hotspot(benchmark):
    baseline, scaled = benchmark.pedantic(
        run_autoscale_chase, rounds=1, iterations=1
    )
    _print_chase(baseline, scaled)
    assert scaled.completed_ops == baseline.completed_ops
    assert scaled.check().all_atomic and baseline.check().all_atomic
    record = scaled.autoscale or {}
    # The imbalance was detected and acted on with incremental drains...
    assert len(record.get("actions", [])) >= 1
    assert record.get("drains_completed", 0) >= 1
    # ...and chasing the hotspot did not stall the workload.
    assert scaled.throughput() > 0.5 * baseline.throughput()


def test_asyncio_autoscaler_stays_atomic(benchmark):
    net = benchmark.pedantic(run_net_autoscale, rounds=1, iterations=1)
    _print_chase(*run_autoscale_chase(clients=2, ops=20, keys=16), net=net)
    assert net.completed_ops > 0
    assert net.check().all_atomic
    assert net.autoscale is not None


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    if quick:
        stall_rows = run_stall_sweep(clients=2, ops=36, keys=96)
        chase_pair = run_autoscale_chase(clients=3, ops=40, keys=24)
        net_result = run_net_autoscale(clients=2, ops=12, keys=16)
    else:
        stall_rows = run_stall_sweep()
        chase_pair = run_autoscale_chase()
        net_result = run_net_autoscale()
    _print_stall_sweep(stall_rows)
    _print_chase(*chase_pair, net=net_result)
    json_path = bench_json_path(sys.argv[1:])
    if json_path:
        stall_section = []
        for row in stall_rows:
            entry = result_row(row["_result"], scenario="shard-move")
            entry["drain_range_size"] = row["range size"]
            entry["ranges_drained"] = row["ranges drained"]
            entry["max_stall"] = round(row["_stall"], 6)
            entry["cutover_p99"] = round(cutover_pause_p99(row["_result"]), 6)
            stall_section.append(entry)
        baseline, scaled = chase_pair

        def chase_row(result, scenario):
            entry = result_row(result, scenario=scenario)
            record = result.autoscale or {}
            entry["autoscale_actions"] = len(record.get("actions", []))
            entry["drains_completed"] = record.get("drains_completed", 0)
            entry["ranges_drained"] = record.get("ranges_drained", 0)
            return entry

        write_bench_json(json_path, "kv_autoscale", {
            "stall": stall_section,
            "chase": [chase_row(baseline, "baseline"),
                      chase_row(scaled, "autoscaled"),
                      chase_row(net_result, "autoscaled-asyncio")],
        })
        write_metrics_json(json_path, "kv_autoscale_sim", scaled)
        write_metrics_json(json_path, "kv_autoscale_asyncio", net_result)
