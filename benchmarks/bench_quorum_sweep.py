"""Benchmark X3 — quorum/fault-tolerance sweep.

Sweeps the number of servers and tolerated faults and reports, for the
paper's fast-read register and MW-ABD:

* the message cost per operation (grows linearly with S),
* read latency (insensitive to S for constant delays: still 1 vs 2 RTTs),
* correctness under the maximum number of crash failures.

This is the ablation DESIGN.md calls X3: it quantifies what the fast-read
condition ``R < S/t - 2`` costs in replication factor -- tolerating more
faults with fast reads requires disproportionally more servers
(``S > (R + 2) * t``), which the sweep makes visible.
"""

from __future__ import annotations


from repro.bench.harness import BenchConfig, run_simulated_benchmark
from repro.bench.report import format_rows
from repro.core.conditions import min_servers_for_fast_reads

from _bench_utils import print_section

SWEEP = [
    # (servers, faults) for MW-ABD; fast-read needs S >= (R+2)t + 1 with R=2.
    (3, 1), (5, 1), (5, 2), (7, 2), (9, 2), (9, 4),
]


def _run(key: str, servers: int, faults: int):
    config = BenchConfig(
        protocol_key=key,
        servers=servers,
        max_faults=faults,
        writes_per_writer=3,
        reads_per_reader=6,
        seed=1,
        crash_servers=faults,
    )
    return run_simulated_benchmark(config)


def test_quorum_and_fault_sweep(benchmark):
    def sweep():
        rows = []
        for servers, faults in SWEEP:
            abd = _run("abd-mwmr", servers, faults)
            fast_feasible = servers > 4 * faults  # R=2: need S/t - 2 > 2
            fast = _run("fast-read-mwmr", servers, faults) if fast_feasible else None
            rows.append((servers, faults, abd, fast))
        return rows

    results = benchmark(sweep)

    printable = []
    for servers, faults, abd, fast in results:
        printable.append(
            {
                "S": servers,
                "t": faults,
                "min S for fast reads (R=2)": min_servers_for_fast_reads(2, faults),
                "abd msgs/op": round(abd.messages_sent / max(1, abd.operations), 1),
                "abd read p50": abd.read_latency.p50,
                "fast-read read p50": fast.read_latency.p50 if fast else "infeasible",
                "atomic": abd.atomic and (fast.atomic if fast else True),
            }
        )
    print_section("X3 — quorum size / fault tolerance sweep")
    print(format_rows(
        printable,
        ["S", "t", "min S for fast reads (R=2)", "abd msgs/op", "abd read p50",
         "fast-read read p50", "atomic"],
    ))

    for servers, faults, abd, fast in results:
        assert abd.atomic
        if fast is not None:
            assert fast.atomic
            assert fast.max_read_round_trips == 1
        # Message cost grows with the number of servers.
    small = next(r for r in results if r[0] == 3)
    large = next(r for r in results if r[0] == 9)
    assert large[2].messages_sent / large[2].operations > small[2].messages_sent / small[2].operations
