"""Benchmark — the ingress proxy tier: cross-client batching + read routing.

Two claims, both on the discrete-event simulator (deterministic), plus an
end-to-end atomicity check of proxied workloads on both backends:

* **Fan-in** (cross-client batching): at a fixed total load, replica-side
  request frames per operation *strictly decrease* as more clients share one
  proxy -- rounds arriving in the same merge window coalesce into shared
  frames, so the cluster pays the quorum fan-out once per merged round
  instead of once per client.  Direct (proxy-less) runs hold roughly
  constant frames/op for comparison.

* **Read routing** (nearest quorum): under a :class:`~repro.sim.delays.GeoDelay`
  site model with loaded replicas, routing each read to the closest quorum
  (spread per key over equidistant picks) beats broadcasting it to every
  replica on *mean read latency*: broadcast burns service time at all ``S``
  replicas per read, nearest at ``S - t``, so every read's quorum queues
  behind less work -- and the skipped replicas are the WAN ones, which is
  also where the frame savings land.

Run as a pytest-benchmark test or directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_kv_proxy.py -s
    PYTHONPATH=src python benchmarks/bench_kv_proxy.py [--quick]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.bench.report import format_rows
from repro.kvstore import (
    NearestQuorum,
    ShardMap,
    generate_workload,
    run_asyncio_kv_workload,
    run_sim_kv_workload,
)
from repro.sim.delays import ConstantDelay, GeoDelay

from _bench_utils import (
    bench_json_path,
    print_section,
    result_row,
    write_bench_json,
    write_metrics_json,
)

TOTAL_OPS = 96
FANIN_CLIENTS = (1, 2, 4, 8)
SITES = ("us", "eu", "ap")


# -- (a) cross-client batching under fan-in ------------------------------------

def run_fanin_sweep(client_counts=FANIN_CLIENTS, total_ops=TOTAL_OPS):
    """Fixed total load spread over K clients, all behind one proxy; plus a
    direct run per K as the baseline."""
    rows = []
    for num_clients in client_counts:
        workload = generate_workload(
            num_clients=num_clients,
            ops_per_client=total_ops // num_clients,
            num_keys=24,
            seed=7,
            pipeline_depth=4,
        )
        common = dict(
            num_shards=4,
            num_groups=2,
            delay_model=ConstantDelay(1.0),
            server_overhead=0.05,
            server_per_op=0.02,
        )
        proxied = run_sim_kv_workload(
            workload, use_proxy=True, num_proxies=1, proxy_flush_delay=0.25,
            **common,
        )
        direct = run_sim_kv_workload(workload, **common)
        rows.append((num_clients, proxied, direct))
    return rows


def _fanin_table(rows):
    return [
        {
            "clients/proxy": num_clients,
            "proxy frames/op": f"{proxied.replica_frames_per_op():.2f}",
            "direct frames/op": f"{direct.replica_frames_per_op():.2f}",
            "merge factor": f"{proxied.proxy_stats.mean_batch_size:.2f}",
            "proxy atomic": proxied.check().all_atomic,
        }
        for num_clients, proxied, direct in rows
    ]


# -- (b) nearest-quorum reads under geo delays ---------------------------------

def _geo_setup(num_clients, ops_per_client, pipeline_depth):
    workload = generate_workload(
        num_clients=num_clients,
        ops_per_client=ops_per_client,
        num_keys=24,
        seed=9,
        read_fraction=0.9,
        pipeline_depth=pipeline_depth,
    )
    shard_map = ShardMap(
        6, num_groups=1, servers_per_shard=6, max_faults=2,
        readers=num_clients, writers=num_clients,
    )
    # One replication group spanning three sites, two replicas per site --
    # the spanning layout where read routing has a choice to make.
    sites = {
        server: SITES[index // 2]
        for index, server in enumerate(shard_map.all_servers)
    }
    for index, client in enumerate(workload.clients):
        sites[client] = SITES[index % len(SITES)]
    for index in range(1, 4):
        sites[f"p{index}"] = SITES[index - 1]  # one proxy per site
    return workload, shard_map, sites


def run_geo_comparison(num_clients=9, ops_per_client=16, pipeline_depth=6):
    """The same loaded geo workload under broadcast vs nearest-quorum reads."""
    results = {}
    for policy_name in ("broadcast", "nearest"):
        workload, shard_map, sites = _geo_setup(
            num_clients, ops_per_client, pipeline_depth
        )
        policy = (
            NearestQuorum.from_sites(sites) if policy_name == "nearest" else None
        )
        results[policy_name] = run_sim_kv_workload(
            workload,
            shard_map=shard_map,
            delay_model=GeoDelay(
                sites, local_delay=0.5, wan_delay=20.0,
                jitter_fraction=0.05, seed=2,
            ),
            use_proxy=True,
            num_proxies=3,
            proxy_flush_delay=0.25,
            read_policy=policy,
            server_overhead=0.5,
            server_per_op=3.0,
        )
    return results


def _mean(values):
    return sum(values) / len(values) if values else 0.0


def _geo_table(results):
    return [
        {
            "read policy": name,
            "read mean": f"{_mean(result.read_latencies):.1f}",
            "read p50": f"{result.read_stats().p50:.1f}",
            "read p95": f"{result.read_stats().p95:.1f}",
            # Sub-ops, not frames: frame counts shift with how much the
            # merge window coalesces, replica *work* is the honest cost.
            "rep sub-ops/op": f"{result.replica_sub_ops / result.completed_ops:.2f}",
            "atomic": result.check().all_atomic,
        }
        for name, result in results.items()
    ]


# -- proxied atomicity on the real transport -----------------------------------

def run_asyncio_proxied(num_clients=3, ops_per_client=12):
    workload = generate_workload(
        num_clients=num_clients, ops_per_client=ops_per_client,
        num_keys=16, seed=5, pipeline_depth=4,
    )
    proxied = run_asyncio_kv_workload(
        workload, num_shards=4, num_groups=2, use_proxy=True, num_proxies=1,
    )
    direct = run_asyncio_kv_workload(workload, num_shards=4, num_groups=2)
    return proxied, direct


# -- assertions shared by pytest and __main__ ----------------------------------

def check_fanin(rows):
    per_op = []
    for _num_clients, proxied, direct in rows:
        assert proxied.completed_ops == direct.completed_ops
        assert proxied.check().all_atomic
        assert direct.check().all_atomic
        per_op.append(proxied.replica_frames_per_op())
    # The tentpole claim: replica-side frames per op strictly decrease as
    # clients-per-proxy grows at fixed load.
    for before, after in zip(per_op, per_op[1:]):
        assert after < before, f"frames/op did not decrease: {per_op}"
    # And at the highest fan-in the proxy beats the direct fan-out decisively.
    _, proxied, direct = rows[-1]
    assert proxied.replica_frames < direct.replica_frames / 2


def check_geo(results):
    for result in results.values():
        assert result.check().all_atomic
        assert result.completed_ops > 0
    mean_broadcast = _mean(results["broadcast"].read_latencies)
    mean_nearest = _mean(results["nearest"].read_latencies)
    assert mean_nearest < mean_broadcast, (
        f"nearest-quorum reads ({mean_nearest:.1f}) should beat broadcast "
        f"({mean_broadcast:.1f})"
    )


def check_asyncio(proxied, direct):
    assert proxied.check().all_atomic
    assert direct.check().all_atomic
    assert proxied.completed_ops == direct.completed_ops
    # Cross-client merging shows up on the real transport too.
    assert proxied.replica_frames < direct.replica_frames


# -- pytest entry points --------------------------------------------------------

def test_kv_proxy_fanin_sweep(benchmark):
    rows = benchmark.pedantic(run_fanin_sweep, rounds=1, iterations=1)
    print_section("KV proxy — replica frames/op vs clients per proxy (sim)")
    print(format_rows(_fanin_table(rows),
                      ["clients/proxy", "proxy frames/op", "direct frames/op",
                       "merge factor", "proxy atomic"]))
    check_fanin(rows)


def test_kv_proxy_nearest_quorum_geo(benchmark):
    results = benchmark.pedantic(run_geo_comparison, rounds=1, iterations=1)
    print_section("KV proxy — read routing under GeoDelay (sim)")
    print(format_rows(_geo_table(results),
                      ["read policy", "read mean", "read p50", "read p95",
                       "rep sub-ops/op", "atomic"]))
    check_geo(results)


def test_kv_proxy_asyncio_atomicity(benchmark):
    proxied, direct = benchmark.pedantic(run_asyncio_proxied, rounds=1,
                                         iterations=1)
    print_section("KV proxy — proxied workload over loopback TCP")
    print(format_rows([proxied.as_row(), direct.as_row()],
                      ["backend", "proxies", "ops", "rep_frames",
                       "rep_frames/op", "atomic"]))
    check_asyncio(proxied, direct)


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    if quick:
        fanin = run_fanin_sweep(client_counts=(1, 4), total_ops=32)
        geo = run_geo_comparison(num_clients=6, ops_per_client=6,
                                 pipeline_depth=4)
        net = run_asyncio_proxied(num_clients=2, ops_per_client=6)
    else:
        fanin = run_fanin_sweep()
        geo = run_geo_comparison()
        net = run_asyncio_proxied()
    print_section("KV proxy — replica frames/op vs clients per proxy (sim)")
    print(format_rows(_fanin_table(fanin),
                      ["clients/proxy", "proxy frames/op", "direct frames/op",
                       "merge factor", "proxy atomic"]))
    print_section("KV proxy — read routing under GeoDelay (sim)")
    print(format_rows(_geo_table(geo),
                      ["read policy", "read mean", "read p50", "read p95",
                       "rep sub-ops/op", "atomic"]))
    print_section("KV proxy — proxied workload over loopback TCP")
    print(format_rows([net[0].as_row(), net[1].as_row()],
                      ["backend", "proxies", "ops", "rep_frames",
                       "rep_frames/op", "atomic"]))
    check_fanin(fanin)
    if not quick:
        check_geo(geo)
    else:
        for result in geo.values():
            assert result.check().all_atomic
    check_asyncio(*net)
    json_path = bench_json_path(sys.argv[1:])
    if json_path:
        write_bench_json(json_path, "kv_proxy", {
            "fanin": [
                {"clients_per_proxy": clients,
                 "proxied": result_row(proxied),
                 "direct": result_row(direct)}
                for clients, proxied, direct in fanin
            ],
            "geo": {policy: result_row(result) for policy, result in geo.items()},
            "asyncio": [result_row(net[0], "proxied"), result_row(net[1], "direct")],
        })
        write_metrics_json(json_path, "kv_proxy_sim", next(iter(geo.values())))
        write_metrics_json(json_path, "kv_proxy_asyncio", net[0])
    print("\nall proxy-tier checks passed")
