"""Benchmark T1 — regenerate Table 1 (the design space overview).

For the canonical configuration (S=5, t=1, W=2, R=2) and a larger one
(S=7, t=1), run one protocol per design-space quadrant on the simulator under
contended workloads, count atomicity violations, and print the side-by-side
theoretical/measured table.  The expected shape (the paper's Table 1):

* W2R2 and W2R1 quadrants: zero violations, round-trips (2,2) and (2,1);
* W1R2 and W1R1 quadrants: the candidate protocols violate atomicity.
"""

from __future__ import annotations

import pytest

from repro.core.conditions import SystemParameters
from repro.theory.design_space import empirical_table, format_table, theoretical_table

from _bench_utils import print_section


def _regenerate(servers: int, max_faults: int, seeds=(0, 1)):
    params = SystemParameters(servers=servers, writers=2, readers=2, max_faults=max_faults)
    theoretical = theoretical_table(params)
    empirical = empirical_table(params, seeds=seeds, bursts=3)
    return params, theoretical, empirical


@pytest.mark.parametrize("servers,max_faults", [(5, 1), (7, 1)])
def test_table1_design_space(benchmark, servers, max_faults):
    params, theoretical, empirical = benchmark(_regenerate, servers, max_faults)

    print_section(f"Table 1 — design space at {params.describe()}")
    print(format_table(theoretical, empirical))

    by_point = {row.point.name: row for row in empirical}
    # Feasible quadrants are atomic with the claimed round-trips.
    assert by_point["W2R2"].violations == 0
    assert by_point["W2R2"].observed_write_rtts == 2
    assert by_point["W2R1"].violations == 0
    assert by_point["W2R1"].observed_read_rtts == 1
    # Infeasible quadrants: the candidate fast protocols are caught.
    assert by_point["W1R2"].violations > 0
    assert by_point["W1R1"].violations > 0
    for row in empirical:
        assert row.matches_expectation
