"""Benchmark — live rebalancing: bounded key movement and resize-time cost.

Measures the two promises of the placement layer
(:mod:`repro.kvstore.placement` / :meth:`repro.kvstore.ShardMap.resize`):

* **keys moved ~ 1/N**: growing an N-shard ring by one shard re-homes about
  1/(N+1) of the keys -- consistent hashing's bounded-movement guarantee --
  never a wholesale reshuffle.  Measured over a fixed key sample for a sweep
  of N.

* **throughput during a live resize**: a mid-run ``resize`` (registers
  draining to new owners, in-flight rounds bounced by the epoch fence and
  replayed) costs some replayed rounds but does not stall the store or break
  per-key atomicity.  The same workload runs with and without a live resize
  on both backends and reports the throughput ratio.

Run as a pytest-benchmark test or directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_kv_resize.py -s
    PYTHONPATH=src python benchmarks/bench_kv_resize.py [--quick]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.bench.report import format_rows
from repro.kvstore import (
    ShardMap,
    generate_workload,
    run_asyncio_kv_workload,
    run_sim_kv_workload,
)
from repro.sim.delays import ConstantDelay

from _bench_utils import (
    bench_json_path,
    print_section,
    rows_for,
    write_bench_json,
    write_metrics_json,
)

MOVE_SWEEP = (2, 4, 8, 16)
MOVE_SAMPLE = 2000
SIM_CLIENTS, SIM_OPS, SIM_KEYS = 5, 30, 48
NET_CLIENTS, NET_OPS, NET_KEYS = 3, 16, 24


def run_move_sweep(shard_counts=MOVE_SWEEP, sample=MOVE_SAMPLE):
    """Grow N -> N+1 on metadata only; report the moved-key fraction."""
    keys = [f"user:{i}" for i in range(sample)]
    rows = []
    for n in shard_counts:
        shard_map = ShardMap(n, num_groups=2, virtual_nodes=128)
        plan = shard_map.resize(n + 1)
        fraction = plan.moved_fraction(keys)
        rows.append(
            {
                "shards": f"{n} -> {n + 1}",
                "expected 1/N": f"{1 / (n + 1):.3f}",
                "moved fraction": f"{fraction:.3f}",
                "moved keys": len(plan.moved_keys(keys)),
                "fenced": len(plan.fenced),
                "_fraction": fraction,
                "_n": n,
            }
        )
    return rows


def _sim_workload(clients=SIM_CLIENTS, ops=SIM_OPS, keys=SIM_KEYS):
    return generate_workload(
        num_clients=clients, ops_per_client=ops, num_keys=keys, seed=11,
        pipeline_depth=5,
    )


def run_sim_resize_comparison(clients=SIM_CLIENTS, ops=SIM_OPS, keys=SIM_KEYS):
    """The same sim workload with and without a mid-run live resize."""
    workload = _sim_workload(clients, ops, keys)
    common = dict(
        num_shards=4,
        num_groups=2,
        delay_model=ConstantDelay(1.0),
        server_overhead=0.3,
        server_per_op=0.3,
    )
    steady = run_sim_kv_workload(workload, **common)
    resized = run_sim_kv_workload(workload, resize_to=8, **common)
    return steady, resized


def run_net_resize_comparison(clients=NET_CLIENTS, ops=NET_OPS, keys=NET_KEYS):
    """The same loopback-TCP workload with and without a live resize."""
    workload = generate_workload(
        num_clients=clients, ops_per_client=ops, num_keys=keys, seed=11,
        pipeline_depth=4,
    )
    common = dict(num_shards=4, num_groups=2, service_overhead=0.0005,
                  service_per_op=0.0005)
    steady = run_asyncio_kv_workload(workload, **common)
    resized = run_asyncio_kv_workload(workload, resize_to=8, **common)
    return steady, resized


def _print_move_sweep(rows):
    print_section("Live resize — keys moved vs the 1/N bound")
    print(format_rows(
        [{k: v for k, v in row.items() if not k.startswith("_")} for row in rows],
        ["shards", "expected 1/N", "moved fraction", "moved keys", "fenced"],
    ))


def _print_comparison(title, steady, resized):
    print_section(title)
    rows = []
    for label, result in (("steady", steady), ("live resize", resized)):
        rows.append(
            {
                "run": label,
                "shards": result.num_shards,
                "groups": result.num_groups,
                "ops": result.completed_ops,
                "throughput": f"{result.throughput():.2f}",
                "replayed rounds": result.stale_replays,
                "keys moved": (result.resize or {}).get("keys_moved", 0),
                "atomic": result.check().all_atomic,
            }
        )
    print(format_rows(rows, ["run", "shards", "groups", "ops", "throughput",
                             "replayed rounds", "keys moved", "atomic"]))


def test_resize_moves_about_one_over_n(benchmark):
    rows = benchmark.pedantic(run_move_sweep, rounds=1, iterations=1)
    _print_move_sweep(rows)
    for row in rows:
        expected = 1 / (row["_n"] + 1)
        assert 0 < row["_fraction"] <= 2.5 * expected


def test_sim_throughput_survives_live_resize(benchmark):
    steady, resized = benchmark.pedantic(
        run_sim_resize_comparison, rounds=1, iterations=1
    )
    _print_comparison("Live resize under load — simulator (virtual time)",
                      steady, resized)
    for result in (steady, resized):
        assert result.completed_ops == _sim_workload().total_operations()
        assert result.check().all_atomic
    assert resized.resize is not None and resized.resize["to"] == 8
    # The cutover costs some replayed rounds, not a stall: the run still
    # clears a solid fraction of the steady-state throughput.
    assert resized.throughput() > 0.3 * steady.throughput()


def test_asyncio_throughput_survives_live_resize(benchmark):
    steady, resized = benchmark.pedantic(
        run_net_resize_comparison, rounds=1, iterations=1
    )
    _print_comparison("Live resize under load — asyncio loopback TCP",
                      steady, resized)
    for result in (steady, resized):
        assert result.check().all_atomic
    assert resized.resize is not None
    # Wall-clock is noisy; insist only that the resize did not stall the run.
    assert resized.throughput() > 0.2 * steady.throughput()


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    if quick:
        moves = run_move_sweep(shard_counts=(2, 4), sample=400)
        sim_pair = run_sim_resize_comparison(clients=2, ops=10, keys=12)
        net_pair = run_net_resize_comparison(clients=2, ops=8, keys=12)
    else:
        moves = run_move_sweep()
        sim_pair = run_sim_resize_comparison()
        net_pair = run_net_resize_comparison()
    _print_move_sweep(moves)
    _print_comparison(
        "Live resize under load — simulator (virtual time)", *sim_pair
    )
    _print_comparison(
        "Live resize under load — asyncio loopback TCP", *net_pair
    )
    json_path = bench_json_path(sys.argv[1:])
    if json_path:
        labels = ["steady", "live-resize"]
        write_bench_json(json_path, "kv_resize", {
            "moves": [{k: v for k, v in row.items() if not k.startswith("_")}
                      for row in moves],
            "sim": rows_for(sim_pair, labels),
            "asyncio": rows_for(net_pair, labels),
        })
        write_metrics_json(json_path, "kv_resize_sim", sim_pair[1])
        write_metrics_json(json_path, "kv_resize_asyncio", net_pair[1])
