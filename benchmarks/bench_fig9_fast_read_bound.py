"""Benchmark F9 — the fast-read feasibility boundary ``R < S/t - 2`` (Fig. 9).

Fig. 9 underlies the impossibility of one-round-trip reads when
``R >= S/t - 2``.  This benchmark sweeps (S, t, R) configurations across the
boundary, replays the Fig. 9 adversarial schedule against the paper's W2R1
protocol (feasibility guard disabled so the same code runs on both sides),
and reports whether an atomicity violation (a new/old inversion) was
observed.  The expected shape: the measured boundary coincides exactly with
``R >= S/t - 2``.
"""

from __future__ import annotations


from repro.bench.report import format_rows
from repro.core.conditions import fast_read_bound
from repro.theory.fast_read_bound import run_fig9_experiment

from _bench_utils import print_section

CONFIGURATIONS = [
    # (S, t, R) pairs straddling the boundary for t = 1 and t = 2.
    (4, 1, 2), (5, 1, 2),
    (5, 1, 3), (6, 1, 3),
    (6, 1, 4), (7, 1, 4),
    (8, 2, 2), (9, 2, 2),
    (10, 2, 3), (11, 2, 3),
]


def test_fig9_fast_read_boundary(benchmark):
    def sweep():
        return [
            (config, run_fig9_experiment(*config)) for config in CONFIGURATIONS
        ]

    results = benchmark(sweep)

    rows = []
    for (servers, faults, readers), result in results:
        bound = fast_read_bound(servers, faults)
        rows.append(
            {
                "S": servers,
                "t": faults,
                "R": readers,
                "S/t - 2": f"{bound:.2f}",
                "impossible (theory)": readers >= bound,
                "violation observed": result.violation_found,
                "anomalies": result.atomicity.report.summary(),
            }
        )
    print_section("Fig. 9 — fast-read feasibility boundary R < S/t - 2")
    print(format_rows(
        rows,
        ["S", "t", "R", "S/t - 2", "impossible (theory)", "violation observed", "anomalies"],
    ))

    for (servers, faults, readers), result in results:
        expected = readers >= fast_read_bound(servers, faults)
        assert result.violation_found == expected, (servers, faults, readers)
