"""Benchmark X2 — ablation of the admissibility machinery in Algorithm 1.

The paper's W2R1 algorithm rests on the ``admissible`` predicate (with
degrees up to ``R + 1``) evaluated over the per-value ``updated`` sets that
servers maintain.  This ablation removes the predicate -- readers simply
return the largest tag they see in their single round-trip -- and replays a
targeted partial-propagation schedule (a pending write visible on a single
server, one reader that sees that server and a later reader that does not).

Expected shape:

* full algorithm, feasible configuration (``R < S/t - 2``): zero violations
  -- the predicate refuses to return a value whose witness could be missed
  by a later read;
* naive reader (no admissibility): new/old inversions appear in the very
  same schedules, in both the feasible and the infeasible configuration;
* full algorithm in the infeasible configuration: violations require the
  deeper Fig. 9 schedule (covered by ``bench_fig9_fast_read_bound.py``), so
  this simple schedule stays clean -- which is itself informative and is
  recorded in EXPERIMENTS.md.
"""

from __future__ import annotations


from repro.bench.report import format_rows
from repro.consistency import check_atomicity
from repro.protocols.registry import build_protocol
from repro.sim.delays import UniformDelay
from repro.sim.network import SkipRule
from repro.sim.runtime import Simulation
from repro.util.ids import server_ids

from _bench_utils import print_section


def _partial_propagation_run(servers: int, naive: bool, seed: int) -> bool:
    """One targeted schedule; returns True when atomicity is violated.

    w1 writes "old" and completes; w2 writes "new" but its update phase
    reaches only ``s1`` (the write stays pending); r1 then reads (its quorum
    includes ``s1``), and r2 reads last with ``s1`` skipped.
    """
    protocol = build_protocol(
        "fast-read-mwmr",
        server_ids(servers),
        1,
        readers=2,
        writers=2,
        enforce_condition=False,
        naive_reads=naive,
    )
    simulation = Simulation(protocol, delay_model=UniformDelay(0.8, 1.2, seed=seed))
    for server in server_ids(servers)[1:]:
        simulation.add_skip_rule(
            SkipRule(sender="w2", receiver=server, kind="write", both_directions=False)
        )
    simulation.add_skip_rule(SkipRule(sender="r2", receiver="s1", kind="read"))
    simulation.schedule_write("w1", "old", at=1.0)
    simulation.schedule_write("w2", "new", at=10.0)
    simulation.schedule_read("r1", at=20.0)
    simulation.schedule_read("r2", at=30.0)
    result = simulation.run()
    return not check_atomicity(result.history).atomic


def _sweep(servers: int, naive: bool, runs: int = 5) -> int:
    return sum(
        1 for seed in range(runs) if _partial_propagation_run(servers, naive, seed)
    )


def test_ablation_admissibility(benchmark):
    def run_all():
        return {
            ("full", "feasible S=5"): _sweep(5, naive=False),
            ("full", "infeasible S=4"): _sweep(4, naive=False),
            ("naive (no admissibility)", "feasible S=5"): _sweep(5, naive=True),
            ("naive (no admissibility)", "infeasible S=4"): _sweep(4, naive=True),
        }

    results = benchmark(run_all)

    rows = [
        {"reader": reader, "configuration": config, "violating runs (of 5)": count}
        for (reader, config), count in results.items()
    ]
    print_section("X2 — ablation: admissibility predicate of Algorithm 1")
    print(format_rows(rows, ["reader", "configuration", "violating runs (of 5)"]))

    # The full algorithm never violates atomicity on this schedule.
    assert results[("full", "feasible S=5")] == 0
    # Removing the admissibility machinery breaks the one-round-trip read on
    # the very same schedules, regardless of the configuration.
    assert results[("naive (no admissibility)", "feasible S=5")] > 0
    assert results[("naive (no admissibility)", "infeasible S=4")] > 0
