"""Benchmark F2 — the latency/consistency lattice of Fig. 2.

Fig. 2 orders the four design points by latency (and achievable consistency).
This benchmark measures, on the simulator with identical delay distributions,
the per-operation latency and round-trip count of one implementation per
design point and checks the ordering the figure depicts:

* total latency rank: W1R1 < {W1R2, W2R1} < W2R2;
* the two "fast halves" (W1R2 writes, W2R1 reads) really are ~half the
  latency of their two-round-trip counterparts;
* the points that trade consistency for latency (W1R2, W1R1) are exactly the
  ones whose histories fail the atomicity check under write contention.
"""

from __future__ import annotations


from repro.bench.harness import sweep_protocols
from repro.bench.report import format_metrics_table

from _bench_utils import print_section

POINT_PROTOCOLS = {
    "W2R2": "abd-mwmr",
    "W2R1": "fast-read-mwmr",
    "W1R2": "fast-write-attempt",
    "W1R1": "fast-rw-attempt",
}


def _measure():
    metrics = sweep_protocols(
        list(POINT_PROTOCOLS.values()),
        seeds=(0, 1),
        servers=7,
        workload="uniform",
        writes_per_writer=4,
        reads_per_reader=8,
    )
    merged = {}
    for m in metrics:
        if m.protocol not in merged:
            merged[m.protocol] = m
    return list(merged.values()), metrics


def test_fig2_latency_lattice(benchmark):
    rows, all_metrics = benchmark(_measure)

    print_section("Fig. 2 — latency vs consistency across the design space")
    print(format_metrics_table(all_metrics))

    by_protocol = {m.protocol: m for m in rows}
    w2r2 = by_protocol["mw-abd (W2R2)"]
    w2r1 = by_protocol["fast-read mwmr (W2R1, this paper)"]
    w1r2 = by_protocol["fast-write attempt (W1R2 candidate, not atomic)"]
    w1r1 = by_protocol["fast-rw attempt (W1R1 candidate, not atomic)"]

    # Round-trip structure matches the lattice.
    assert (w2r2.max_write_round_trips, w2r2.max_read_round_trips) == (2, 2)
    assert (w2r1.max_write_round_trips, w2r1.max_read_round_trips) == (2, 1)
    assert (w1r2.max_write_round_trips, w1r2.max_read_round_trips) == (1, 2)
    assert (w1r1.max_write_round_trips, w1r1.max_read_round_trips) == (1, 1)

    # Latency ordering (reads): fast reads are well below slow reads.
    assert w2r1.read_latency.p50 < 0.75 * w2r2.read_latency.p50
    assert w1r1.read_latency.p50 < 0.75 * w2r2.read_latency.p50
    # Latency ordering (writes): fast writes are well below slow writes.
    assert w1r2.write_latency.p50 < 0.75 * w2r2.write_latency.p50

    # The consistency axis: only the upper two points are atomic.
    assert w2r2.atomic and w2r1.atomic
