"""Shared helpers for the benchmark suite."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence


def print_section(title: str) -> None:
    """Print a visually separated section header around regenerated tables."""
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def bench_json_path(argv: Sequence[str]) -> Optional[str]:
    """The path following ``--json``, or ``None`` when not requested."""
    args = list(argv)
    if "--json" not in args:
        return None
    index = args.index("--json")
    if index + 1 >= len(args) or args[index + 1].startswith("--"):
        raise SystemExit("--json requires a PATH argument")
    return args[index + 1]


def result_row(result, scenario: Optional[str] = None) -> Dict[str, Any]:
    """One machine-readable summary row for a ``KVRunResult``.

    Everything the perf trajectory needs across PRs: throughput, frame
    amortization, replica-side cost, and the replay/failover counters the
    resilience features are judged by.
    """
    ops = result.completed_ops or 1
    batching = result.batch_stats.as_dict()
    row: Dict[str, Any] = {
        "backend": result.backend,
        "shards": result.num_shards,
        "groups": result.num_groups,
        "proxies": result.num_proxies,
        "batch": result.max_batch,
        "ops": result.completed_ops,
        "duration": round(result.duration, 6),
        "ops_per_s": round(result.throughput(), 3),
        "frames_total": result.frames_total,
        "frames_per_op": round(result.frames_total / ops, 3),
        "replica_frames_per_op": round(result.replica_frames_per_op(), 3),
        "replica_sub_ops_per_op": round(result.replica_sub_ops / ops, 3),
        "mean_batch": round(batching["mean_batch"], 3),
        "batching": batching,
        "stale_replays": result.stale_replays,
        "stale_bounces": result.stale_bounces,
        "proxy_failovers": result.proxy_failovers,
        "view_pushes": result.view_pushes,
        "read_p50": round(result.read_stats().p50, 6),
        "read_p99": round(result.read_stats().p99, 6),
        "atomic": bool(result.check().all_atomic),
    }
    if result.proxy_stats is not None:
        row["proxy_batching"] = result.proxy_stats.as_dict()
    if scenario is not None:
        row["scenario"] = scenario
    return row


def metrics_json_path(json_path: Optional[str]) -> Optional[str]:
    """The metrics sidecar path for a ``--json PATH`` (``None`` without one).

    ``BENCH_kv.json`` gets ``BENCH_kv_metrics.json`` next to it, so CI can
    upload both and schema-check the sidecar without parsing the main report.
    """
    if json_path is None:
        return None
    target = Path(json_path)
    return str(target.with_name(target.stem + "_metrics" + target.suffix))


def write_metrics_json(json_path: Optional[str], section: str, result) -> None:
    """Merge one run's per-tier metrics snapshot into the metrics sidecar.

    Mirrors :func:`write_bench_json`'s one-section-per-bench layout; no-op
    when ``--json`` was not requested or the result carries no snapshot.
    """
    sidecar = metrics_json_path(json_path)
    if sidecar is None or result.metrics is None:
        return
    target = Path(sidecar)
    data: Dict[str, Any] = {}
    if target.exists():
        try:
            data = json.loads(target.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            data = {}
    data[section] = result.metrics
    target.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote metrics section {section!r} -> {target}")


def write_bench_json(path: str, section: str, payload: Any) -> None:
    """Merge one bench's summary into the JSON report at ``path``.

    Each bench owns one top-level ``section`` key, so all the ``bench_kv_*``
    scripts can share one ``BENCH_kv.json`` (CI's ``--quick`` runs do) and a
    later PR can diff the perf trajectory file against the previous one.
    """
    target = Path(path)
    data: Dict[str, Any] = {}
    if target.exists():
        try:
            data = json.loads(target.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            data = {}
    data[section] = payload
    target.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"\nwrote section {section!r} -> {target}")


def rows_for(results, scenarios: Optional[List[str]] = None) -> List[Dict[str, Any]]:
    """``result_row`` over a list (optionally zipped with scenario labels)."""
    if scenarios is None:
        return [result_row(result) for result in results]
    return [
        result_row(result, scenario)
        for result, scenario in zip(results, scenarios)
    ]
