"""Shared helpers for the benchmark suite."""

from __future__ import annotations


def print_section(title: str) -> None:
    """Print a visually separated section header around regenerated tables."""
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
