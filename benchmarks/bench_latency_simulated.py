"""Benchmark X1a — user-perceived latency on the simulator (LAN and geo delays).

The paper's motivation: one round-trip saved is the dominant factor in
user-perceived latency for geo-replicated storage.  This benchmark runs the
three atomic protocols (MW-ABD, the paper's fast-read register, DGLV's fast
single-writer register) under a LAN-like and a WAN/geo-like delay model and
reports read/write latency percentiles.  Expected shape: read latency of the
W2R1 register is ~half that of MW-ABD; the SWMR fast register additionally
halves writes.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import BenchConfig, run_simulated_benchmark
from repro.bench.report import format_metrics_table
from repro.sim.delays import GeoDelay, UniformDelay
from repro.util.ids import client_ids, server_ids

from _bench_utils import print_section

PROTOCOLS = ["abd-mwmr", "fast-read-mwmr", "fast-swmr"]


def _geo_delay(seed: int) -> GeoDelay:
    sites = {}
    for index, server in enumerate(server_ids(7)):
        sites[server] = ("us", "eu", "ap")[index % 3]
    for index, client in enumerate(client_ids("w", 2) + client_ids("r", 2)):
        sites[client] = ("us", "eu", "ap")[index % 3]
    return GeoDelay(sites, local_delay=0.5, wan_delay=40.0, seed=seed)


def _run(delay_kind: str):
    metrics = []
    for key in PROTOCOLS:
        config = BenchConfig(
            protocol_key=key,
            servers=7,
            max_faults=1,
            writes_per_writer=4,
            reads_per_reader=10,
            horizon=2000.0 if delay_kind == "geo" else 200.0,
            seed=3,
        )
        delay = _geo_delay(3) if delay_kind == "geo" else UniformDelay(0.5, 1.5, seed=3)
        metrics.append(run_simulated_benchmark(config, delay_model=delay))
    return metrics


@pytest.mark.parametrize("delay_kind", ["lan", "geo"])
def test_latency_simulated(benchmark, delay_kind):
    metrics = benchmark(_run, delay_kind)

    print_section(f"X1a — simulated latency ({delay_kind} delay model)")
    print(format_metrics_table(metrics))

    by_protocol = {m.protocol: m for m in metrics}
    abd = by_protocol["mw-abd (W2R2)"]
    fast_read = by_protocol["fast-read mwmr (W2R1, this paper)"]
    fast_swmr = by_protocol["dglv fast swmr (W1R1, single writer)"]

    assert all(m.atomic for m in metrics)
    # Fast reads roughly halve read latency relative to MW-ABD.
    assert fast_read.read_latency.p50 < 0.7 * abd.read_latency.p50
    # The single-writer fast register additionally halves write latency.
    assert fast_swmr.write_latency.p50 < 0.7 * abd.write_latency.p50
