"""Benchmark X1b — wall-clock latency on the asyncio TCP loopback cluster.

Runs the same closed-loop workload against real TCP replicas for MW-ABD and
the paper's fast-read register and reports measured milliseconds.

Note on the expected shape: on loopback the propagation delay is tens of
microseconds, so serialization cost (the fast-read READACK carries the whole
value vector) can outweigh the saved round-trip; the benchmark therefore
asserts the *round-trip* structure and atomicity here and leaves the latency
ratio assertion to the simulated LAN/geo benchmark
(``bench_latency_simulated.py``), where propagation dominates as it does in
the deployments the paper targets.  The measured numbers are still printed
and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations


from repro.asyncio_net import run_closed_loop_workload
from repro.bench.report import format_rows
from repro.consistency import check_atomicity
from repro.protocols.registry import build_protocol
from repro.util.ids import server_ids

from _bench_utils import print_section


def _run_cluster(key: str):
    protocol = build_protocol(key, server_ids(5), 1, readers=2, writers=2)
    result = run_closed_loop_workload(protocol, writes_per_writer=5, reads_per_reader=20)
    verdict = check_atomicity(result.history)
    return protocol.name, result, verdict


def test_latency_asyncio_cluster(benchmark):
    def run_both():
        return [_run_cluster("abd-mwmr"), _run_cluster("fast-read-mwmr")]

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    for name, result, verdict in results:
        read_stats = result.read_stats()
        write_stats = result.write_stats()
        rows.append(
            {
                "protocol": name,
                "read p50 (ms)": read_stats.p50 * 1e3,
                "read p99 (ms)": read_stats.p99 * 1e3,
                "write p50 (ms)": write_stats.p50 * 1e3,
                "read RTTs": max(result.read_round_trips),
                "atomic": verdict.atomic,
            }
        )
    print_section("X1b — asyncio loopback cluster latency")
    print(format_rows(
        rows,
        ["protocol", "read p50 (ms)", "read p99 (ms)", "write p50 (ms)", "read RTTs", "atomic"],
    ))

    by_name = {name: (result, verdict) for name, result, verdict in results}
    abd_result, abd_verdict = by_name["mw-abd (W2R2)"]
    fast_result, fast_verdict = by_name["fast-read mwmr (W2R1, this paper)"]
    assert abd_verdict.atomic and fast_verdict.atomic
    assert max(fast_result.read_round_trips) == 1
    assert max(abd_result.read_round_trips) == 2
    # Sanity bound only (see the module docstring): loopback serialization
    # cost can mask the saved round-trip, but it must not blow up.
    assert fast_result.read_stats().p50 < 5 * abd_result.read_stats().p50
