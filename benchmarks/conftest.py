"""Pytest configuration for the benchmark suite.

Every benchmark prints the rows it regenerates (the table/figure series of
the paper) in addition to the timings pytest-benchmark collects, so running
``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation output
documented in EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Make the sibling helper module importable regardless of how pytest was
# invoked (from the repository root or from inside benchmarks/).
_HERE = Path(__file__).resolve().parent
if str(_HERE) not in sys.path:
    sys.path.insert(0, str(_HERE))
