"""Benchmark — resilient ingress: proxy failover cost + view-push savings.

Two claims, one per half of the fault-tolerant proxy tier:

* **Failover** (asyncio, real sockets): a workload routed through two
  ingress proxies survives a mid-run proxy kill with **zero operations
  lost** and zero client-visible errors -- the orphaned stores re-dial the
  surviving proxy (or go direct) and replay in-flight rounds under fresh
  attempt scopes.  The cost is latency, not correctness: the table reports
  p99 read/write latency across the kill next to an unkilled baseline.

* **View push** (simulator, deterministic): at a live ``resize()`` the
  control plane pushes the fresh shard-map view to every proxy.  In the
  steady state (rounds quiesced at the cutover) a resize then costs **zero
  stale-epoch replays**, where bounce-only discovery pays at least one per
  proxy; under load the push still strictly cuts the replay count, with the
  epoch-fence bounce kept as the safety net for rounds already in flight.

Run as a pytest-benchmark test or directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_kv_failover.py -s
    PYTHONPATH=src python benchmarks/bench_kv_failover.py [--quick]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.bench.report import format_rows
from repro.kvstore import (
    RetryPolicy,
    ShardMap,
    SimKVCluster,
    check_per_key_atomicity,
    generate_workload,
    run_asyncio_kv_workload,
    run_sim_kv_workload,
)

from _bench_utils import (
    bench_json_path,
    print_section,
    result_row,
    write_bench_json,
    write_metrics_json,
)

#: Tight windows so the kill scenario settles in milliseconds of wall clock.
FAST_RETRY = RetryPolicy(
    reconnect_interval=0.02,
    max_transient_retries=50,
    round_timeout=1.0,
    max_round_timeouts=3,
)


# -- (a) proxy kill on the real transport ---------------------------------------

def run_failover_comparison(num_clients=4, ops_per_client=24):
    """The same proxied workload unkilled vs with one proxy killed mid-run."""
    workload = generate_workload(
        num_clients=num_clients,
        ops_per_client=ops_per_client,
        num_keys=16,
        seed=13,
        pipeline_depth=4,
    )
    common = dict(
        num_shards=4,
        num_groups=2,
        use_proxy=True,
        num_proxies=2,
        retry_policy=FAST_RETRY,
    )
    baseline = run_asyncio_kv_workload(workload, **common)
    killed = run_asyncio_kv_workload(
        workload,
        kill_proxy_after_ops=max(1, workload.total_operations() // 3),
        **common,
    )
    return workload, baseline, killed


def _failover_table(workload, baseline, killed):
    total = workload.total_operations()
    rows = []
    for name, result in (("baseline", baseline), ("proxy killed", killed)):
        rows.append(
            {
                "scenario": name,
                "ops": f"{result.completed_ops}/{total}",
                "ops lost": total - result.completed_ops,
                "failovers": result.proxy_failovers,
                "read p99": f"{result.read_stats().p99 * 1e3:.1f} ms",
                "write p99": f"{result.write_stats().p99 * 1e3:.1f} ms",
                "atomic": result.check().all_atomic,
            }
        )
    return rows


def check_failover(workload, baseline, killed):
    total = workload.total_operations()
    for result in (baseline, killed):
        # The headline claim: zero ops lost, zero client-visible errors.
        assert result.completed_ops == total
        verdict = check_per_key_atomicity(result.histories)
        assert verdict.all_atomic, verdict.summary()
    assert killed.proxy_kill is not None and killed.proxy_kill["killed"]
    assert killed.proxy_failovers >= 1


# -- (b) view push at a live resize (sim) ---------------------------------------

def _steady_state_resize(push_views: bool):
    """Ops, quiesce, resize, ops -- the steady-state replay count."""
    shard_map = ShardMap(4, num_groups=2, readers=2, writers=2)
    cluster = SimKVCluster(shard_map, ["c1", "c2"], num_proxies=2,
                           push_views=push_views)

    def issue(client_id, ops):
        client = cluster.clients[client_id]
        remaining = list(ops)

        def issue_next(_outcome=None):
            if not remaining:
                return
            kind, key, value = remaining.pop(0)
            if kind == "put":
                client.put(key, value, on_complete=issue_next)
            else:
                client.get(key, on_complete=issue_next)

        cluster.events.schedule(0.0, issue_next, label=f"start:{client_id}")

    for client_id in ("c1", "c2"):
        issue(client_id, [("put", f"{client_id}-k{i}", f"v{i}") for i in range(8)])
    cluster.run()
    cluster.resize(8)
    for client_id in ("c1", "c2"):
        issue(client_id, [("get", f"{client_id}-k{i}", None) for i in range(8)])
    cluster.run()
    verdict = check_per_key_atomicity(cluster.recorder.histories())
    assert verdict.all_atomic, verdict.summary()
    return cluster


def run_view_push_comparison(num_clients=4, ops_per_client=15):
    """Steady-state and loaded mid-run resizes, with and without push."""
    steady = {push: _steady_state_resize(push) for push in (True, False)}
    workload = generate_workload(
        num_clients=num_clients,
        ops_per_client=ops_per_client,
        num_keys=16,
        seed=11,
        pipeline_depth=4,
    )
    loaded = {
        push: run_sim_kv_workload(
            workload, num_shards=4, num_groups=2,
            use_proxy=True, num_proxies=2, proxy_flush_delay=0.25,
            resize_to=8, push_views=push,
        )
        for push in (True, False)
    }
    return steady, loaded


def _view_push_table(steady, loaded):
    rows = []
    for push in (True, False):
        cluster = steady[push]
        rows.append(
            {
                "scenario": "steady-state resize",
                "view push": "on" if push else "off",
                "stale replays": cluster.stale_replays(),
                "pushes applied": cluster.view_pushes_applied(),
                "atomic": True,  # asserted in _steady_state_resize
            }
        )
    for push in (True, False):
        result = loaded[push]
        rows.append(
            {
                "scenario": "mid-run resize",
                "view push": "on" if push else "off",
                "stale replays": result.stale_replays,
                "pushes applied": result.view_pushes,
                "atomic": result.check().all_atomic,
            }
        )
    return rows


def check_view_push(steady, loaded):
    # Steady state: the push removes stale replays entirely; bounce-only
    # discovery pays at least one per proxy.
    assert steady[True].stale_replays() == 0
    assert steady[True].view_pushes_applied() == 2
    assert steady[False].stale_replays() >= 1
    # Under load the push can only help (rounds in flight at the cutover
    # still bounce -- that is the safety net working as designed).
    for push in (True, False):
        assert loaded[push].completed_ops > 0
        assert loaded[push].check().all_atomic
    assert loaded[True].stale_replays <= loaded[False].stale_replays


# -- pytest entry points --------------------------------------------------------

def test_kv_proxy_failover(benchmark):
    workload, baseline, killed = benchmark.pedantic(
        run_failover_comparison, rounds=1, iterations=1
    )
    print_section("KV failover — proxy kill over loopback TCP")
    print(format_rows(_failover_table(workload, baseline, killed),
                      ["scenario", "ops", "ops lost", "failovers",
                       "read p99", "write p99", "atomic"]))
    check_failover(workload, baseline, killed)


def test_kv_view_push(benchmark):
    steady, loaded = benchmark.pedantic(
        run_view_push_comparison, rounds=1, iterations=1
    )
    print_section("KV view push — stale replays at a live resize (sim)")
    print(format_rows(_view_push_table(steady, loaded),
                      ["scenario", "view push", "stale replays",
                       "pushes applied", "atomic"]))
    check_view_push(steady, loaded)


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    if quick:
        failover = run_failover_comparison(num_clients=2, ops_per_client=12)
        pushes = run_view_push_comparison(num_clients=2, ops_per_client=10)
    else:
        failover = run_failover_comparison()
        pushes = run_view_push_comparison()
    print_section("KV failover — proxy kill over loopback TCP")
    print(format_rows(_failover_table(*failover),
                      ["scenario", "ops", "ops lost", "failovers",
                       "read p99", "write p99", "atomic"]))
    print_section("KV view push — stale replays at a live resize (sim)")
    print(format_rows(_view_push_table(*pushes),
                      ["scenario", "view push", "stale replays",
                       "pushes applied", "atomic"]))
    check_failover(*failover)
    check_view_push(*pushes)
    json_path = bench_json_path(sys.argv[1:])
    if json_path:
        steady, loaded = pushes
        write_bench_json(json_path, "kv_failover", {
            "failover": [result_row(failover[1], "baseline"),
                         result_row(failover[2], "proxy-killed")],
            "view_push_steady": {
                "with-push": {"stale_replays": steady[True].stale_replays(),
                              "pushes_applied": steady[True].view_pushes_applied()},
                "no-push": {"stale_replays": steady[False].stale_replays(),
                            "pushes_applied": steady[False].view_pushes_applied()},
            },
            "view_push_loaded": {
                "with-push": result_row(loaded[True]),
                "no-push": result_row(loaded[False]),
            },
        })
        write_metrics_json(json_path, "kv_failover_asyncio", failover[2])
    print("\nall failover/view-push checks passed")
