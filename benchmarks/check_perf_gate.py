"""Perf-regression gate: diff a fresh BENCH_kv.json against the baseline.

CI regenerates ``BENCH_kv.json`` with every ``bench_kv_*.py --quick`` run and
then calls this script to compare it against the checked-in baseline
(``benchmarks/baselines/BENCH_kv.json``).  The gate walks both JSON trees in
lockstep and checks every occurrence of the *efficiency* metrics -- the
numbers the perf-bearing features (batching, proxy fan-in, the read cache)
are judged by:

* lower-is-better: ``frames_per_op``, ``replica_frames_per_op``,
  ``replica_sub_ops_per_op``, ``read_subs_per_op`` -- a fresh value may not
  exceed baseline by more than the tolerance;
* higher-is-better: ``read_subs_ratio``, ``cache_hit_rate`` -- a fresh value
  may not fall short of baseline by more than the tolerance;
* ``atomic`` -- may never go from ``true`` to ``false``, tolerance or not.

Wall-clock numbers (throughput, latencies) are deliberately *not* gated:
quick runs on shared CI runners are too noisy for them, while the gated
metrics are counters fixed by protocol behaviour and the seeded workloads.
The relative tolerance (default 25%) plus a small absolute slack absorbs
merge-window jitter in the asyncio rows; sim rows are deterministic.

Sections present in the fresh report but absent from the baseline are
skipped with a note (a new bench should not fail the gate before its
baseline lands); the reverse -- a baseline section missing from the fresh
report -- fails, because losing a bench silently is itself a regression.

Usage::

    PYTHONPATH=src python benchmarks/check_perf_gate.py BENCH_kv.json \
        [--baseline benchmarks/baselines/BENCH_kv.json] [--tolerance 0.25]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, List

LOWER_IS_BETTER = (
    "frames_per_op",
    "replica_frames_per_op",
    "replica_sub_ops_per_op",
    "read_subs_per_op",
)
HIGHER_IS_BETTER = (
    "read_subs_ratio",
    "cache_hit_rate",
)
#: Absolute slack added on top of the relative tolerance, so near-zero
#: baselines (e.g. 1.1 sub-ops/op) don't turn float jitter into failures.
ABS_SLACK = 0.25

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baselines" / "BENCH_kv.json"


def compare(base: Any, fresh: Any, path: str, tolerance: float,
            violations: List[str], notes: List[str]) -> None:
    """Walk baseline and fresh trees together, checking gated metrics."""
    if isinstance(base, dict):
        if not isinstance(fresh, dict):
            violations.append(f"{path}: baseline has an object, fresh has "
                              f"{type(fresh).__name__}")
            return
        for key, base_value in base.items():
            here = f"{path}.{key}" if path else key
            if key not in fresh:
                violations.append(f"{here}: present in baseline, missing "
                                  f"from fresh report")
                continue
            fresh_value = fresh[key]
            if key == "atomic":
                if bool(base_value) and not bool(fresh_value):
                    violations.append(f"{here}: atomic regressed to false")
            elif key in LOWER_IS_BETTER and isinstance(base_value, (int, float)):
                limit = base_value * (1 + tolerance) + ABS_SLACK
                if fresh_value > limit:
                    violations.append(
                        f"{here}: {fresh_value} exceeds baseline "
                        f"{base_value} by more than {tolerance:.0%} (+{ABS_SLACK})"
                    )
            elif key in HIGHER_IS_BETTER and isinstance(base_value, (int, float)):
                floor = base_value * (1 - tolerance) - ABS_SLACK
                if fresh_value < floor:
                    violations.append(
                        f"{here}: {fresh_value} falls short of baseline "
                        f"{base_value} by more than {tolerance:.0%} (-{ABS_SLACK})"
                    )
            else:
                compare(base_value, fresh_value, here, tolerance,
                        violations, notes)
        for key in fresh:
            if key not in base and not path:
                notes.append(f"section {key!r} has no baseline yet; skipped")
    elif isinstance(base, list):
        if not isinstance(fresh, list):
            violations.append(f"{path}: baseline has a list, fresh has "
                              f"{type(fresh).__name__}")
            return
        if len(base) != len(fresh):
            notes.append(f"{path}: row count changed "
                         f"({len(base)} -> {len(fresh)}); comparing the "
                         f"shared prefix")
        for index, (base_item, fresh_item) in enumerate(zip(base, fresh)):
            compare(base_item, fresh_item, f"{path}[{index}]", tolerance,
                    violations, notes)
    # Scalars outside the gated keys (labels, counts, timings): not gated.


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="freshly generated BENCH_kv.json")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        help="checked-in baseline (default: %(default)s)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="relative tolerance (default: %(default)s)")
    args = parser.parse_args(argv)

    base = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
    fresh = json.loads(Path(args.fresh).read_text(encoding="utf-8"))

    violations: List[str] = []
    notes: List[str] = []
    compare(base, fresh, "", args.tolerance, violations, notes)

    for note in notes:
        print(f"note: {note}")
    if violations:
        print(f"\nPERF GATE FAILED ({len(violations)} violation(s), "
              f"tolerance {args.tolerance:.0%}):")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    print(f"perf gate passed: {args.fresh} within {args.tolerance:.0%} "
          f"of {args.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
