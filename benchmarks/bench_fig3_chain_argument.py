"""Benchmark F3-F7 — the three-phase chain argument (Figures 3 through 7).

Figures 3-7 of the paper describe the construction of chains alpha, beta
(via beta' / beta''), the horizontal/diagonal links and the zigzag chain Z.
This benchmark regenerates the whole construction for a range of system
sizes and every possible critical-server position, verifying every
indistinguishability link, and then runs the executable refutation: for each
natural full-info read rule it exhibits a concrete execution violating
atomicity (the content of Theorem 1).
"""

from __future__ import annotations

import pytest

from repro.bench.report import format_rows
from repro.theory.chains import verify_chain_argument
from repro.theory.fullinfo import NATURAL_RULES
from repro.theory.impossibility import refute_all

from _bench_utils import print_section


@pytest.mark.parametrize("num_servers", [3, 5, 8])
def test_fig3_chain_argument_links(benchmark, num_servers):
    def verify_all():
        return [
            verify_chain_argument(num_servers, critical)
            for critical in range(1, num_servers + 1)
        ]

    certificates = benchmark(verify_all)

    rows = [
        {
            "critical server": f"s{cert.critical_index}",
            "links checked": len(cert.links),
            "executions": cert.executions_constructed(),
            "verified": cert.all_verified,
        }
        for cert in certificates
    ]
    print_section(f"Fig. 3-7 — chain argument over S={num_servers}, t=1, W=2, R=2")
    print(format_rows(rows, ["critical server", "links checked", "executions", "verified"]))

    assert all(cert.all_verified for cert in certificates)
    # The construction grows linearly with S: chains alpha and beta have S+1
    # executions each and each k contributes a horizontal and diagonal link.
    assert all(cert.executions_constructed() >= 4 * num_servers for cert in certificates)


@pytest.mark.parametrize("num_servers", [3, 5])
def test_fig3_refutation_of_read_rules(benchmark, num_servers):
    outcomes = benchmark(refute_all, NATURAL_RULES, num_servers)

    rows = [
        {
            "read rule": outcome.rule_name,
            "critical server": f"s{outcome.critical_index}" if outcome.critical_index else "-",
            "violating execution": outcome.witness.execution.name if outcome.witness else "-",
            "violation kind": outcome.witness.kind if outcome.witness else "-",
            "executions evaluated": outcome.executions_evaluated,
        }
        for outcome in outcomes
    ]
    print_section(
        f"Theorem 1 — refuting W1R2 read rules over S={num_servers} (executable proof)"
    )
    print(format_rows(
        rows,
        ["read rule", "critical server", "violating execution", "violation kind",
         "executions evaluated"],
    ))

    assert all(outcome.refuted for outcome in outcomes)
