"""Benchmark — kv-store scaling: shard count x batch size, both backends.

Sweeps the sharded key-value store (:mod:`repro.kvstore`) under a fixed
client load and reports throughput, message cost and per-key atomicity:

* **shards**: per-object independence means more shards = more parallel
  server capacity; throughput rises with shard count at fixed load.
* **batch size**: coalescing same-shard operations into one framed round
  amortizes per-message overhead; fewer frames, higher throughput,
  most visibly when few shards concentrate the load.

The sim sweep uses virtual time with a modeled per-server service cost; the
asyncio sweep exercises the same store over real loopback TCP with a small
service delay per replica connection.  Every recorded run is checked for
per-key atomicity.

Run as a pytest-benchmark test or directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_kv_sharding.py -s
    PYTHONPATH=src python benchmarks/bench_kv_sharding.py [--quick]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.bench.report import format_rows
from repro.kvstore import generate_workload, run_asyncio_kv_workload, run_sim_kv_workload
from repro.sim.delays import ConstantDelay

from _bench_utils import (
    bench_json_path,
    print_section,
    rows_for,
    write_bench_json,
    write_metrics_json,
)

SIM_SHARDS = (1, 2, 4, 8)
SIM_BATCHES = (1, 8)
NET_SHARDS = (1, 2, 4)


def _sim_workload(clients=6, ops=30, keys=48):
    return generate_workload(
        num_clients=clients, ops_per_client=ops, num_keys=keys, seed=7,
        pipeline_depth=6,
    )


def _net_workload(clients=3, ops=30, keys=24):
    return generate_workload(
        num_clients=clients, ops_per_client=ops, num_keys=keys, seed=7,
        pipeline_depth=6,
    )


def run_sim_sweep(shard_counts=SIM_SHARDS, batches=SIM_BATCHES, workload=None):
    workload = workload or _sim_workload()
    rows = []
    for batch in batches:
        for shards in shard_counts:
            result = run_sim_kv_workload(
                workload,
                num_shards=shards,
                max_batch=batch,
                delay_model=ConstantDelay(1.0),
                server_overhead=0.3,
                server_per_op=0.3,
            )
            rows.append(result)
    return rows


def run_net_sweep(shard_counts=NET_SHARDS, workload=None):
    workload = workload or _net_workload()
    rows = []
    for shards in shard_counts:
        result = run_asyncio_kv_workload(
            workload,
            num_shards=shards,
            max_batch=6,
            service_overhead=0.001,
            service_per_op=0.001,
        )
        rows.append(result)
    return rows


def _print_sweep(title, results):
    print_section(title)
    print(format_rows([r.as_row() for r in results],
                      ["backend", "shards", "batch", "ops", "throughput",
                       "mean_batch", "messages", "read_p50", "atomic"]))


def test_kv_sim_sharding_sweep(benchmark):
    results = benchmark.pedantic(run_sim_sweep, rounds=1, iterations=1)
    _print_sweep("KV store scaling — simulator (virtual time)", results)
    for result in results:
        assert result.check().all_atomic
        assert result.completed_ops == _sim_workload().total_operations()
    by_batch = {}
    for result in results:
        by_batch.setdefault(result.max_batch, []).append(result)
    for batch, sweep in by_batch.items():
        ordered = sorted(sweep, key=lambda r: r.num_shards)
        # Fixed client load: throughput rises with shard count.
        assert ordered[-1].throughput() > ordered[0].throughput() * 1.5
    # Batching amortizes frames: at one shard the batched run sends far
    # fewer messages and completes sooner.
    single = {r.max_batch: r for r in results if r.num_shards == 1}
    assert single[8].messages_sent < single[1].messages_sent / 2
    assert single[8].throughput() > single[1].throughput()


def test_kv_asyncio_sharding_sweep(benchmark):
    results = benchmark.pedantic(run_net_sweep, rounds=1, iterations=1)
    _print_sweep("KV store scaling — asyncio loopback TCP (wall clock)", results)
    for result in results:
        assert result.check().all_atomic
        assert result.completed_ops == _net_workload().total_operations()
    ordered = sorted(results, key=lambda r: r.num_shards)
    # Wall-clock throughput should rise with shard count; allow scheduler
    # noise but insist on a real improvement from 1 to max shards.
    assert ordered[-1].throughput() > ordered[0].throughput() * 1.1


if __name__ == "__main__":
    if "--quick" in sys.argv[1:]:
        sim = run_sim_sweep(shard_counts=(1, 2), batches=(8,),
                            workload=_sim_workload(clients=2, ops=8, keys=12))
        net = run_net_sweep(shard_counts=(1, 2),
                            workload=_net_workload(clients=2, ops=6, keys=8))
    else:
        sim = run_sim_sweep()
        net = run_net_sweep()
    _print_sweep("KV store scaling — simulator (virtual time)", sim)
    _print_sweep("KV store scaling — asyncio loopback TCP (wall clock)", net)
    json_path = bench_json_path(sys.argv[1:])
    if json_path:
        write_bench_json(json_path, "kv_sharding",
                         {"sim": rows_for(sim), "asyncio": rows_for(net)})
        write_metrics_json(json_path, "kv_sharding_sim", sim[-1])
        write_metrics_json(json_path, "kv_sharding_asyncio", net[-1])
