#!/usr/bin/env python3
"""Walk through the paper's W1R2 impossibility proof, mechanically.

The script

1. builds chain alpha and shows how the critical server is located for a
   concrete full-info read rule,
2. verifies every indistinguishability link of the three-phase chain argument
   (Figures 3-7),
3. exhibits, for each of several natural read rules, a concrete execution in
   which the rule violates atomicity -- the executable content of Theorem 1,
4. runs the sieve construction of Section 4 (Fig. 8) for a non-trivial set of
   servers affected by the blind first round-trip.

Usage::

    python examples/impossibility_walkthrough.py [num_servers]
"""

from __future__ import annotations

import sys

from repro.theory.chains import verify_chain_argument
from repro.theory.fullinfo import NATURAL_RULES
from repro.theory.impossibility import find_critical_server, refute_rule
from repro.theory.sieve import run_sieve
from repro.util.ids import server_ids


def main() -> None:
    num_servers = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    servers = server_ids(num_servers)

    print(f"== Phase 1: locating the critical server (S={num_servers}, t=1) ==")
    for rule in NATURAL_RULES:
        index, witness, evaluations = find_critical_server(rule, servers)
        if index is not None:
            print(
                f"  rule {rule.name:22} -> critical server s{index} "
                f"({evaluations} executions evaluated)"
            )
        else:
            print(f"  rule {rule.name:22} -> violates a forced value immediately: "
                  f"{witness.description}")
    print()

    print("== Phases 1-3: verifying every link of the chain argument ==")
    for critical in range(1, num_servers + 1):
        certificate = verify_chain_argument(num_servers, critical)
        print(f"  critical server s{critical}: {certificate.summary()}")
    print()

    print("== Theorem 1, executably: refuting each candidate read rule ==")
    for rule in NATURAL_RULES:
        outcome = refute_rule(rule, num_servers=num_servers)
        print(f"  {outcome.summary()}")
        if outcome.witness is not None:
            print("    violating execution:")
            for line in outcome.witness.execution.describe().splitlines():
                print(f"      {line}")
    print()

    print("== Section 4: the sieve when R2's first round-trip flips servers ==")
    affected = servers[-1:]
    certificate = run_sieve(num_servers + 2, affected_servers=affected)
    print(f"  {certificate.summary()}")
    for name, ok, detail in certificate.checks:
        print(f"    [{'ok' if ok else 'FAIL'}] {name}: {detail}")


if __name__ == "__main__":
    main()
