#!/usr/bin/env python3
"""Byzantine servers: how far does the crash-model design carry over?

Section 5.2 of the paper remarks that its impossibility results carry over to
the Byzantine model and that the constructive fast-read result can be
extended to tolerate Byzantine servers.  This example explores the substrate
this reproduction provides for that direction:

1. run plain MW-ABD with one tag-inflating Byzantine server -- its readers
   happily return a value nobody ever wrote, and the checker flags the
   history (read-from-nowhere);
2. run the Byzantine-tolerant vouching register (``S > 4t``) under the same
   attack -- every history stays atomic and the fabricated value never
   reaches a client;
3. quantify the damage in case 1 with the staleness metrics.

Usage::

    python examples/byzantine_faults.py [seed]
"""

from __future__ import annotations

import sys

from repro.consistency import check_atomicity, measure_staleness
from repro.protocols import build_protocol
from repro.sim import Simulation, TagInflation, UniformDelay
from repro.sim.byzantine import FABRICATED_VALUE
from repro.util.ids import client_ids, server_ids
from repro.workloads import apply_open_loop, uniform_open_loop


def run(protocol_key: str, corrupt_server: str, seed: int) -> None:
    protocol = build_protocol(protocol_key, server_ids(5), 1, readers=2, writers=2)
    simulation = Simulation(
        protocol,
        delay_model=UniformDelay(0.5, 1.5, seed=seed),
        byzantine_behaviors={corrupt_server: TagInflation()},
    )
    workload = uniform_open_loop(
        client_ids("w", 2), client_ids("r", 2),
        writes_per_writer=3, reads_per_reader=5, horizon=100.0, seed=seed,
    )
    apply_open_loop(simulation, workload)
    result = simulation.run()
    verdict = check_atomicity(result.history)
    staleness = measure_staleness(result.history)
    poisoned = sum(1 for op in result.history.reads if op.value == FABRICATED_VALUE)

    print(f"--- {protocol.name} (server {corrupt_server} is Byzantine) ---")
    print(f"  atomicity        : {verdict.summary()}")
    print(f"  poisoned reads   : {poisoned} returned the fabricated value")
    print(f"  staleness        : {staleness.summary()}")
    print()


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    print("One Byzantine server (tag inflation) out of S=5, t=1, 2 writers, 2 readers\n")
    run("abd-mwmr", "s1", seed)
    run("byzantine-safe-mwmr", "s1", seed)
    print("The vouching register (S > 4t) requires every returned value to be")
    print("reported identically by at least t+1 servers, so the fabricated tag")
    print("never wins; plain MW-ABD trusts the largest tag it sees and is poisoned.")


if __name__ == "__main__":
    main()
