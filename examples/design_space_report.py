#!/usr/bin/env python3
"""Regenerate Table 1: the design space of fast register implementations.

For a configurable system configuration this example prints

* the theoretical Table 1 (impossibility and feasibility conditions evaluated
  at the configuration), and
* the measured counterpart: one protocol per quadrant run on the simulator
  under contended multi-writer workloads, with atomicity violations counted
  and worst-case round-trips reported.

Usage::

    python examples/design_space_report.py [servers] [max_faults]
"""

from __future__ import annotations

import sys

from repro.core.conditions import SystemParameters, fast_read_bound
from repro.theory.design_space import empirical_table, format_table, theoretical_table


def main() -> None:
    servers = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    max_faults = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    params = SystemParameters(servers=servers, writers=2, readers=2, max_faults=max_faults)

    print(f"system configuration: {params.describe()}")
    print(f"fast-read bound S/t - 2 = {fast_read_bound(servers, max_faults):.2f}")
    print()

    theoretical = theoretical_table(params)
    empirical = empirical_table(params, seeds=(0, 1, 2), bursts=4)
    print(format_table(theoretical, empirical))
    print()
    for row in empirical:
        status = "matches theory" if row.matches_expectation else "DISAGREES with theory"
        anomalies = ", ".join(row.anomaly_kinds) if row.anomaly_kinds else "none"
        print(
            f"  {row.point.name}: {row.protocol} over {row.runs} runs / "
            f"{row.total_operations} operations -> {row.violations} violating runs "
            f"(anomalies: {anomalies}) [{status}]"
        )


if __name__ == "__main__":
    main()
