#!/usr/bin/env python3
"""A geo-replicated key-value store built on ``repro.kvstore``.

This is the deployment the paper's introduction motivates, now served by the
full store stack: a :class:`~repro.kvstore.sharding.ShardMap` spreads the
key space over six shards multiplexed onto three replica groups (one per
site -- the placement layer decouples shard count from cluster size), and
every site's clients enter through a **site-local ingress proxy**
(:mod:`repro.kvstore.proxy`).  Each proxy merges the quorum rounds of its
site's clients into shared replica frames -- the cluster pays the fan-out
once per merged round instead of once per client -- and routes reads through
a :class:`~repro.kvstore.NearestQuorum` policy built from the same site map
the delay model uses, so each read targets a quorum instead of every
replica.  The checker verifies every key's sub-history independently.

The run compares the paper's fast-read register (W2R1) against the MW-ABD
baseline (W2R2) under a geo delay model (local ~0.5 ms, WAN ~40 ms) on a
read-heavy workload: with one WAN round-trip instead of two, the fast-read
protocol roughly halves user-perceived read latency -- now for the whole
sharded store, behind the proxy tier.

Usage::

    python examples/geo_replicated_kv.py [keys] [ops_per_client]
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.kvstore import (
    NearestQuorum,
    ShardMap,
    generate_workload,
    run_sim_kv_workload,
)
from repro.sim import GeoDelay

SITES = ("us-east", "eu-west", "ap-south")
NUM_SHARDS = 6
NUM_GROUPS = 3  # one replica group per site; each group hosts two shards
SERVERS_PER_GROUP = 9  # fast reads need R < S/t - 2, so 6 clients need S >= 9
NUM_CLIENTS = 6  # two per site, sharing that site's ingress proxy
NUM_PROXIES = 3  # one per site


def _site_map(shard_map: ShardMap, clients) -> Dict[str, str]:
    """Place groups, proxies and clients per site.

    Clients are assigned to proxies round-robin (client ``i`` -> proxy
    ``i % NUM_PROXIES``), so giving client ``i`` and proxy ``i % 3`` the same
    site makes every client enter through its *local* proxy.
    """
    mapping: Dict[str, str] = {}
    for index, group in enumerate(shard_map.groups.values()):
        for server in group.servers:
            mapping[server] = SITES[index % len(SITES)]
    for index, client in enumerate(clients):
        mapping[client] = SITES[index % len(SITES)]
    for index in range(NUM_PROXIES):
        mapping[f"p{index + 1}"] = SITES[index % len(SITES)]
    return mapping


def run_store(protocol_key: str, keys: int, ops_per_client: int, seed: int) -> None:
    shard_map = ShardMap(
        NUM_SHARDS,
        protocol_key=protocol_key,
        servers_per_shard=SERVERS_PER_GROUP,
        max_faults=1,
        readers=NUM_CLIENTS,
        writers=NUM_CLIENTS,
        num_groups=NUM_GROUPS,
    )
    workload = generate_workload(
        num_clients=NUM_CLIENTS,
        ops_per_client=ops_per_client,
        num_keys=keys,
        read_fraction=0.75,
        pipeline_depth=4,
        seed=seed,
    )
    sites = _site_map(shard_map, workload.clients)
    delay = GeoDelay(sites, local_delay=0.5, wan_delay=40.0, seed=seed)
    result = run_sim_kv_workload(
        workload,
        shard_map=shard_map,
        max_batch=8,
        delay_model=delay,
        server_overhead=0.05,
        server_per_op=0.02,
        use_proxy=True,
        num_proxies=NUM_PROXIES,
        proxy_flush_delay=0.25,
        read_policy=NearestQuorum.from_sites(sites),
    )
    verdict = result.check()
    reads = result.read_stats()
    writes = result.write_stats()
    merged = result.proxy_stats
    print(f"--- {protocol_key} over {keys} keys on {NUM_SHARDS} shards / "
          f"{NUM_GROUPS} groups / {NUM_PROXIES} proxies ---")
    print(f"  operations        : {result.completed_ops} "
          f"({result.batch_stats.summary()})")
    print(f"  proxy merging     : mean {merged.mean_batch_size:.2f} rounds per "
          f"replica frame, largest {merged.largest}; "
          f"{result.replica_frames_per_op():.2f} replica frames per op")
    print(f"  read  latency (ms): p50={reads.p50:.1f}  p95={reads.p95:.1f}  "
          f"p99={reads.p99:.1f}")
    print(f"  write latency (ms): p50={writes.p50:.1f}  p95={writes.p95:.1f}")
    print(f"  atomicity violations across keys: {len(verdict.violating_keys)}")
    print()


def main() -> None:
    keys = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    ops_per_client = int(sys.argv[2]) if len(sys.argv) > 2 else 20
    print(f"geo-replicated KV store: {NUM_SHARDS} shards on {NUM_GROUPS} "
          f"groups x {SERVERS_PER_GROUP} replicas across {', '.join(SITES)},")
    print(f"each site's {NUM_CLIENTS // NUM_PROXIES} clients entering through "
          "a site-local ingress proxy (nearest-quorum reads)")
    print("WAN one-way delay ~40 ms, read-heavy pipelined workload\n")
    run_store("fast-read-mwmr", keys, ops_per_client, seed=100)
    run_store("abd-mwmr", keys, ops_per_client, seed=100)
    print("The fast-read register halves user-perceived read latency (one WAN")
    print("round-trip instead of two) for every key of the sharded store; the")
    print("proxies merge each site's client rounds into shared replica frames")
    print("and the checker confirms per-key atomicity for both protocols.")


if __name__ == "__main__":
    main()
