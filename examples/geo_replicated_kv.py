#!/usr/bin/env python3
"""A geo-replicated key-value store built on multi-writer atomic registers.

This is the deployment the paper's introduction motivates: replicas in
several sites, clients reading from nearby replicas, and user-perceived
latency dominated by the number of wide-area round-trips.  The example builds
one atomic register per key on the simulator with a geo delay model (local
~0.5 ms, WAN ~40 ms) and compares the paper's fast-read protocol against the
MW-ABD baseline on a read-heavy workload:

* W2R1 (fast read): reads take one WAN round-trip.
* W2R2 (MW-ABD): reads take two WAN round-trips, roughly doubling the
  user-perceived read latency.

Both runs are checked for atomicity, per key.

Usage::

    python examples/geo_replicated_kv.py [keys] [reads_per_key]
"""

from __future__ import annotations

import sys
from typing import Dict, List

from repro.consistency import check_atomicity
from repro.protocols import build_protocol
from repro.sim import GeoDelay, Simulation
from repro.util.ids import client_ids, server_ids
from repro.util.stats import summarize
from repro.workloads import apply_open_loop, uniform_open_loop

SITES = ("us-east", "eu-west", "ap-south")


def _site_map(servers: List[str], writers: List[str], readers: List[str]) -> Dict[str, str]:
    mapping: Dict[str, str] = {}
    for index, server in enumerate(servers):
        mapping[server] = SITES[index % len(SITES)]
    for index, writer in enumerate(writers):
        mapping[writer] = SITES[index % len(SITES)]
    for index, reader in enumerate(readers):
        mapping[reader] = SITES[index % len(SITES)]
    return mapping


def run_store(protocol_key: str, keys: int, reads_per_key: int, seed: int) -> None:
    servers = server_ids(5)
    writers = client_ids("w", 2)
    readers = client_ids("r", 2)
    sites = _site_map(servers, writers, readers)

    read_latencies: List[float] = []
    write_latencies: List[float] = []
    violations = 0

    for key_index in range(keys):
        protocol = build_protocol(protocol_key, servers, max_faults=1, readers=2, writers=2)
        simulation = Simulation(
            protocol,
            delay_model=GeoDelay(sites, local_delay=0.5, wan_delay=40.0, seed=seed + key_index),
        )
        workload = uniform_open_loop(
            writers,
            readers,
            writes_per_writer=2,
            reads_per_reader=reads_per_key,
            horizon=3000.0,
            seed=seed + key_index,
        )
        apply_open_loop(simulation, workload)
        outcome = simulation.run()
        verdict = check_atomicity(outcome.history)
        if not verdict.atomic:
            violations += 1
        read_latencies.extend(
            op.latency for op in outcome.history.reads if op.latency is not None
        )
        write_latencies.extend(
            op.latency for op in outcome.history.writes if op.latency is not None
        )

    reads = summarize(read_latencies)
    writes = summarize(write_latencies)
    print(f"--- {protocol_key} over {keys} keys ---")
    print(f"  read  latency (ms): p50={reads.p50:.1f}  p95={reads.p95:.1f}  p99={reads.p99:.1f}")
    print(f"  write latency (ms): p50={writes.p50:.1f}  p95={writes.p95:.1f}")
    print(f"  atomicity violations across keys: {violations}")
    print()


def main() -> None:
    keys = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    reads_per_key = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    print("geo-replicated KV store: 5 replicas across", ", ".join(SITES))
    print("WAN one-way delay ~40 ms, read-heavy workload\n")
    run_store("fast-read-mwmr", keys, reads_per_key, seed=100)
    run_store("abd-mwmr", keys, reads_per_key, seed=100)
    print("The fast-read register halves user-perceived read latency (one WAN")
    print("round-trip instead of two) while the checker confirms atomicity for both.")


if __name__ == "__main__":
    main()
