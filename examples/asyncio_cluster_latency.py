#!/usr/bin/env python3
"""Wall-clock latency on a real asyncio TCP cluster (loopback).

Starts one TCP replica per server, connects real reader and writer clients,
runs a closed-loop workload for the paper's fast-read protocol, MW-ABD and
the single-writer DGLV register, and reports measured operation latencies.
The absolute numbers are loopback numbers; the *shape* is the paper's: reads
that need one round-trip complete in roughly half the time of reads that need
two.

Usage::

    python examples/asyncio_cluster_latency.py [writes_per_writer] [reads_per_reader]
"""

from __future__ import annotations

import sys

from repro.asyncio_net import run_closed_loop_workload
from repro.consistency import check_atomicity
from repro.protocols import build_protocol
from repro.util.ids import server_ids


def run_one(protocol_key: str, writes: int, reads: int) -> None:
    protocol = build_protocol(protocol_key, server_ids(5), max_faults=1, readers=2, writers=2)
    result = run_closed_loop_workload(protocol, writes_per_writer=writes, reads_per_reader=reads)
    verdict = check_atomicity(result.history)
    read_stats = result.read_stats()
    write_stats = result.write_stats()
    print(f"--- {protocol.name} ---")
    print(
        f"  reads : {read_stats.count:3d} ops, p50={read_stats.p50 * 1e3:.2f} ms, "
        f"p99={read_stats.p99 * 1e3:.2f} ms, round-trips={max(result.read_round_trips)}"
    )
    print(
        f"  writes: {write_stats.count:3d} ops, p50={write_stats.p50 * 1e3:.2f} ms, "
        f"p99={write_stats.p99 * 1e3:.2f} ms, round-trips={max(result.write_round_trips)}"
    )
    print(f"  atomicity: {verdict.summary()}")
    print()


def main() -> None:
    writes = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    reads = int(sys.argv[2]) if len(sys.argv) > 2 else 15
    print("asyncio loopback cluster, 5 replicas, t=1, 2 writers, 2 readers\n")
    run_one("fast-read-mwmr", writes, reads)
    run_one("abd-mwmr", writes, reads)
    run_one("fast-swmr", writes, reads)


if __name__ == "__main__":
    main()
