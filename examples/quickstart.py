#!/usr/bin/env python3
"""Quickstart: emulate a multi-writer atomic register and check atomicity.

Runs the paper's fast-read (W2R1) protocol and the classic MW-ABD (W2R2)
baseline on the discrete-event simulator under a small random workload,
prints each operation, the observed round-trip counts, and the atomicity
verdict produced by the checker.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import quick_run
from repro.core.fastness import classify_round_trips


def describe_run(protocol_key: str) -> None:
    print(f"=== {protocol_key} ===")
    result = quick_run(
        protocol_key,
        servers=5,
        max_faults=1,
        readers=2,
        writers=2,
        writes_per_writer=3,
        reads_per_reader=4,
        seed=7,
    )
    for op in result.history:
        latency = f"{op.latency:.2f}" if op.latency is not None else "pending"
        print(
            f"  {op.client:>3} {op.kind.value:5} value={op.value!r:<14} "
            f"tag={op.tag} rtts={op.round_trips} latency={latency}"
        )
    write_rtts, read_rtts = result.history.round_trip_counts()
    point = classify_round_trips(write_rtts, read_rtts)
    print(f"  observed design point: {point}")
    print(f"  messages sent: {result.messages_sent}")
    print(f"  atomicity: {result.atomicity.summary()}")
    print()


def main() -> None:
    describe_run("fast-read-mwmr")  # the paper's W2R1 algorithm
    describe_run("abd-mwmr")  # the W2R2 baseline
    describe_run("fast-write-attempt")  # the impossible W1R2 point, caught by the checker


if __name__ == "__main__":
    main()
