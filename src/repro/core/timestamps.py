"""Tags and timestamps for multi-writer register values.

The multi-writer algorithms in the paper (Section 5.2 and Appendix A) identify
each written value by a pair ``(ts, wid)`` where ``ts`` is an integer version
number and ``wid`` is the identifier of the writer that proposed it.  Values
are totally ordered lexicographically: first by ``ts``, then by ``wid``.  The
two-round-trip write protocol guarantees that non-concurrent writes obtain
strictly increasing ``ts`` values, so the (arbitrary) writer-id order is only
ever used to break ties between *concurrent* writes, which is exactly the
argument in Section 5.2 of the paper.

This module provides:

* :class:`Tag` -- the ordered ``(ts, wid)`` pair, with :data:`BOTTOM_TAG`
  standing for the initial value ``(0, \\bot)``.
* :class:`TaggedValue` -- a tag together with the application value it names.
* Helpers for computing successor tags (``max_ts + 1`` with the local writer
  id) as the write protocol does in its second round-trip.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Any, Iterable, Optional

__all__ = [
    "BOTTOM_WRITER",
    "BOTTOM_TAG",
    "Tag",
    "TaggedValue",
    "next_tag",
    "max_tag",
]

#: Writer id used for the initial register value ``(0, \bot)``.  It compares
#: lower than every real writer id.
BOTTOM_WRITER: str = ""


@functools.total_ordering
@dataclass(frozen=True)
class Tag:
    """A totally ordered ``(ts, wid)`` version tag.

    ``ts`` is a non-negative integer timestamp; ``wid`` is the writer id (a
    string).  The ordering is lexicographic, matching the definition in
    Appendix A of the paper: ``(ts1, wi) < (ts2, wj)`` iff ``ts1 < ts2`` or
    ``ts1 == ts2 and wi < wj``.
    """

    ts: int
    wid: str = BOTTOM_WRITER

    def __post_init__(self) -> None:
        if self.ts < 0:
            raise ValueError(f"timestamp must be non-negative, got {self.ts}")

    def __lt__(self, other: "Tag") -> bool:
        if not isinstance(other, Tag):
            return NotImplemented
        return (self.ts, self.wid) < (other.ts, other.wid)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tag):
            return NotImplemented
        return (self.ts, self.wid) == (other.ts, other.wid)

    def __hash__(self) -> int:
        return hash((self.ts, self.wid))

    @property
    def is_bottom(self) -> bool:
        """True for the initial tag ``(0, \\bot)``."""
        return self.ts == 0 and self.wid == BOTTOM_WRITER

    def successor(self, wid: str) -> "Tag":
        """The tag a writer ``wid`` proposes after observing this tag.

        This is the ``ts <- maxTS + 1`` step of the two-round-trip write
        (Algorithm 1, line 9).
        """
        return Tag(self.ts + 1, wid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        wid = self.wid if self.wid else "⊥"
        return f"Tag({self.ts},{wid})"


#: The initial tag ``(0, \bot)`` held by every server before any write.
BOTTOM_TAG = Tag(0, BOTTOM_WRITER)


@functools.total_ordering
@dataclass(frozen=True)
class TaggedValue:
    """A register value together with the tag that names it.

    Ordering and equality are by tag only: two ``TaggedValue`` objects with
    the same tag denote the same write (a writer never reuses a tag), so the
    payload is irrelevant for ordering purposes.
    """

    tag: Tag
    value: Any = None

    def __lt__(self, other: "TaggedValue") -> bool:
        if not isinstance(other, TaggedValue):
            return NotImplemented
        return self.tag < other.tag

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaggedValue):
            return NotImplemented
        return self.tag == other.tag

    def __hash__(self) -> int:
        return hash(self.tag)

    @property
    def is_initial(self) -> bool:
        """True when this is the initial value written by nobody."""
        return self.tag.is_bottom

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaggedValue({self.tag!r}, {self.value!r})"


#: The initial register content.
INITIAL_VALUE = TaggedValue(BOTTOM_TAG, None)


def max_tag(tags: Iterable[Tag], default: Optional[Tag] = None) -> Tag:
    """Return the maximum of an iterable of tags.

    ``default`` (by default :data:`BOTTOM_TAG`) is returned for an empty
    iterable, mirroring what a reader does when no server reported anything
    newer than the initial value.
    """
    if default is None:
        default = BOTTOM_TAG
    best = default
    for tag in tags:
        if tag > best:
            best = tag
    return best


def next_tag(observed: Iterable[Tag], wid: str) -> Tag:
    """Compute the tag a writer proposes after its query round-trip.

    The writer collects tags from ``S - t`` servers, takes the maximum
    timestamp and proposes ``(maxTS + 1, wid)`` -- Algorithm 1, lines 6-10.
    """
    return max_tag(observed).successor(wid)
