"""The ``admissible`` predicate of the paper's W2R1 algorithm (Algorithm 1).

A one-round-trip reader collects READACK messages from ``S - t`` servers.  Each
message carries, for each value the server knows, the set of clients the
server has already *updated* with that value (``valuevector[val].updated``).
A candidate value ``v`` is *admissible with degree* ``a`` in a read when there
is a subset ``mu`` of the received messages such that

* ``|mu| >= S - a*t``  (enough servers report v),
* every message in ``mu`` carries ``v``, and
* ``|intersection of m.updated over m in mu| >= a``  (v has propagated to at
  least ``a`` clients on all those servers).

The degree bound ``a in [1, R+1]`` together with ``R < S/t - 2`` is what makes
the predicate sound: it guarantees (Lemmas 9 and 10 of Appendix A) that the
witnessing server sets are large enough to survive ``t`` failures and to
intersect the reply set of any later read.

This module implements the predicate over plain data structures so it can be
reused by the simulator-based protocol, the asyncio protocol, and the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .timestamps import Tag

__all__ = [
    "ValueReport",
    "ReadAck",
    "AdmissibilityWitness",
    "admissible",
    "admissible_values",
    "select_return_value",
]


@dataclass(frozen=True)
class ValueReport:
    """One server's knowledge of one value: the tag and its ``updated`` set."""

    tag: Tag
    updated: FrozenSet[str]

    @staticmethod
    def of(tag: Tag, updated: Iterable[str]) -> "ValueReport":
        return ValueReport(tag, frozenset(updated))


@dataclass(frozen=True)
class ReadAck:
    """A READACK message as seen by the reader.

    Attributes:
        server: the sending server's id.
        reports: mapping from tag to that server's :class:`ValueReport`.
        max_tag: the server's current ``vali`` tag (largest it has stored).
    """

    server: str
    reports: Mapping[Tag, ValueReport]
    max_tag: Tag

    def knows(self, tag: Tag) -> bool:
        return tag in self.reports

    def updated_set(self, tag: Tag) -> FrozenSet[str]:
        report = self.reports.get(tag)
        return report.updated if report is not None else frozenset()


@dataclass(frozen=True)
class AdmissibilityWitness:
    """Evidence that a value is admissible with a given degree.

    ``servers`` is the set ``Sigma_{op,v,a}`` of servers whose messages form
    the witnessing subset ``mu``; ``common_updated`` is
    ``Pi_{op,v,a} = intersection of m.updated``.
    """

    tag: Tag
    degree: int
    servers: FrozenSet[str]
    common_updated: FrozenSet[str]


def admissible(
    tag: Tag,
    acks: Sequence[ReadAck],
    degree: int,
    total_servers: int,
    max_faults: int,
) -> Optional[AdmissibilityWitness]:
    """Evaluate ``admissible(v, Msg, a)`` and return a witness if it holds.

    Following Algorithm 1 line 32: the predicate holds when there is a subset
    ``mu`` of ``acks`` with at least ``S - a*t`` messages, all carrying
    ``tag``, whose ``updated`` sets have an intersection of size at least
    ``degree``.

    Because adding more messages can only shrink the intersection, it is not
    sufficient to greedily take *all* messages carrying the tag; we must look
    for the best subset.  We use the standard transformation: for the
    intersection to have size >= a we need at least ``S - a*t`` messages whose
    updated sets all contain some common set of >= a clients.  We enumerate
    candidate client subsets implicitly by counting, per client, the messages
    whose ``updated`` set contains it, and then checking combinations over the
    (small) client universe observed in the acks.

    For the system sizes in this library (tens of clients), an exact
    enumeration over clients appearing in the acks is affordable; we keep the
    search pruned by the required threshold.
    """
    if degree < 1:
        raise ValueError("admissibility degree must be >= 1")
    required = total_servers - degree * max_faults
    if required < 1:
        required = 1
    carrying = [ack for ack in acks if ack.knows(tag)]
    if len(carrying) < required:
        return None

    # Fast path: take all carrying messages; if their common intersection is
    # already large enough we are done (this is the common case because the
    # reader itself appears in every updated set of the servers it reached).
    all_servers = frozenset(a.server for a in carrying)
    common = _intersection(carrying, tag)
    if len(common) >= degree:
        return AdmissibilityWitness(tag, degree, all_servers, common)

    # Otherwise search: try dropping messages whose updated sets are
    # "small" to enlarge the intersection, as long as we keep >= required
    # messages.  The number of messages is at most S, so a bounded recursive
    # search is fine for the sizes we target.
    best = _search_subset(carrying, tag, required, degree)
    if best is None:
        return None
    servers, common = best
    return AdmissibilityWitness(tag, degree, frozenset(servers), frozenset(common))


def _intersection(acks: Sequence[ReadAck], tag: Tag) -> FrozenSet[str]:
    sets = [ack.updated_set(tag) for ack in acks]
    if not sets:
        return frozenset()
    result = set(sets[0])
    for s in sets[1:]:
        result &= s
    return frozenset(result)


def _search_subset(
    carrying: Sequence[ReadAck],
    tag: Tag,
    required: int,
    degree: int,
) -> Optional[Tuple[Set[str], Set[str]]]:
    """Find a subset of size >= required whose updated-intersection is >= degree.

    Exhaustive over which messages to *exclude*; the number of exclusions is
    bounded by ``len(carrying) - required`` which is at most ``(a-1) * t`` and
    small in practice.  We memoize on the frozenset of included servers.
    """
    n = len(carrying)
    max_exclusions = n - required
    if max_exclusions < 0:
        return None

    best: Optional[Tuple[Set[str], Set[str]]] = None

    def recurse(start: int, included: List[ReadAck], exclusions_left: int) -> None:
        nonlocal best
        if best is not None:
            return
        remaining = carrying[start:]
        if len(included) + len(remaining) < required:
            return
        if start == n:
            if len(included) >= required:
                common = _intersection(included, tag)
                if len(common) >= degree:
                    best = ({a.server for a in included}, set(common))
            return
        # Include carrying[start].
        recurse(start + 1, included + [carrying[start]], exclusions_left)
        if best is not None:
            return
        # Exclude it, if we still can.
        if exclusions_left > 0:
            recurse(start + 1, included, exclusions_left - 1)

    recurse(0, [], max_exclusions)
    return best


def admissible_values(
    acks: Sequence[ReadAck],
    total_servers: int,
    max_faults: int,
    max_degree: int,
) -> Dict[Tag, AdmissibilityWitness]:
    """All tags admissible with some degree ``a in [1, max_degree]``.

    For each tag reported by any ack we search for the smallest admissible
    degree; the returned mapping contains one witness per admissible tag.
    """
    result: Dict[Tag, AdmissibilityWitness] = {}
    seen: Set[Tag] = set()
    for ack in acks:
        seen.update(ack.reports.keys())
    for tag in seen:
        for a in range(1, max_degree + 1):
            witness = admissible(tag, acks, a, total_servers, max_faults)
            if witness is not None:
                result[tag] = witness
                break
    return result


def select_return_value(
    acks: Sequence[ReadAck],
    total_servers: int,
    max_faults: int,
    max_degree: int,
) -> Tuple[Optional[Tag], Dict[Tag, AdmissibilityWitness]]:
    """The read's decision rule: return the largest admissible tag.

    Mirrors Algorithm 1 lines 23-31: starting from the maximum tag observed,
    test admissibility with some degree in ``[1, max_degree]``; if the test
    fails remove the tag from consideration and retry with the next largest.
    Returns ``(chosen_tag, all_admissible)``; ``chosen_tag`` is None only when
    no tag is admissible, which cannot happen for a correct configuration
    because the reader's own ``valQueue`` value is always admissible
    (Lemma 3 of Appendix A).
    """
    candidates: Set[Tag] = set()
    for ack in acks:
        candidates.update(ack.reports.keys())
    witnesses: Dict[Tag, AdmissibilityWitness] = {}
    for tag in sorted(candidates, reverse=True):
        for a in range(1, max_degree + 1):
            witness = admissible(tag, acks, a, total_servers, max_faults)
            if witness is not None:
                witnesses[tag] = witness
                return tag, witnesses
    return None, witnesses
