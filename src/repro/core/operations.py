"""Operation records: invocations, responses, and operation intervals.

The atomicity definition (Definition 2.1 of the paper) is stated over
*executions*: sequences of invocation and response events, each tagged with a
timestamp of the discrete global clock.  This module defines the event and
operation record types shared by the simulator, the asyncio runtime, the
history checker and the proof engine.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from .timestamps import Tag

__all__ = [
    "OpKind",
    "EventKind",
    "Event",
    "Operation",
    "new_op_id",
]

_op_counter = itertools.count(1)


def new_op_id(prefix: str = "op") -> str:
    """Generate a fresh, process-unique operation identifier."""
    return f"{prefix}-{next(_op_counter)}"


class OpKind(enum.Enum):
    """Kinds of register operations."""

    READ = "read"
    WRITE = "write"


class EventKind(enum.Enum):
    """Kinds of history events."""

    INVOCATION = "inv"
    RESPONSE = "resp"


@dataclass(frozen=True)
class Event:
    """A single invocation or response event in an execution.

    Attributes:
        kind: invocation or response.
        op_kind: read or write.
        op_id: identifier linking invocation to response.
        client: the invoking client's id.
        time: global-clock timestamp of the event.
        value: for a write invocation, the value written; for a read
            response, the value returned.
        tag: the ``(ts, wid)`` tag associated with the value, when known.
    """

    kind: EventKind
    op_kind: OpKind
    op_id: str
    client: str
    time: float
    value: Any = None
    tag: Optional[Tag] = None

    @property
    def is_invocation(self) -> bool:
        return self.kind is EventKind.INVOCATION

    @property
    def is_response(self) -> bool:
        return self.kind is EventKind.RESPONSE


@dataclass
class Operation:
    """A completed (or pending) operation: an invocation/response pair.

    ``start`` and ``finish`` are the paper's ``O.s`` and ``O.f``; an operation
    with ``finish is None`` is pending (it has been invoked but has not yet
    responded).  For writes, ``value``/``tag`` describe what was written; for
    reads they describe what was returned.
    """

    op_id: str
    client: str
    kind: OpKind
    start: float
    finish: Optional[float] = None
    value: Any = None
    tag: Optional[Tag] = None
    round_trips: int = 0
    metadata: dict = field(default_factory=dict)

    @property
    def is_read(self) -> bool:
        return self.kind is OpKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is OpKind.WRITE

    @property
    def is_complete(self) -> bool:
        return self.finish is not None

    @property
    def latency(self) -> Optional[float]:
        """Wall-clock (or simulated-clock) duration, if complete."""
        if self.finish is None:
            return None
        return self.finish - self.start

    def precedes(self, other: "Operation") -> bool:
        """Real-time precedence ``self ≺ other`` (O1.f < O2.s)."""
        if self.finish is None:
            return False
        return self.finish < other.start

    def concurrent_with(self, other: "Operation") -> bool:
        """Neither operation precedes the other."""
        return not self.precedes(other) and not other.precedes(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = f"[{self.start},{self.finish}]" if self.is_complete else f"[{self.start},..)"
        return (
            f"Operation({self.op_id} {self.kind.value} by {self.client} "
            f"{status} value={self.value!r} tag={self.tag!r} rtts={self.round_trips})"
        )
