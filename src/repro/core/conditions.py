"""Feasibility conditions from the paper's design space (Table 1).

The paper characterises, for each point of the design space
``{W1, W2} x {R1, R2}``, whether a wait-free atomic MWMR register
implementation exists in a system of ``S`` servers, ``W >= 2`` writers,
``R >= 2`` readers, tolerating ``t`` server crashes:

* **W2R2** -- possible iff ``t < S/2`` (majority quorums, Lynch-Shvartsman).
* **W1R2** -- impossible whenever ``W >= 2, R >= 2, t >= 1`` (this paper's
  main theorem).
* **W2R1** -- possible iff ``R < S/t - 2`` (this paper, extending DGLV).
* **W1R1** -- impossible whenever ``W >= 2, R >= 2, t >= 1`` (DGLV).

This module encodes those predicates, plus the single-writer results of DGLV
that the paper builds on (fast SWMR implementations exist iff
``R < S/t - 2``).  All functions are pure and raise
:class:`~repro.core.errors.ConfigurationError` on nonsensical parameters so
callers discover bad sweeps early.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .errors import ConfigurationError
from .fastness import DesignPoint

__all__ = [
    "SystemParameters",
    "validate_parameters",
    "majority_quorum_possible",
    "fast_read_bound",
    "fast_read_possible",
    "fast_write_possible",
    "fast_read_write_possible",
    "w2r2_possible",
    "is_feasible",
    "max_readers_for_fast_reads",
    "min_servers_for_fast_reads",
    "parameter_sweep",
]


@dataclass(frozen=True)
class SystemParameters:
    """The four parameters of the paper's system model.

    Attributes:
        servers: ``S`` -- number of server replicas (``S >= 2``).
        writers: ``W`` -- number of writer clients (``W >= 1``).
        readers: ``R`` -- number of reader clients (``R >= 1``).
        max_faults: ``t`` -- maximum number of servers that may crash
            (``0 <= t < S``).
    """

    servers: int
    writers: int
    readers: int
    max_faults: int

    def __post_init__(self) -> None:
        validate_parameters(
            self.servers, self.writers, self.readers, self.max_faults
        )

    @property
    def is_multi_writer(self) -> bool:
        return self.writers >= 2

    @property
    def is_multi_reader(self) -> bool:
        return self.readers >= 2

    @property
    def quorum_size(self) -> int:
        """Number of replies ``S - t`` a client waits for per round-trip."""
        return self.servers - self.max_faults

    def describe(self) -> str:
        return (
            f"S={self.servers}, W={self.writers}, "
            f"R={self.readers}, t={self.max_faults}"
        )


def validate_parameters(servers: int, writers: int, readers: int, max_faults: int) -> None:
    """Validate system parameters, raising ``ConfigurationError`` if invalid."""
    if servers < 2:
        raise ConfigurationError(f"need at least 2 servers, got {servers}")
    if writers < 1:
        raise ConfigurationError(f"need at least 1 writer, got {writers}")
    if readers < 1:
        raise ConfigurationError(f"need at least 1 reader, got {readers}")
    if max_faults < 0:
        raise ConfigurationError(f"t must be non-negative, got {max_faults}")
    if max_faults >= servers:
        raise ConfigurationError(
            f"t must be smaller than S (got t={max_faults}, S={servers})"
        )


def majority_quorum_possible(servers: int, max_faults: int) -> bool:
    """True when ``t < S/2`` so that any two ``S - t`` quorums intersect."""
    return 2 * max_faults < servers


def w2r2_possible(params: SystemParameters) -> bool:
    """Feasibility of slow (two-round-trip) read/write implementations.

    Lynch-Shvartsman's MW-ABD works exactly when majorities intersect,
    i.e. ``t < S/2`` (Table 1, row W2R2).
    """
    return majority_quorum_possible(params.servers, params.max_faults)


def fast_read_bound(servers: int, max_faults: int) -> float:
    """The threshold ``S/t - 2`` that the number of readers is compared to.

    For ``t = 0`` there is no bound (every operation can trivially be fast
    because no server may be missed), represented as ``float('inf')``.
    """
    if max_faults == 0:
        return float("inf")
    return servers / max_faults - 2


def fast_read_possible(params: SystemParameters) -> bool:
    """Feasibility of W2R1 (fast read) implementations: ``R < S/t - 2``.

    This is the necessary and sufficient condition of Section 5 of the paper
    (and of DGLV in the single-writer case).
    """
    return params.readers < fast_read_bound(params.servers, params.max_faults)


def fast_write_possible(params: SystemParameters) -> bool:
    """Feasibility of W1R2 (fast write) implementations.

    The paper's main theorem: impossible whenever there are at least two
    writers, at least two readers and at least one tolerated fault.  In the
    single-writer case a fast write is trivially achievable by ABD (the
    writer maintains its own timestamp and writes in one round-trip), and
    with ``t = 0`` fastness is not constrained.
    """
    if params.max_faults == 0:
        return True
    if not params.is_multi_writer:
        return True
    if not params.is_multi_reader:
        # With a single reader the chain argument's R2 does not exist; DGLV
        # style fast behaviour is achievable.  The paper requires R >= 2 for
        # the impossibility.
        return True
    return False


def fast_read_write_possible(params: SystemParameters) -> bool:
    """Feasibility of W1R1 implementations (DGLV impossibility).

    In the multi-writer case W1R1 is impossible for ``t >= 1``; in the
    single-writer case it requires ``R < S/t - 2`` (DGLV's fast
    implementation).
    """
    if params.max_faults == 0:
        return True
    if params.is_multi_writer and params.is_multi_reader:
        return False
    return fast_read_possible(params)


_FEASIBILITY = {
    DesignPoint.W2R2: w2r2_possible,
    DesignPoint.W1R2: fast_write_possible,
    DesignPoint.W2R1: fast_read_possible,
    DesignPoint.W1R1: fast_read_write_possible,
}


def is_feasible(point: DesignPoint, params: SystemParameters) -> bool:
    """Whether an atomic implementation exists at ``point`` under ``params``.

    W2R2 feasibility (``t < S/2``) is a prerequisite for every point: if even
    slow implementations are impossible, so are fast ones.
    """
    if not w2r2_possible(params):
        return False
    return _FEASIBILITY[point](params)


def max_readers_for_fast_reads(servers: int, max_faults: int) -> int:
    """Largest ``R`` for which a W2R1 implementation exists, or a huge value for t=0.

    The condition is strict: ``R < S/t - 2``.
    """
    bound = fast_read_bound(servers, max_faults)
    if bound == float("inf"):
        return 10**9
    # Largest integer strictly below the bound.
    if bound.is_integer():
        return int(bound) - 1
    return int(bound)


def min_servers_for_fast_reads(readers: int, max_faults: int) -> int:
    """Smallest ``S`` such that ``R < S/t - 2`` holds."""
    if max_faults == 0:
        return 2
    # Need S > (R + 2) * t, i.e. S >= (R + 2) * t + 1.
    return (readers + 2) * max_faults + 1


def parameter_sweep(
    servers_range,
    writers_range,
    readers_range,
    faults_range,
    require_valid: bool = True,
) -> Iterator[SystemParameters]:
    """Yield all valid parameter combinations from the given ranges.

    Invalid combinations (``t >= S`` etc.) are skipped when ``require_valid``
    is True (the default), otherwise a ``ConfigurationError`` propagates.
    """
    for s in servers_range:
        for w in writers_range:
            for r in readers_range:
                for t in faults_range:
                    try:
                        yield SystemParameters(s, w, r, t)
                    except ConfigurationError:
                        if not require_valid:
                            raise
