"""The design space of fast register implementations (Fig. 2 of the paper).

An implementation is classified by how many client<->server round-trips its
write and read operations take in the worst case:

* ``W2R2`` -- both take two round-trips (the classic multi-writer ABD).
* ``W1R2`` -- fast writes (one round-trip), slow reads.
* ``W2R1`` -- slow writes, fast reads (one round-trip).
* ``W1R1`` -- both fast.

Figure 2 arranges these four points in a Hasse diagram ordered by latency
(inverse of consistency strength achievable).  This module provides the
:class:`DesignPoint` enumeration, the partial order of the diagram, and a
classifier that derives the design point of an implementation from the
round-trip counts observed in an execution trace rather than from the
implementation's own claim.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Mapping, Tuple

__all__ = [
    "DesignPoint",
    "LATTICE_EDGES",
    "dominates",
    "latency_rank",
    "classify_round_trips",
    "RoundTripProfile",
]


class DesignPoint(enum.Enum):
    """A point in the write/read round-trip design space."""

    W2R2 = (2, 2)
    W1R2 = (1, 2)
    W2R1 = (2, 1)
    W1R1 = (1, 1)

    def __init__(self, write_rtts: int, read_rtts: int) -> None:
        self.write_rtts = write_rtts
        self.read_rtts = read_rtts

    @property
    def fast_write(self) -> bool:
        return self.write_rtts == 1

    @property
    def fast_read(self) -> bool:
        return self.read_rtts == 1

    @classmethod
    def from_round_trips(cls, write_rtts: int, read_rtts: int) -> "DesignPoint":
        """Map worst-case round-trip counts to a design point.

        Counts larger than two are clamped to two: the paper only
        distinguishes "fast" (one round-trip) from "not fast" (two or more),
        and its impossibility proofs explicitly cover W1Rk / WkR1 for k >= 3.
        """
        if write_rtts < 1 or read_rtts < 1:
            raise ValueError("round-trip counts must be at least 1")
        w = 1 if write_rtts == 1 else 2
        r = 1 if read_rtts == 1 else 2
        return cls((w, r))

    def __str__(self) -> str:
        return self.name


#: Edges of the Hasse diagram in Fig. 2, from lower latency to higher latency.
#: ``(a, b)`` means a has strictly lower latency than b (a is "below" b).
LATTICE_EDGES: Tuple[Tuple[DesignPoint, DesignPoint], ...] = (
    (DesignPoint.W1R1, DesignPoint.W1R2),
    (DesignPoint.W1R1, DesignPoint.W2R1),
    (DesignPoint.W1R2, DesignPoint.W2R2),
    (DesignPoint.W2R1, DesignPoint.W2R2),
)


def dominates(faster: DesignPoint, slower: DesignPoint) -> bool:
    """True when ``faster`` has round-trip counts <= ``slower`` component-wise.

    This is the partial order of Fig. 2: fewer round-trips means lower
    latency, and (by the paper's results) weaker achievable consistency.
    """
    return (
        faster.write_rtts <= slower.write_rtts
        and faster.read_rtts <= slower.read_rtts
    )


def latency_rank(point: DesignPoint) -> int:
    """Total latency in round-trips (the vertical axis of Fig. 2)."""
    return point.write_rtts + point.read_rtts


@dataclass(frozen=True)
class RoundTripProfile:
    """Observed round-trip statistics of an execution.

    ``write_rtts`` / ``read_rtts`` map each completed operation id to the
    number of round-trips the client used for that operation.
    """

    write_rtts: Mapping[str, int]
    read_rtts: Mapping[str, int]

    @property
    def max_write_rtts(self) -> int:
        return max(self.write_rtts.values(), default=1)

    @property
    def max_read_rtts(self) -> int:
        return max(self.read_rtts.values(), default=1)

    @property
    def mean_write_rtts(self) -> float:
        vals = list(self.write_rtts.values())
        return sum(vals) / len(vals) if vals else 0.0

    @property
    def mean_read_rtts(self) -> float:
        vals = list(self.read_rtts.values())
        return sum(vals) / len(vals) if vals else 0.0

    def design_point(self) -> DesignPoint:
        """Worst-case classification of this profile."""
        return DesignPoint.from_round_trips(
            max(1, self.max_write_rtts), max(1, self.max_read_rtts)
        )


def classify_round_trips(
    write_counts: Iterable[int], read_counts: Iterable[int]
) -> DesignPoint:
    """Classify an implementation from per-operation round-trip counts."""
    writes = list(write_counts)
    reads = list(read_counts)
    max_w = max(writes) if writes else 1
    max_r = max(reads) if reads else 1
    return DesignPoint.from_round_trips(max_w, max_r)
