"""Exception hierarchy for the repro library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "QuorumUnavailableError",
    "ProtocolError",
    "AtomicityViolation",
    "ProofError",
    "SimulationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A system configuration violates a precondition.

    Examples: fewer than two servers, ``t >= S/2`` for a majority-quorum
    protocol, or instantiating the paper's W2R1 algorithm with
    ``R >= S/t - 2``.
    """


class QuorumUnavailableError(ReproError):
    """An operation could not assemble a quorum of ``S - t`` responses."""


class ProtocolError(ReproError):
    """A protocol implementation received a malformed or unexpected message."""


class AtomicityViolation(ReproError):
    """Raised by checkers (when asked to raise) for non-atomic histories."""

    def __init__(self, message: str, witness=None):
        super().__init__(message)
        self.witness = witness


class ProofError(ReproError):
    """A step of a mechanized proof construction failed to hold.

    If this is ever raised while running the chain argument against a correct
    full-info implementation it indicates a bug in the proof engine, not in
    the implementation under test.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""
