"""Abstract executions for the chain-argument proofs (Sections 3 and 4).

The impossibility proof never runs a full protocol; it reasons about
*executions at round-trip granularity*.  The ingredients are:

* a fixed cast of operations -- two fast writes ``W1 = write(1)`` and
  ``W2 = write(2)``, and two 2-round-trip reads ``R1`` and ``R2`` whose
  round-trips are named ``R1(1), R1(2), R2(1), R2(2)`` -- following the
  proof's notation;
* for every server, the **receive order**: the sequence in which the server
  processes the round-trips that reach it;
* **skip sets**: round-trips whose messages to a given server are delayed
  past the end of the execution ("the round-trip skips the server");
* the **client-side temporal order** of operations, which is what atomicity
  constrains (e.g. in the head execution ``W1`` precedes ``W2`` precedes
  ``R1``).

An execution is a plain immutable value; the chain constructions in
:mod:`repro.theory.chains` derive new executions from old ones by swapping
entries in receive orders and moving skips around, exactly as the prose proof
does.  The *view* of a reader -- everything it can ever learn in the
full-info model -- is a pure function of the execution
(:meth:`AbstractExecution.reader_view`), so indistinguishability between two
executions is literally equality of views.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import ProofError

__all__ = [
    "Phase",
    "W1",
    "W2",
    "R1_1",
    "R1_2",
    "R2_1",
    "R2_2",
    "READ_PHASES",
    "WRITE_PHASES",
    "AbstractExecution",
    "ReaderView",
]


@dataclass(frozen=True, order=True)
class Phase:
    """One round-trip of one operation.

    ``operation`` is one of ``"W1", "W2", "R1", "R2"``; ``round_trip`` is 1
    or 2 (writes in the fast-write setting have a single round-trip).
    """

    operation: str
    round_trip: int

    @property
    def is_read(self) -> bool:
        return self.operation.startswith("R")

    @property
    def is_write(self) -> bool:
        return self.operation.startswith("W")

    @property
    def reader(self) -> Optional[str]:
        return self.operation if self.is_read else None

    def __str__(self) -> str:
        if self.is_write:
            return self.operation
        return f"{self.operation}({self.round_trip})"


#: The cast of the W1R2 impossibility proof.
W1 = Phase("W1", 1)
W2 = Phase("W2", 1)
R1_1 = Phase("R1", 1)
R1_2 = Phase("R1", 2)
R2_1 = Phase("R2", 1)
R2_2 = Phase("R2", 2)

WRITE_PHASES: Tuple[Phase, ...] = (W1, W2)
READ_PHASES: Tuple[Phase, ...] = (R1_1, R1_2, R2_1, R2_2)


@dataclass(frozen=True)
class ReaderView:
    """Everything a reader observes in the full-info model.

    For each of the reader's round-trips, the view maps every server that was
    *not skipped* to the log prefix (sequence of phases) that server had
    already processed when it served that round-trip.  Two executions are
    indistinguishable to the reader exactly when these views are equal.
    """

    reader: str
    per_round_trip: Tuple[Tuple[int, Tuple[Tuple[str, Tuple[Phase, ...]], ...]], ...]

    def round_trip_view(self, round_trip: int) -> Dict[str, Tuple[Phase, ...]]:
        for rt, servers in self.per_round_trip:
            if rt == round_trip:
                return dict(servers)
        return {}

    def servers_contacted(self, round_trip: int) -> FrozenSet[str]:
        return frozenset(self.round_trip_view(round_trip).keys())


@dataclass(frozen=True)
class AbstractExecution:
    """A round-trip-granularity execution over a fixed set of servers.

    Attributes:
        name: a human-readable label (``"alpha_3"``, ``"beta'_2"``, ...).
        servers: ordered server ids ``s1..sS``.
        receive_order: per-server sequence of the phases the server processes,
            in processing order.  A phase absent from a server's sequence is
            *skipped* at that server.
        client_order: the temporal order of **operations** at the clients; a
            pair ``(A, B)`` in the list means operation A's response precedes
            operation B's invocation.  This is what the atomicity requirements
            are evaluated against.
        writes: mapping from write operation name to the value it writes.
    """

    name: str
    servers: Tuple[str, ...]
    receive_order: Mapping[str, Tuple[Phase, ...]]
    client_order: Tuple[Tuple[str, str], ...]
    writes: Mapping[str, int] = field(
        default_factory=lambda: {"W1": 1, "W2": 2}
    )

    # -- constructors -----------------------------------------------------------

    @staticmethod
    def build(
        name: str,
        servers: Sequence[str],
        receive_order: Mapping[str, Sequence[Phase]],
        client_order: Sequence[Tuple[str, str]],
        writes: Optional[Mapping[str, int]] = None,
    ) -> "AbstractExecution":
        frozen_order = {s: tuple(phases) for s, phases in receive_order.items()}
        for server in servers:
            if server not in frozen_order:
                raise ProofError(f"receive order missing for server {server}")
        return AbstractExecution(
            name=name,
            servers=tuple(servers),
            receive_order=frozen_order,
            client_order=tuple(client_order),
            writes=dict(writes) if writes is not None else {"W1": 1, "W2": 2},
        )

    # -- derivation helpers used by the chain constructions ----------------------

    def rename(self, name: str) -> "AbstractExecution":
        return replace(self, name=name)

    def with_receive_order(
        self, server: str, phases: Sequence[Phase], name: Optional[str] = None
    ) -> "AbstractExecution":
        """A copy with one server's receive order replaced."""
        new_order = dict(self.receive_order)
        new_order[server] = tuple(phases)
        return replace(
            self, receive_order=new_order, name=name if name is not None else self.name
        )

    def swap_on_server(
        self, server: str, first: Phase, second: Phase, name: Optional[str] = None
    ) -> "AbstractExecution":
        """Swap two phases in one server's receive order (both must be present)."""
        order = list(self.receive_order[server])
        if first not in order or second not in order:
            raise ProofError(
                f"cannot swap {first}/{second} on {server}: not both present in {self.name}"
            )
        i, j = order.index(first), order.index(second)
        order[i], order[j] = order[j], order[i]
        return self.with_receive_order(server, order, name)

    def skip_phase_on(self, server: str, phase: Phase, name: Optional[str] = None) -> "AbstractExecution":
        """Remove a phase from one server's receive order (the phase skips it)."""
        order = [p for p in self.receive_order[server] if p != phase]
        return self.with_receive_order(server, order, name)

    def unskip_phase_on(
        self,
        server: str,
        phase: Phase,
        after: Optional[Phase] = None,
        name: Optional[str] = None,
    ) -> "AbstractExecution":
        """Add a phase back to a server's receive order.

        ``after`` positions the phase immediately after another phase (the
        proof adds ``R2(2)`` back on the critical server *after* ``R1(2)`` so
        that R1 cannot see the change); by default the phase is appended.
        """
        order = [p for p in self.receive_order[server] if p != phase]
        if after is None:
            order.append(phase)
        else:
            if after not in order:
                raise ProofError(
                    f"cannot insert {phase} after {after} on {server}: {after} absent"
                )
            order.insert(order.index(after) + 1, phase)
        return self.with_receive_order(server, order, name)

    def skips(self, phase: Phase) -> FrozenSet[str]:
        """The servers a phase skips in this execution."""
        return frozenset(
            s for s in self.servers if phase not in self.receive_order[s]
        )

    def phase_present(self, phase: Phase) -> bool:
        return any(phase in order for order in self.receive_order.values())

    # -- the full-info reader view ------------------------------------------------

    def server_log_before(self, server: str, phase: Phase) -> Tuple[Phase, ...]:
        """The log a server has accumulated when it serves ``phase``."""
        order = self.receive_order[server]
        if phase not in order:
            raise ProofError(f"{phase} skips {server} in {self.name}")
        index = order.index(phase)
        return tuple(order[:index])

    def reader_view(self, reader: str) -> ReaderView:
        """The complete view of a reader (``"R1"`` or ``"R2"``)."""
        per_round_trip: List[Tuple[int, Tuple[Tuple[str, Tuple[Phase, ...]], ...]]] = []
        for round_trip in (1, 2):
            phase = Phase(reader, round_trip)
            if not self.phase_present(phase) and all(
                phase not in order for order in self.receive_order.values()
            ):
                # The round-trip contacts no server at all (never happens in
                # the constructions, but keep the view well defined).
                per_round_trip.append((round_trip, ()))
                continue
            entries: List[Tuple[str, Tuple[Phase, ...]]] = []
            for server in self.servers:
                order = self.receive_order[server]
                if phase in order:
                    entries.append((server, self.server_log_before(server, phase)))
            per_round_trip.append((round_trip, tuple(entries)))
        return ReaderView(reader=reader, per_round_trip=tuple(per_round_trip))

    def indistinguishable_to(self, other: "AbstractExecution", reader: str) -> bool:
        """Whether ``reader`` has the same view in ``self`` and ``other``."""
        return self.reader_view(reader) == other.reader_view(reader)

    # -- atomicity-forced return values -------------------------------------------

    def precedes(self, first_op: str, second_op: str) -> bool:
        """Client-side real-time precedence between two operations."""
        if (first_op, second_op) in self.client_order:
            return True
        # Transitive closure over the declared pairs.
        frontier = {second for first, second in self.client_order if first == first_op}
        seen = set(frontier)
        while frontier:
            nxt = set()
            for mid in frontier:
                if mid == second_op:
                    return True
                for first, second in self.client_order:
                    if first == mid and second not in seen:
                        nxt.add(second)
                        seen.add(second)
            frontier = nxt
        return second_op in seen

    def forced_read_value(self, reader: str) -> Optional[int]:
        """The return value atomicity forces for ``reader``, if unique.

        With only the two writes ``W1`` and ``W2`` present, a read that both
        writes precede must return the value of the write that is ordered last
        among the writes; when the writes are ordered by real time the value
        is forced.  When the writes are concurrent the value is not forced and
        ``None`` is returned.
        """
        w1_before_w2 = self.precedes("W1", "W2")
        w2_before_w1 = self.precedes("W2", "W1")
        read_after_both = self.precedes("W1", reader) and self.precedes("W2", reader)
        if not read_after_both:
            return None
        if w1_before_w2 and not w2_before_w1:
            return self.writes["W2"]
        if w2_before_w1 and not w1_before_w2:
            return self.writes["W1"]
        return None

    def describe(self) -> str:
        """A compact multi-line description used in proof transcripts."""
        lines = [f"execution {self.name}"]
        for server in self.servers:
            phases = ", ".join(str(p) for p in self.receive_order[server])
            lines.append(f"  {server}: [{phases}]")
        order = ", ".join(f"{a}≺{b}" for a, b in self.client_order)
        lines.append(f"  client order: {order}")
        return "\n".join(lines)
