"""The three-phase chain argument of Sections 3.2-3.4 (Figures 3-7), mechanized.

For a system of ``S >= 3`` servers with ``t = 1``, ``W = 2`` writers and
``R = 2`` readers, this module *constructs* every execution the impossibility
proof talks about and *checks* every indistinguishability link:

* **Phase 1** -- chain ``alpha = (alpha_0 ... alpha_S)`` obtained by swapping
  the order in which one more server receives the two writes, plus the tail
  twin ``alpha_tail`` that pins the forced return value at the end of the
  chain (:func:`build_alpha_chain`).
* **Phase 2** -- candidate chains ``beta'`` and ``beta''`` (the second reader
  appended, second round-trips swapped one server at a time), their modified
  tails where ``R2`` skips the critical server, and the chosen chain ``beta``
  (:func:`build_beta_candidates`, :func:`build_beta_chain`).
* **Phase 3** -- for every ``k`` the horizontal link ``beta_k ~ temp_k ~
  gamma_k`` and the diagonal link ``beta_{k+1} ~ temp'_k ~ gamma'_k``, plus
  the structural identity ``gamma'_k == gamma_k``, forming the zigzag chain
  ``Z`` (:func:`build_horizontal_link`, :func:`build_diagonal_link`).

Each link is verified by *content-aware* view equality in the full-info model
(:mod:`repro.theory.fullinfo`); the result is a
:class:`ChainArgumentCertificate` listing every checked link, which the test
suite and the Fig. 3 benchmark assert to be fully verified for every possible
position of the critical server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import ProofError
from ..util.ids import server_ids
from .executions import (
    AbstractExecution,
    Phase,
    R1_1,
    R1_2,
    R2_1,
    R2_2,
    W1,
    W2,
)
from .fullinfo import indistinguishable

__all__ = [
    "LinkCheck",
    "ChainArgumentCertificate",
    "build_alpha_chain",
    "build_alpha_tail",
    "build_beta_candidates",
    "build_beta_chain",
    "build_horizontal_link",
    "build_diagonal_link",
    "verify_chain_argument",
]

#: Client-order pairs shared by every execution that contains both reads.
_READS_AFTER_WRITES: Tuple[Tuple[str, str], ...] = (
    ("W1", "R1"),
    ("W2", "R1"),
    ("W1", "R2"),
    ("W2", "R2"),
)


@dataclass(frozen=True)
class LinkCheck:
    """One verified (or failed) step of the argument."""

    name: str
    kind: str  # "indistinguishability" | "structural-equality" | "realizability"
    reader: Optional[str]
    left: str
    right: str
    ok: bool
    detail: str = ""


@dataclass
class ChainArgumentCertificate:
    """The full transcript of the mechanized chain argument for one ``i1``."""

    servers: Tuple[str, ...]
    critical_index: int
    alpha: List[AbstractExecution] = field(default_factory=list)
    alpha_tail: Optional[AbstractExecution] = None
    beta_prime: List[AbstractExecution] = field(default_factory=list)
    beta_double: List[AbstractExecution] = field(default_factory=list)
    beta: List[AbstractExecution] = field(default_factory=list)
    gammas: List[AbstractExecution] = field(default_factory=list)
    links: List[LinkCheck] = field(default_factory=list)

    @property
    def all_verified(self) -> bool:
        return all(link.ok for link in self.links)

    @property
    def failed_links(self) -> List[LinkCheck]:
        return [link for link in self.links if not link.ok]

    def executions_constructed(self) -> int:
        return (
            len(self.alpha)
            + (1 if self.alpha_tail is not None else 0)
            + len(self.beta_prime)
            + len(self.beta_double)
            + len(self.beta)
            + len(self.gammas)
        )

    def summary(self) -> str:
        status = "VERIFIED" if self.all_verified else "FAILED"
        return (
            f"chain argument over {len(self.servers)} servers, critical server "
            f"s{self.critical_index}: {len(self.links)} links checked, "
            f"{self.executions_constructed()} executions constructed -> {status}"
        )


# ---------------------------------------------------------------------------
# Phase 1: chain alpha.
# ---------------------------------------------------------------------------


def _write_part(swapped: bool) -> Tuple[Phase, ...]:
    return (W2, W1) if swapped else (W1, W2)


def build_alpha_chain(servers: Sequence[str]) -> List[AbstractExecution]:
    """Executions ``alpha_0 .. alpha_S``.

    ``alpha_i`` swaps the write order on the first ``i`` servers.  The head
    execution keeps the sequential client order ``W1 < W2 < R1``; the interior
    executions leave the two writes concurrent (a fast write whose message to
    several servers is delayed past the other write cannot have completed
    before it), which is all the argument needs.
    """
    executions: List[AbstractExecution] = []
    for i in range(len(servers) + 1):
        receive = {
            server: _write_part(index < i) + (R1_1, R1_2)
            for index, server in enumerate(servers)
        }
        if i == 0:
            client_order = (("W1", "W2"), ("W2", "R1"), ("W1", "R1"))
        else:
            client_order = (("W1", "R1"), ("W2", "R1"))
        executions.append(
            AbstractExecution.build(f"alpha_{i}", servers, receive, client_order)
        )
    return executions


def build_alpha_tail(servers: Sequence[str]) -> AbstractExecution:
    """``alpha_tail``: every server swapped and the client order reversed."""
    receive = {server: _write_part(True) + (R1_1, R1_2) for server in servers}
    client_order = (("W2", "W1"), ("W1", "R1"), ("W2", "R1"))
    return AbstractExecution.build("alpha_tail", servers, receive, client_order)


# ---------------------------------------------------------------------------
# Phase 2: candidate chains beta' / beta'' and the chosen chain beta.
# ---------------------------------------------------------------------------


def _beta_like(
    name: str,
    servers: Sequence[str],
    stem_swapped_upto: int,
    read_swapped_upto: int,
    client_order: Tuple[Tuple[str, str], ...],
) -> AbstractExecution:
    """An execution with the writes of ``alpha_{stem_swapped_upto}`` and the
    four read round-trips appended, the second round-trips swapped on the
    first ``read_swapped_upto`` servers."""
    receive: Dict[str, Tuple[Phase, ...]] = {}
    for index, server in enumerate(servers):
        writes = _write_part(index < stem_swapped_upto)
        if index < read_swapped_upto:
            reads = (R1_1, R2_1, R2_2, R1_2)
        else:
            reads = (R1_1, R2_1, R1_2, R2_2)
        receive[server] = writes + reads
    return AbstractExecution.build(name, servers, receive, client_order)


def _beta_client_order(stem_index: int) -> Tuple[Tuple[str, str], ...]:
    if stem_index == 0:
        return (("W1", "W2"),) + _READS_AFTER_WRITES
    return _READS_AFTER_WRITES


def build_beta_candidates(
    servers: Sequence[str], critical_index: int
) -> Tuple[List[AbstractExecution], List[AbstractExecution]]:
    """Chains ``beta'`` (stem ``alpha_{i1-1}``) and ``beta''`` (stem ``alpha_{i1}``)."""
    if not 1 <= critical_index <= len(servers):
        raise ProofError(f"critical index {critical_index} out of range")
    prime: List[AbstractExecution] = []
    double: List[AbstractExecution] = []
    for i in range(len(servers) + 1):
        prime.append(
            _beta_like(
                f"beta'_{i}",
                servers,
                stem_swapped_upto=critical_index - 1,
                read_swapped_upto=i,
                client_order=_beta_client_order(critical_index - 1),
            )
        )
        double.append(
            _beta_like(
                f"beta''_{i}",
                servers,
                stem_swapped_upto=critical_index,
                read_swapped_upto=i,
                client_order=_beta_client_order(critical_index),
            )
        )
    return prime, double


def _let_r2_skip(execution: AbstractExecution, server: str, name: str) -> AbstractExecution:
    """Both round-trips of R2 skip ``server``."""
    result = execution.skip_phase_on(server, R2_1, name=name)
    return result.skip_phase_on(server, R2_2, name=name)


def build_modified_tails(
    servers: Sequence[str], critical_index: int
) -> Tuple[AbstractExecution, AbstractExecution]:
    """The modified tails of the two candidate chains: R2 skips the critical server."""
    prime, double = build_beta_candidates(servers, critical_index)
    critical = servers[critical_index - 1]
    tail_prime = _let_r2_skip(prime[-1], critical, "beta'_tail(modified)")
    tail_double = _let_r2_skip(double[-1], critical, "beta''_tail(modified)")
    return tail_prime, tail_double


def build_beta_chain(
    servers: Sequence[str], critical_index: int, use_prime: bool = True
) -> List[AbstractExecution]:
    """The chosen chain ``beta``: the candidate chain with R2 skipping ``s_i1``
    in every execution."""
    prime, double = build_beta_candidates(servers, critical_index)
    source = prime if use_prime else double
    critical = servers[critical_index - 1]
    chain: List[AbstractExecution] = []
    for i, execution in enumerate(source):
        chain.append(_let_r2_skip(execution, critical, f"beta_{i}"))
    return chain


# ---------------------------------------------------------------------------
# Phase 3: horizontal and diagonal links of the zigzag chain Z.
# ---------------------------------------------------------------------------


def build_horizontal_link(
    beta_k: AbstractExecution,
    servers: Sequence[str],
    k: int,
    critical_index: int,
) -> Tuple[Optional[AbstractExecution], AbstractExecution]:
    """Construct ``temp_k`` and ``gamma_k`` from ``beta_k`` (Section 3.4.1).

    Returns ``(temp_k, gamma_k)``; ``temp_k`` is ``None`` in the simpler
    ``k + 1 == i1`` case, where ``gamma_k`` is built directly.
    """
    target = servers[k]  # s_{k+1} in the paper's 1-based numbering
    critical = servers[critical_index - 1]
    if k + 1 == critical_index:
        gamma = beta_k.skip_phase_on(target, R1_2, name=f"gamma_{k}")
        return None, gamma
    temp = beta_k.skip_phase_on(target, R2_2, name=f"temp_{k}")
    temp = temp.unskip_phase_on(critical, R2_2, after=R1_2, name=f"temp_{k}")
    gamma = temp.skip_phase_on(target, R1_2, name=f"gamma_{k}")
    return temp, gamma


def build_diagonal_link(
    beta_k_plus_1: AbstractExecution,
    servers: Sequence[str],
    k: int,
    critical_index: int,
) -> Tuple[Optional[AbstractExecution], AbstractExecution]:
    """Construct ``temp'_k`` and ``gamma'_k`` from ``beta_{k+1}`` (Section 3.4.2)."""
    target = servers[k]
    critical = servers[critical_index - 1]
    temp = beta_k_plus_1.skip_phase_on(target, R1_2, name=f"temp'_{k}")
    if k + 1 == critical_index:
        return None, temp.rename(f"gamma'_{k}")
    gamma = temp.skip_phase_on(target, R2_2, name=f"gamma'_{k}")
    gamma = gamma.unskip_phase_on(critical, R2_2, after=R1_2, name=f"gamma'_{k}")
    return temp, gamma


# ---------------------------------------------------------------------------
# Realizability and verification.
# ---------------------------------------------------------------------------


def _check_realizable(
    execution: AbstractExecution, max_faults: int, links: List[LinkCheck]
) -> None:
    """Every round-trip must reach at least ``S - t`` servers."""
    phases = [W1, W2, R1_1, R1_2, R2_1, R2_2]
    for phase in phases:
        if not execution.phase_present(phase):
            continue
        skipped = execution.skips(phase)
        ok = len(skipped) <= max_faults
        links.append(
            LinkCheck(
                name=f"{execution.name}:{phase}",
                kind="realizability",
                reader=None,
                left=execution.name,
                right=execution.name,
                ok=ok,
                detail=f"{phase} skips {sorted(skipped)} (t={max_faults})",
            )
        )


def _check_indist(
    left: AbstractExecution,
    right: AbstractExecution,
    reader: str,
    name: str,
    links: List[LinkCheck],
) -> None:
    ok = indistinguishable(left, right, reader)
    links.append(
        LinkCheck(
            name=name,
            kind="indistinguishability",
            reader=reader,
            left=left.name,
            right=right.name,
            ok=ok,
        )
    )


def _check_equal_structure(
    left: AbstractExecution, right: AbstractExecution, name: str, links: List[LinkCheck]
) -> None:
    ok = (
        left.servers == right.servers
        and dict(left.receive_order) == dict(right.receive_order)
    )
    links.append(
        LinkCheck(
            name=name,
            kind="structural-equality",
            reader=None,
            left=left.name,
            right=right.name,
            ok=ok,
        )
    )


def verify_chain_argument(
    num_servers: int = 3,
    critical_index: int = 1,
    use_prime: bool = True,
    max_faults: int = 1,
) -> ChainArgumentCertificate:
    """Build every chain and verify every link for a given critical server.

    The critical server's position ``i1`` depends on the implementation under
    test; calling this for every ``i1 in 1..S`` (as the tests and the Fig. 3
    benchmark do) certifies the argument irrespective of where the flip
    happens.
    """
    if num_servers < 3:
        raise ProofError("the chain argument is run with S >= 3 (Section 3.1)")
    if not 1 <= critical_index <= num_servers:
        raise ProofError("critical index out of range")

    servers = tuple(server_ids(num_servers))
    certificate = ChainArgumentCertificate(
        servers=servers, critical_index=critical_index
    )
    links = certificate.links

    # Phase 1 -----------------------------------------------------------------
    certificate.alpha = build_alpha_chain(servers)
    certificate.alpha_tail = build_alpha_tail(servers)
    for execution in certificate.alpha:
        _check_realizable(execution, max_faults, links)
    _check_indist(
        certificate.alpha[-1],
        certificate.alpha_tail,
        "R1",
        "alpha_S ~ alpha_tail (R1 cannot distinguish)",
        links,
    )

    # Phase 2 -----------------------------------------------------------------
    certificate.beta_prime, certificate.beta_double = build_beta_candidates(
        servers, critical_index
    )
    tail_prime, tail_double = build_modified_tails(servers, critical_index)
    _check_indist(
        tail_prime,
        tail_double,
        "R2",
        "modified beta'_tail ~ modified beta''_tail (R2 skips the critical server)",
        links,
    )
    certificate.beta = build_beta_chain(servers, critical_index, use_prime=use_prime)
    for execution in certificate.beta:
        _check_realizable(execution, max_faults, links)

    # Consecutive executions of chain beta differ only on one server.
    for k in range(len(servers)):
        left, right = certificate.beta[k], certificate.beta[k + 1]
        differing = [
            s
            for s in servers
            if left.receive_order[s] != right.receive_order[s]
        ]
        links.append(
            LinkCheck(
                name=f"beta_{k} and beta_{k+1} differ on one server",
                kind="structural-equality",
                reader=None,
                left=left.name,
                right=right.name,
                ok=len(differing) <= 1,
                detail=f"differ on {differing}",
            )
        )

    # Phase 3 -----------------------------------------------------------------
    for k in range(len(servers)):
        beta_k = certificate.beta[k]
        beta_k1 = certificate.beta[k + 1]

        temp_k, gamma_k = build_horizontal_link(beta_k, servers, k, critical_index)
        certificate.gammas.append(gamma_k)
        _check_realizable(gamma_k, max_faults, links)
        if temp_k is None:
            _check_indist(
                beta_k, gamma_k, "R2", f"h-link k={k}: beta_{k} ~ gamma_{k} (R2)", links
            )
        else:
            _check_indist(
                beta_k, temp_k, "R1", f"h-link k={k}: beta_{k} ~ temp_{k} (R1)", links
            )
            _check_indist(
                temp_k, gamma_k, "R2", f"h-link k={k}: temp_{k} ~ gamma_{k} (R2)", links
            )

        temp_pk, gamma_pk = build_diagonal_link(beta_k1, servers, k, critical_index)
        if temp_pk is None:
            _check_indist(
                beta_k1,
                gamma_pk,
                "R2",
                f"d-link k={k}: beta_{k+1} ~ gamma'_{k} (R2)",
                links,
            )
        else:
            _check_indist(
                beta_k1,
                temp_pk,
                "R2",
                f"d-link k={k}: beta_{k+1} ~ temp'_{k} (R2)",
                links,
            )
            _check_indist(
                temp_pk,
                gamma_pk,
                "R1",
                f"d-link k={k}: temp'_{k} ~ gamma'_{k} (R1)",
                links,
            )
        _check_equal_structure(
            gamma_pk, gamma_k, f"gamma'_{k} == gamma_{k} (same execution)", links
        )

    return certificate
