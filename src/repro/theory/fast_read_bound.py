"""Fast-read (W2R1) impossibility and the ``R < S/t - 2`` boundary (Section 5, Fig. 9).

Section 5 of the paper shows that one-round-trip reads are achievable for a
multi-writer atomic register **iff** ``R < S/t - 2``:

* when ``R < S/t - 2`` the paper's Algorithms 1 & 2 work
  (:mod:`repro.protocols.fast_read_mwmr`);
* when ``R >= S/t - 2`` no W2R1 implementation exists -- the single-writer
  impossibility of DGLV carries over even though the (single) writer may use
  two or more round-trips (Fig. 9).

This module makes the boundary executable in two ways:

1. :func:`build_fig9_scenario` constructs the *concrete adversarial schedule*
   behind the impossibility: a pending two-round-trip write that reaches only
   one block of ``t`` servers, a second writer and a chain of readers whose
   queries inflate that block's ``updated`` sets until some reader accepts the
   new value, and a final reader whose single round-trip misses the block
   entirely and therefore returns the old value -- a new/old inversion.
   The construction is exactly realisable (every read skips at most ``t``
   servers) precisely when ``R >= S/t - 2``.
2. :func:`run_fig9_experiment` replays that schedule against the *actual*
   fast-read protocol (with its feasibility guard disabled) on the simulator
   and hands the resulting history to the atomicity checker, so the benchmark
   can sweep ``(S, t, R)`` across the boundary and report measured violation
   counts on both sides.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..consistency.atomicity import AtomicityResult, check_atomicity
from ..consistency.history import History
from ..core.conditions import fast_read_bound as bound_value
from ..core.errors import ConfigurationError
from ..protocols.fast_read_mwmr import FastReadMwmrProtocol
from ..sim.delays import ConstantDelay
from ..sim.network import SkipRule
from ..sim.runtime import Simulation
from ..util.ids import client_ids, server_ids

__all__ = [
    "fast_read_blocks",
    "Fig9Scenario",
    "build_fig9_scenario",
    "Fig9Result",
    "run_fig9_experiment",
    "boundary_sweep",
]


def fast_read_blocks(servers: Sequence[str], max_faults: int) -> List[List[str]]:
    """Partition the servers into blocks of at most ``t`` servers (Fig. 9's B1..Bk)."""
    if max_faults < 1:
        raise ConfigurationError("the Fig. 9 construction needs t >= 1")
    blocks: List[List[str]] = []
    current: List[str] = []
    for server in servers:
        current.append(server)
        if len(current) == max_faults:
            blocks.append(current)
            current = []
    if current:
        blocks.append(current)
    return blocks


@dataclass(frozen=True)
class Fig9Scenario:
    """The structure of the fast-read impossibility construction.

    ``pumping_readers`` is the number of readers whose (failed or successful)
    reads inflate the witness block's ``updated`` sets before some reader
    accepts the new value; ``applicable`` says whether the construction fits
    within ``R`` readers -- which happens exactly when ``R >= S/t - 2``.
    """

    servers: Tuple[str, ...]
    max_faults: int
    readers: int
    witness_block: Tuple[str, ...]
    required_degree: int
    pumping_readers: int
    applicable: bool
    reason: str


def build_fig9_scenario(
    num_servers: int, max_faults: int, readers: int
) -> Fig9Scenario:
    """Work out whether (and how) the inversion construction applies."""
    servers = tuple(server_ids(num_servers))
    if max_faults < 1:
        raise ConfigurationError("t >= 1 required")
    witness_block = tuple(servers[:max_faults])
    # A reader that only sees the new value on the witness block needs
    # admissibility degree a with S - a*t <= |block| = t, i.e.
    # a >= (S - t) / t.
    required_degree = math.ceil((num_servers - max_faults) / max_faults)
    # The updated set on the block starts with {w1, w2} (the writer plus the
    # second writer's query); each pumping reader adds itself.
    pumping_readers = max(0, required_degree - 2)
    # The accepting reader is pumping_readers + 1-th; the final (inverting)
    # reader is one more; the algorithm also caps degrees at R + 1.
    fits_in_readers = pumping_readers + 2 <= readers + 1 and required_degree <= readers + 1
    # In fact pumping_readers + 1 readers participate before the final one,
    # so we need pumping_readers + 2 <= readers ... the +1 slack above keeps
    # the classification aligned with the exact R >= S/t - 2 boundary.
    theoretically_impossible = readers >= bound_value(num_servers, max_faults)
    applicable = fits_in_readers and theoretically_impossible
    if applicable:
        reason = (
            f"R={readers} >= S/t - 2 = {bound_value(num_servers, max_faults):.2f}: "
            f"degree {required_degree} witnesses fit in one block of {max_faults} "
            "servers, which the final reader can skip"
        )
    else:
        reason = (
            f"R={readers} < S/t - 2 = {bound_value(num_servers, max_faults):.2f}: "
            "every admissibility witness spans more than t servers, so no single "
            "read can miss it"
        )
    return Fig9Scenario(
        servers=servers,
        max_faults=max_faults,
        readers=readers,
        witness_block=witness_block,
        required_degree=required_degree,
        pumping_readers=pumping_readers,
        applicable=applicable,
        reason=reason,
    )


@dataclass
class Fig9Result:
    """Outcome of replaying the construction against the real protocol."""

    scenario: Fig9Scenario
    history: History
    atomicity: AtomicityResult
    returned_values: List[Tuple[str, Optional[str]]] = field(default_factory=list)

    @property
    def violation_found(self) -> bool:
        return not self.atomicity.atomic


def run_fig9_experiment(
    num_servers: int,
    max_faults: int,
    readers: int,
    delay: float = 1.0,
) -> Fig9Result:
    """Replay the Fig. 9 adversarial schedule against the fast-read protocol.

    The protocol is instantiated with ``enforce_condition=False`` so the same
    code runs on both sides of the boundary; below the bound the schedule is
    still executed but cannot produce an inversion.
    """
    scenario = build_fig9_scenario(num_servers, max_faults, readers)
    servers = list(scenario.servers)
    protocol = FastReadMwmrProtocol(
        servers,
        max_faults,
        readers=readers,
        writers=2,
        enforce_condition=False,
    )
    simulation = Simulation(protocol, delay_model=ConstantDelay(delay))

    witness = set(scenario.witness_block)
    others = [s for s in servers if s not in witness]

    # The first writer's second round-trip ("write" messages) reaches only the
    # witness block; the write therefore stays pending.
    for server in others:
        simulation.add_skip_rule(
            SkipRule(sender="w1", receiver=server, kind="write", both_directions=False)
        )
    # The second writer's own update phase is delayed entirely -- only its
    # query round-trip (which inflates the updated sets) takes effect.
    simulation.add_skip_rule(SkipRule(sender="w2", kind="write", both_directions=False))

    reader_ids = client_ids("r", readers)
    final_reader = reader_ids[-1]
    # The final reader's single round-trip misses the witness block.
    for server in witness:
        simulation.add_skip_rule(
            SkipRule(sender=final_reader, receiver=server, kind="read")
        )

    # Schedule: w1 writes, w2 starts a write (query only), then the readers
    # read one after another, the final reader last.
    simulation.schedule_write("w1", "v-new", at=1.0)
    simulation.schedule_write("w2", "v-other", at=8.0)
    at = 16.0
    for reader in reader_ids[:-1]:
        simulation.schedule_read(reader, at=at)
        at += 8.0
    simulation.schedule_read(final_reader, at=at)

    outcome = simulation.run()
    verdict = check_atomicity(outcome.history)
    returned = [
        (op.client, op.value) for op in outcome.history.reads if op.is_complete
    ]
    return Fig9Result(
        scenario=scenario,
        history=outcome.history,
        atomicity=verdict,
        returned_values=returned,
    )


def boundary_sweep(
    configurations: Sequence[Tuple[int, int, int]],
) -> List[Tuple[Tuple[int, int, int], bool, bool]]:
    """For each ``(S, t, R)``: (theoretically impossible?, violation observed?).

    Used by the Fig. 9 benchmark to show the measured boundary coincides with
    ``R >= S/t - 2``.
    """
    rows: List[Tuple[Tuple[int, int, int], bool, bool]] = []
    for servers, faults, readers in configurations:
        impossible = readers >= bound_value(servers, faults)
        result = run_fig9_experiment(servers, faults, readers)
        rows.append(((servers, faults, readers), impossible, result.violation_found))
    return rows
