"""The full-info model of Section 4.1, with content-aware reader views.

In the full-info model every server is an append-only log: it appends
everything it receives and answers queries with its entire log.  Clients may
send arbitrary information, so the *content* a round-trip deposits on a
server can depend on everything the client has learned so far.  Concretely,
for the cast of the W1R2 proof:

* the write phases ``W1``/``W2`` always deposit their value (``1``/``2``);
* the first round-trip of a read deposits a constant marker -- the reader has
  learned nothing yet ("it should not blindly affect the servers", the
  intuition Section 4 then makes rigorous);
* the second round-trip of a read deposits a marker **plus the reader's
  round-1 view**, because a real implementation may propagate what the first
  round-trip discovered.

A reader's *full-info view* is therefore a nested structure: for each of its
round-trips, for each server it contacted, the sequence of entry contents in
that server's log at the moment it was served.  Two executions are
indistinguishable to a reader exactly when these structures are equal -- this
is the equality the chain argument's links are checked against.

A **read rule** (an implementation under test) is any deterministic function
from a full-info view to a return value in ``{1, 2}``.  Several natural rules
are provided; the impossibility driver finds, for each of them, a concrete
execution in the constructed chains where atomicity fails.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import ProofError
from .executions import AbstractExecution, Phase

__all__ = [
    "LogEntry",
    "FullInfoView",
    "full_info_view",
    "indistinguishable",
    "ReadRule",
    "LastWriteWinsRule",
    "MajorityOrderRule",
    "FirstRoundPriorityRule",
    "PessimisticOldValueRule",
    "NATURAL_RULES",
]


@dataclass(frozen=True)
class LogEntry:
    """The content one phase deposits in a server log.

    ``label`` identifies the phase kind (``"W1"``, ``"W2"``, ``"R1(1)"``...);
    ``carried_view`` is non-None only for second read round-trips and holds
    the depositing reader's round-1 view.
    """

    label: str
    value: Optional[int] = None
    carried_view: Optional[Tuple[Tuple[str, Tuple["LogEntry", ...]], ...]] = None


#: A round-trip view: (server, log entries) pairs for every contacted server.
RoundTripView = Tuple[Tuple[str, Tuple[LogEntry, ...]], ...]


@dataclass(frozen=True)
class FullInfoView:
    """The complete content-aware view of one reader in one execution."""

    reader: str
    round1: RoundTripView
    round2: RoundTripView

    def round(self, index: int) -> RoundTripView:
        if index == 1:
            return self.round1
        if index == 2:
            return self.round2
        raise ValueError("round index must be 1 or 2")

    def servers(self, index: int) -> Tuple[str, ...]:
        return tuple(server for server, _ in self.round(index))

    def log_at(self, index: int, server: str) -> Tuple[LogEntry, ...]:
        for name, log in self.round(index):
            if name == server:
                return log
        raise KeyError(server)


def _round1_view_raw(execution: AbstractExecution, reader: str) -> RoundTripView:
    """The round-1 view: only writes and first-round markers can precede it."""
    phase = Phase(reader, 1)
    entries: List[Tuple[str, Tuple[LogEntry, ...]]] = []
    for server in execution.servers:
        order = execution.receive_order[server]
        if phase not in order:
            continue
        prefix = execution.server_log_before(server, phase)
        log = tuple(_entry_for(execution, p, allow_round2=False) for p in prefix)
        entries.append((server, log))
    return tuple(entries)


def _entry_for(
    execution: AbstractExecution, phase: Phase, allow_round2: bool = True
) -> LogEntry:
    if phase.is_write:
        return LogEntry(label=str(phase), value=execution.writes[phase.operation])
    if phase.round_trip == 1:
        return LogEntry(label=str(phase))
    if not allow_round2:
        # A second read round-trip inside a round-1 prefix would mean the
        # construction produced a cyclic dependency; the proof's executions
        # never do this (round-1 phases temporally precede all round-2
        # phases), so flag it loudly.
        raise ProofError(
            f"{phase} appears before a first round-trip in {execution.name}"
        )
    carried = _round1_view_raw(execution, phase.operation)
    return LogEntry(label=str(phase), carried_view=carried)


def full_info_view(execution: AbstractExecution, reader: str) -> FullInfoView:
    """Compute the content-aware view of ``reader`` in ``execution``."""
    round1 = _round1_view_raw(execution, reader)
    phase2 = Phase(reader, 2)
    entries: List[Tuple[str, Tuple[LogEntry, ...]]] = []
    for server in execution.servers:
        order = execution.receive_order[server]
        if phase2 not in order:
            continue
        prefix = execution.server_log_before(server, phase2)
        log = tuple(_entry_for(execution, p) for p in prefix)
        entries.append((server, log))
    return FullInfoView(reader=reader, round1=round1, round2=tuple(entries))


def indistinguishable(
    first: AbstractExecution, second: AbstractExecution, reader: str
) -> bool:
    """Content-aware indistinguishability of two executions to a reader."""
    return full_info_view(first, reader) == full_info_view(second, reader)


# ---------------------------------------------------------------------------
# Read rules: deterministic decision functions over full-info views.
# ---------------------------------------------------------------------------


class ReadRule(abc.ABC):
    """A deterministic mapping from a reader's full-info view to a value."""

    name: str = "abstract-rule"

    @abc.abstractmethod
    def decide(self, view: FullInfoView) -> int:
        """Return the value (1 or 2) the reader responds with."""

    # -- helpers shared by the concrete rules ---------------------------------

    @staticmethod
    def write_order_on(log: Sequence[LogEntry]) -> str:
        """The order of write values in one server log, e.g. ``"12"`` or ``"2"``."""
        return "".join(str(entry.value) for entry in log if entry.value is not None)

    @classmethod
    def observed_orders(cls, view: FullInfoView) -> List[str]:
        """Per-server write orders, taking the latest information available.

        The round-2 log of a server supersedes its round-1 log (it is a
        superset); servers contacted only in round 1 contribute their round-1
        order.
        """
        orders: Dict[str, str] = {}
        for server, log in view.round1:
            orders[server] = cls.write_order_on(log)
        for server, log in view.round2:
            orders[server] = cls.write_order_on(log)
        return [orders[s] for s in sorted(orders)]


class LastWriteWinsRule(ReadRule):
    """Return the value of the write that more servers received last.

    Ties (including the all-concurrent case) favour the larger value, which
    keeps the rule correct on the forced head execution.
    """

    name = "last-write-wins"

    def decide(self, view: FullInfoView) -> int:
        last_one = 0
        last_two = 0
        for order in self.observed_orders(view):
            if order.endswith("1"):
                last_one += 1
            elif order.endswith("2"):
                last_two += 1
        return 1 if last_one > last_two else 2


class MajorityOrderRule(ReadRule):
    """Return 1 only when a strict majority of contacted servers saw ``21``."""

    name = "majority-order"

    def decide(self, view: FullInfoView) -> int:
        orders = self.observed_orders(view)
        swapped = sum(1 for order in orders if order.startswith("2"))
        return 1 if swapped > len(orders) / 2 else 2


class FirstRoundPriorityRule(ReadRule):
    """Decide from the first round-trip alone when it is unanimous.

    Models an implementation that tries to be "as fast as allowed": if every
    server contacted in round 1 already agrees on the write order, commit to
    that value; otherwise fall back to the round-2 information.
    """

    name = "first-round-priority"

    def decide(self, view: FullInfoView) -> int:
        round1_orders = {
            self.write_order_on(log) for _, log in view.round1 if log
        }
        if round1_orders == {"12"}:
            return 2
        if round1_orders == {"21"}:
            return 1
        return MajorityOrderRule().decide(view)


class PessimisticOldValueRule(ReadRule):
    """Return 2 unless *every* contacted server reports the swapped order.

    This is the rule that is maximally reluctant to return the old value; it
    mirrors the "if the reader cannot differentiate Rel1 from Rel2 it must
    return 2" case analysis in Section 4.1.
    """

    name = "pessimistic-old-value"

    def decide(self, view: FullInfoView) -> int:
        orders = [o for o in self.observed_orders(view) if o]
        if orders and all(order.startswith("2") for order in orders):
            return 1
        return 2


#: The rules exercised by the test suite and the Fig. 3 benchmark.
NATURAL_RULES: Tuple[ReadRule, ...] = (
    LastWriteWinsRule(),
    MajorityOrderRule(),
    FirstRoundPriorityRule(),
    PessimisticOldValueRule(),
)
