"""The executable W1R2 impossibility theorem (Theorem 1).

Theorem 1 says: for ``t >= 1``, ``W >= 2``, ``R >= 2`` there is no fast-write
(W1R2) atomic register implementation.  The chain argument proves it by
showing that *any* implementation must return inconsistent values somewhere
in the constructed executions.  This module turns that into a program:

1. :func:`find_critical_server` runs the implementation's read rule over the
   alpha chain and locates the critical server ``s_i1`` -- or, if the rule
   already answers incorrectly at an end of the chain, returns that end as an
   immediate violation (the forced-value obligations of atomicity).
2. :func:`refute_rule` then builds the beta chain and the zigzag executions
   for that ``i1`` and sweeps them for a concrete execution in which the two
   readers return different values even though both follow both writes --
   which the definition of atomicity forbids.

For every deterministic read rule the test suite and benchmarks exercise, the
sweep produces a concrete :class:`ImpossibilityWitness`.  If a rule evades
the sweep it must be *sensitive to the blind first round-trip of the other
read* (the case Section 4 handles); the driver then reports
``requires_sieve=True`` together with the sieve certificate showing the
argument still applies after eliminating the affected servers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core.errors import ProofError
from ..util.ids import server_ids
from .chains import (
    ChainArgumentCertificate,
    build_alpha_chain,
    build_alpha_tail,
    build_beta_chain,
    build_diagonal_link,
    build_horizontal_link,
    build_modified_tails,
    verify_chain_argument,
)
from .executions import AbstractExecution
from .fullinfo import ReadRule, full_info_view
from .sieve import SieveCertificate, run_sieve

__all__ = [
    "ImpossibilityWitness",
    "RefutationOutcome",
    "find_critical_server",
    "refute_rule",
    "refute_all",
]


@dataclass(frozen=True)
class ImpossibilityWitness:
    """A concrete execution on which the rule violates atomicity."""

    execution: AbstractExecution
    kind: str  # "forced-value" | "reader-disagreement"
    description: str
    r1_value: Optional[int] = None
    r2_value: Optional[int] = None


@dataclass
class RefutationOutcome:
    """The result of running the impossibility argument against one rule."""

    rule_name: str
    num_servers: int
    critical_index: Optional[int]
    witness: Optional[ImpossibilityWitness]
    executions_evaluated: int
    certificate: Optional[ChainArgumentCertificate] = None
    requires_sieve: bool = False
    sieve: Optional[SieveCertificate] = None
    notes: List[str] = field(default_factory=list)

    @property
    def refuted(self) -> bool:
        """True when a concrete non-atomic execution was exhibited."""
        return self.witness is not None

    def summary(self) -> str:
        if self.witness is not None:
            return (
                f"rule '{self.rule_name}' over S={self.num_servers}: atomicity violated "
                f"in {self.witness.execution.name} ({self.witness.kind}): "
                f"{self.witness.description}"
            )
        if self.requires_sieve:
            return (
                f"rule '{self.rule_name}' over S={self.num_servers}: no violation in the "
                "plain chain sweep; the rule is sensitive to the blind first round-trip "
                "and falls to the sieve argument of Section 4"
            )
        return f"rule '{self.rule_name}' over S={self.num_servers}: no violation found"


def _r1(rule: ReadRule, execution: AbstractExecution) -> int:
    return rule.decide(full_info_view(execution, "R1"))


def _r2(rule: ReadRule, execution: AbstractExecution) -> int:
    return rule.decide(full_info_view(execution, "R2"))


def find_critical_server(
    rule: ReadRule, servers: Sequence[str]
) -> Tuple[Optional[int], Optional[ImpossibilityWitness], int]:
    """Locate the critical server index for a rule, or an immediate violation.

    Returns ``(critical_index, witness, evaluations)``.  Exactly one of
    ``critical_index`` / ``witness`` is non-None.
    """
    alpha = build_alpha_chain(servers)
    tail = build_alpha_tail(servers)
    evaluations = 0

    head_value = _r1(rule, alpha[0])
    evaluations += 1
    forced_head = alpha[0].forced_read_value("R1")
    if head_value != forced_head:
        return (
            None,
            ImpossibilityWitness(
                execution=alpha[0],
                kind="forced-value",
                description=(
                    f"R1 returned {head_value} in alpha_0 although W1 precedes W2 "
                    f"precedes R1, so atomicity forces {forced_head}"
                ),
                r1_value=head_value,
            ),
            evaluations,
        )

    last_value = _r1(rule, alpha[-1])
    evaluations += 1
    if last_value != 1:
        # R1's view in alpha_S equals its view in alpha_tail, where the client
        # order W2 < W1 < R1 forces the return value 1.
        tail_value = _r1(rule, tail)
        evaluations += 1
        forced_tail = tail.forced_read_value("R1")
        return (
            None,
            ImpossibilityWitness(
                execution=tail,
                kind="forced-value",
                description=(
                    f"R1 returned {tail_value} in alpha_tail although W2 precedes W1 "
                    f"precedes R1, so atomicity forces {forced_tail} (alpha_S and "
                    "alpha_tail are indistinguishable to R1)"
                ),
                r1_value=tail_value,
            ),
            evaluations,
        )

    previous = head_value
    for i in range(1, len(alpha)):
        value = _r1(rule, alpha[i])
        evaluations += 1
        if previous == 2 and value == 1:
            return i, None, evaluations
        previous = value
    # The value is 2 at alpha_0 and 1 at alpha_S, so a flip must exist.
    raise ProofError("no critical server found although the end values differ")


def refute_rule(
    rule: ReadRule,
    num_servers: int = 3,
    max_faults: int = 1,
    include_certificate: bool = True,
) -> RefutationOutcome:
    """Run the full impossibility argument against one read rule."""
    if num_servers < 3:
        raise ProofError("the argument is run with S >= 3 (Section 3.1)")
    servers = tuple(server_ids(num_servers))

    critical_index, witness, evaluations = find_critical_server(rule, servers)
    outcome = RefutationOutcome(
        rule_name=rule.name,
        num_servers=num_servers,
        critical_index=critical_index,
        witness=witness,
        executions_evaluated=evaluations,
    )
    if witness is not None:
        return outcome

    assert critical_index is not None
    if include_certificate:
        outcome.certificate = verify_chain_argument(
            num_servers, critical_index, max_faults=max_faults
        )
        if not outcome.certificate.all_verified:  # pragma: no cover - defensive
            raise ProofError("chain links failed to verify; proof engine bug")

    # Phase 2: decide which candidate chain to follow from the value R2
    # returns in the modified tails (where it skips the critical server).
    tail_prime, tail_double = build_modified_tails(servers, critical_index)
    tail_value_prime = _r2(rule, tail_prime)
    tail_value_double = _r2(rule, tail_double)
    outcome.executions_evaluated += 2
    if tail_value_prime != tail_value_double:
        raise ProofError(
            "R2 distinguished the modified tails although the views are equal; "
            "the rule is not a function of the full-info view"
        )
    use_prime = tail_value_prime == 1
    outcome.notes.append(
        f"R2 returns {tail_value_prime} in the modified tails; following "
        f"chain {'beta-prime' if use_prime else 'beta-double-prime'}"
    )

    candidate_orders = [use_prime, not use_prime]
    for choice in candidate_orders:
        witness = _sweep_chain(rule, servers, critical_index, choice, outcome)
        if witness is not None:
            outcome.witness = witness
            return outcome

    # No concrete violation found: the rule must be exploiting the blind first
    # round-trip (Section 4's case).  Attach the sieve demonstration.
    outcome.requires_sieve = True
    outcome.sieve = run_sieve(
        num_servers=max(num_servers, 4),
        affected_servers=servers[-1:],
        max_faults=max_faults,
    )
    return outcome


def _sweep_chain(
    rule: ReadRule,
    servers: Tuple[str, ...],
    critical_index: int,
    use_prime: bool,
    outcome: RefutationOutcome,
) -> Optional[ImpossibilityWitness]:
    """Evaluate both readers on every execution of a beta chain and its zigzag
    derivatives, returning the first reader-disagreement found."""
    beta = build_beta_chain(servers, critical_index, use_prime=use_prime)
    executions: List[AbstractExecution] = list(beta)
    for k in range(len(servers)):
        temp_k, gamma_k = build_horizontal_link(beta[k], servers, k, critical_index)
        temp_pk, gamma_pk = build_diagonal_link(beta[k + 1], servers, k, critical_index)
        for execution in (temp_k, gamma_k, temp_pk, gamma_pk):
            if execution is not None:
                executions.append(execution)

    for execution in executions:
        r1_value = _r1(rule, execution)
        r2_value = _r2(rule, execution)
        outcome.executions_evaluated += 2
        if r1_value != r2_value:
            return ImpossibilityWitness(
                execution=execution,
                kind="reader-disagreement",
                description=(
                    f"R1 returned {r1_value} but R2 returned {r2_value} in "
                    f"{execution.name}; both reads follow both writes, so atomicity "
                    "requires them to return the same value"
                ),
                r1_value=r1_value,
                r2_value=r2_value,
            )
    return None


def refute_all(
    rules: Sequence[ReadRule], num_servers: int = 3, max_faults: int = 1
) -> List[RefutationOutcome]:
    """Run the refutation for a collection of rules (used by the Fig. 3 bench)."""
    return [
        refute_rule(rule, num_servers=num_servers, max_faults=max_faults)
        for rule in rules
    ]
