"""The crucial-info model of Section 4.1.

The full-info model lets servers store arbitrary logs.  For deciding *return
values* in the executions of the impossibility proof, the paper argues that
the only information that matters -- the *crucial information* -- is the
order in which each server received the two writes: ``"12"`` or ``"21"``
(or a prefix thereof while a write is still missing).  Any correct
implementation must store, modify and disseminate (at least) this
information, and the only way the first round-trip of a read can influence
another read's return value is by flipping it.

This module extracts the crucial information from abstract executions and
models the *blind effect* of a read's first round-trip (which servers it
flips), which is the input to the sieve construction of Section 4.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Sequence

from .executions import AbstractExecution, W1, W2

__all__ = [
    "CRUCIAL_12",
    "CRUCIAL_21",
    "crucial_info",
    "crucial_info_vector",
    "FirstRoundEffect",
    "NoEffect",
    "FlipEffect",
    "CrucialInfoState",
]

CRUCIAL_12 = "12"
CRUCIAL_21 = "21"


def crucial_info(execution: AbstractExecution, server: str) -> str:
    """The write order a server observes in an execution: ``"12"``, ``"21"``,
    a single digit when one write skips it, or ``""`` when both do."""
    digits: List[str] = []
    for phase in execution.receive_order[server]:
        if phase == W1:
            digits.append(str(execution.writes["W1"]))
        elif phase == W2:
            digits.append(str(execution.writes["W2"]))
    return "".join(digits)


def crucial_info_vector(execution: AbstractExecution) -> Dict[str, str]:
    """Per-server crucial information for one execution."""
    return {server: crucial_info(execution, server) for server in execution.servers}


class FirstRoundEffect:
    """Models how the first round-trip of a read affects server crucial info.

    Section 4's sieve has to cope with implementations where ``R2^(1)``
    *changes* the crucial information on some servers -- a "blind" effect,
    because the reader has learned nothing when it issues its first
    round-trip.  Subclasses say which servers are affected; the flip itself
    is always ``"12" <-> "21"`` because (by the crucial-info argument) that is
    the only change that can influence another read's return value.
    """

    def affected_servers(self, servers: Sequence[str]) -> FrozenSet[str]:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class NoEffect(FirstRoundEffect):
    """The first round-trip leaves crucial information untouched."""

    def affected_servers(self, servers: Sequence[str]) -> FrozenSet[str]:
        return frozenset()

    def describe(self) -> str:
        return "no-effect"


class FlipEffect(FirstRoundEffect):
    """The first round-trip flips the crucial info on a fixed set of servers.

    Because the effect is blind, the affected set cannot depend on the
    execution -- only on the implementation.  That is exactly the property
    the sieve exploits: the same servers are affected in ``alpha-hat_0`` and
    in ``alpha-hat_x``.
    """

    def __init__(self, affected: Iterable[str]) -> None:
        self._affected = frozenset(affected)

    def affected_servers(self, servers: Sequence[str]) -> FrozenSet[str]:
        return self._affected & frozenset(servers)

    def describe(self) -> str:
        return f"flip-effect({sorted(self._affected)})"


@dataclass
class CrucialInfoState:
    """Per-server crucial information after applying a first-round effect.

    ``initial`` is the crucial info derived from the write receive orders;
    ``after_effect`` is the info after the blind flip of the affected servers.
    """

    initial: Dict[str, str]
    affected: FrozenSet[str]
    after_effect: Dict[str, str] = field(default_factory=dict)

    @staticmethod
    def flip(info: str) -> str:
        if info == CRUCIAL_12:
            return CRUCIAL_21
        if info == CRUCIAL_21:
            return CRUCIAL_12
        return info

    @classmethod
    def from_execution(
        cls, execution: AbstractExecution, effect: FirstRoundEffect
    ) -> "CrucialInfoState":
        initial = crucial_info_vector(execution)
        affected = effect.affected_servers(execution.servers)
        after = {
            server: cls.flip(info) if server in affected else info
            for server, info in initial.items()
        }
        return cls(initial=initial, affected=affected, after_effect=after)

    def unaffected_servers(self) -> List[str]:
        return [s for s in self.initial if s not in self.affected]
