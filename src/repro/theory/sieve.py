"""Sieve-based construction of executions (Section 4.2, Fig. 8).

The chain argument of Section 3 assumes that the first round-trip of a read
does not affect the return values of other reads.  Section 4 lifts the
assumption: if ``R2^(1)`` *does* change the crucial information on some
servers (necessarily blindly -- it carries no execution-specific
information), then

* partition the servers into ``Sigma_1`` (affected) and ``Sigma_2``
  (unaffected);
* run the swapping chain **only over the unaffected servers** -- executions
  ``alpha-hat_0 .. alpha-hat_x`` where ``x = |Sigma_2|``;
* the affected servers behave identically in every execution of the
  shortened chain (their flip is blind), so they cannot decide R1's return
  value, and the two ends of the shortened chain still force different
  return values;
* as long as enough unaffected servers remain (at least 3 when ``t = 1``),
  the Section 3 argument goes through on ``Sigma_2``.

:func:`run_sieve` builds the shortened chain, checks all of the above, and
returns a :class:`SieveCertificate` that the Fig. 8 benchmark sweeps over the
number of affected servers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..util.ids import server_ids
from .chains import verify_chain_argument
from .crucialinfo import (
    CRUCIAL_21,
    CrucialInfoState,
    FirstRoundEffect,
    FlipEffect,
    NoEffect,
)
from .executions import AbstractExecution, R1_1, R1_2, R2_1, W1, W2

__all__ = ["SieveStep", "SieveCertificate", "build_alpha_hat_chain", "run_sieve"]


@dataclass(frozen=True)
class SieveStep:
    """One execution of the shortened chain with its crucial-info snapshot."""

    name: str
    swapped_unaffected: int
    crucial_info_after_effect: Dict[str, str]
    r1_forced_value: Optional[int]


@dataclass
class SieveCertificate:
    """Outcome of the sieve construction for one affected-server set."""

    servers: Tuple[str, ...]
    affected: FrozenSet[str]
    unaffected: Tuple[str, ...]
    steps: List[SieveStep] = field(default_factory=list)
    checks: List[Tuple[str, bool, str]] = field(default_factory=list)
    chain_argument_verified: bool = False

    @property
    def all_verified(self) -> bool:
        return self.chain_argument_verified and all(ok for _, ok, _ in self.checks)

    @property
    def chain_length(self) -> int:
        return len(self.steps)

    def summary(self) -> str:
        status = "VERIFIED" if self.all_verified else "FAILED"
        return (
            f"sieve over S={len(self.servers)} servers, |Sigma_1|={len(self.affected)} "
            f"affected, shortened chain of {self.chain_length} executions -> {status}"
        )


def build_alpha_hat_chain(
    servers: Sequence[str], affected: FrozenSet[str]
) -> List[AbstractExecution]:
    """The shortened chain ``alpha-hat_0 .. alpha-hat_x`` of Fig. 8.

    Executions contain the two writes, ``R1^(1)``, ``R2^(1)`` and ``R1^(2)``
    (the round-trips relevant to R1's return value); swapping of the writes
    happens only on the *unaffected* servers, one at a time.  Affected
    servers keep the head ordering throughout -- their state evolution is
    fixed by the blind effect, not by the adversary's swaps.
    """
    unaffected = [s for s in servers if s not in affected]
    reads = (R1_1, R2_1, R1_2)
    executions: List[AbstractExecution] = []
    for i in range(len(unaffected) + 1):
        swapped = set(unaffected[:i])
        receive = {}
        for server in servers:
            writes = (W2, W1) if server in swapped else (W1, W2)
            receive[server] = writes + reads
        client_order = (
            (("W1", "W2"),) if i == 0 else tuple()
        ) + (("W1", "R1"), ("W2", "R1"), ("W1", "R2"), ("W2", "R2"))
        executions.append(
            AbstractExecution.build(f"alpha-hat_{i}", servers, receive, client_order)
        )
    return executions


def run_sieve(
    num_servers: int,
    affected_servers: Sequence[str] = (),
    max_faults: int = 1,
    critical_index: Optional[int] = None,
) -> SieveCertificate:
    """Run the sieve construction and verify its claims.

    Args:
        num_servers: total number of servers ``S``.
        affected_servers: the servers whose crucial info ``R2^(1)`` flips
            (the set ``Sigma_1``); an empty set degenerates to the plain
            Section 3 argument.
        max_faults: ``t`` (the construction is stated for ``t = 1``).
        critical_index: position of the critical server *within the
            unaffected servers* used when re-running the chain argument on
            ``Sigma_2``; defaults to 1.
    """
    servers = tuple(server_ids(num_servers))
    affected = frozenset(affected_servers) & frozenset(servers)
    effect: FirstRoundEffect = FlipEffect(affected) if affected else NoEffect()
    unaffected = tuple(s for s in servers if s not in affected)

    certificate = SieveCertificate(
        servers=servers, affected=affected, unaffected=unaffected
    )

    chain = build_alpha_hat_chain(servers, affected)
    for index, execution in enumerate(chain):
        state = CrucialInfoState.from_execution(execution, effect)
        forced = execution.forced_read_value("R1")
        certificate.steps.append(
            SieveStep(
                name=execution.name,
                swapped_unaffected=index,
                crucial_info_after_effect=dict(state.after_effect),
                r1_forced_value=forced,
            )
        )

    # Check 1: the head execution forces R1 to return 2 regardless of the
    # blind effect (W1 precedes W2 at the clients).
    head_forced = certificate.steps[0].r1_forced_value
    certificate.checks.append(
        (
            "alpha-hat_0 forces R1 to return 2",
            head_forced == 2,
            f"forced value {head_forced}",
        )
    )

    # Check 2: in the tail execution every *unaffected* server ends up with
    # crucial info "21" after the effect, so R1 (which can only use the
    # unaffected servers' information) must return 1.
    tail_state = certificate.steps[-1].crucial_info_after_effect
    tail_unaffected_swapped = all(
        tail_state[s] == CRUCIAL_21 for s in unaffected
    )
    certificate.checks.append(
        (
            "alpha-hat_x: all unaffected servers hold crucial info 21",
            tail_unaffected_swapped,
            str({s: tail_state[s] for s in unaffected}),
        )
    )

    # Check 3: the affected servers behave identically in the head and tail
    # executions of the shortened chain (their input never changes), which is
    # why they cannot decide R1's return value.
    head_state = certificate.steps[0].crucial_info_after_effect
    affected_identical = all(head_state[s] == tail_state[s] for s in affected)
    certificate.checks.append(
        (
            "affected servers are identical at both ends of the shortened chain",
            affected_identical,
            str({s: (head_state[s], tail_state[s]) for s in affected}),
        )
    )

    # Check 4: enough unaffected servers remain for the Section 3 argument.
    enough_left = len(unaffected) >= 3
    certificate.checks.append(
        (
            "at least 3 unaffected servers remain (t = 1)",
            enough_left,
            f"|Sigma_2| = {len(unaffected)}",
        )
    )

    # Check 5: the full Section 3 chain argument goes through on Sigma_2.
    if enough_left:
        index = critical_index if critical_index is not None else 1
        inner = verify_chain_argument(
            num_servers=len(unaffected),
            critical_index=index,
            max_faults=max_faults,
        )
        certificate.chain_argument_verified = inner.all_verified
    else:
        certificate.chain_argument_verified = False

    return certificate
