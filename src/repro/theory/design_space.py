"""Regenerating Table 1: the design space of fast register implementations.

Table 1 of the paper summarises, per design point, the impossibility
condition and the feasibility condition.  This module produces that table in
two complementary ways:

* :func:`theoretical_table` -- directly from the feasibility predicates in
  :mod:`repro.core.conditions` (what the paper proves);
* :func:`empirical_table` -- by *running* the canonical protocol of each
  quadrant on the simulator under contended multi-writer workloads and crash
  faults, counting atomicity violations and measuring the observed worst-case
  round-trips (what the library measures).

The Table 1 benchmark and the ``design_space_report`` example print both and
check they agree: feasible quadrants yield zero violations with the claimed
round-trip counts, infeasible quadrants yield violations for the candidate
protocols.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..consistency.atomicity import check_atomicity
from ..core.conditions import SystemParameters, is_feasible
from ..core.fastness import DesignPoint
from ..protocols.registry import ProtocolSpec, protocol_for_point
from ..sim.delays import UniformDelay
from ..sim.runtime import Simulation
from ..util.ids import client_ids, server_ids
from ..workloads.generators import (
    apply_open_loop,
    asymmetric_write_contention,
    bursty_contention,
)

__all__ = [
    "TheoreticalRow",
    "EmpiricalRow",
    "theoretical_table",
    "empirical_table",
    "format_table",
]


@dataclass(frozen=True)
class TheoreticalRow:
    """One row of the paper's Table 1."""

    point: DesignPoint
    impossibility: str
    implementation: str
    feasible_here: bool
    source: str


@dataclass
class EmpiricalRow:
    """The measured counterpart of one Table 1 row."""

    point: DesignPoint
    protocol: str
    runs: int
    total_operations: int
    violations: int
    anomaly_kinds: List[str] = field(default_factory=list)
    observed_write_rtts: int = 0
    observed_read_rtts: int = 0
    expected_atomic: bool = True

    @property
    def matches_expectation(self) -> bool:
        observed_atomic = self.violations == 0
        return observed_atomic == self.expected_atomic


_TABLE1 = {
    DesignPoint.W2R2: ("t >= S/2", "W >= 2, R >= 2, t < S/2", "[23] Lynch-Shvartsman"),
    DesignPoint.W1R2: ("W >= 2, R >= 2, t >= 1", "none (empty set)", "this paper"),
    DesignPoint.W2R1: ("R >= S/t - 2", "R < S/t - 2", "this paper"),
    DesignPoint.W1R1: ("W >= 2, R >= 2, t >= 1", "none (empty set)", "[12] DGLV"),
}


def theoretical_table(params: SystemParameters) -> List[TheoreticalRow]:
    """Table 1 evaluated at a concrete system configuration."""
    rows: List[TheoreticalRow] = []
    for point in (DesignPoint.W2R2, DesignPoint.W1R2, DesignPoint.W2R1, DesignPoint.W1R1):
        impossibility, implementation, source = _TABLE1[point]
        rows.append(
            TheoreticalRow(
                point=point,
                impossibility=impossibility,
                implementation=implementation,
                feasible_here=is_feasible(point, params),
                source=source,
            )
        )
    return rows


def _run_protocol_once(
    spec: ProtocolSpec,
    params: SystemParameters,
    seed: int,
    bursts: int,
    crash_one_server: bool,
    workload_kind: str = "bursty",
) -> Tuple[int, int, List[str], int, int]:
    """Run one seeded contended workload; return violation stats and RTTs."""
    servers = server_ids(params.servers)
    kwargs = {}
    if spec.key == "fast-read-mwmr":
        kwargs["enforce_condition"] = False
    protocol = spec.factory(
        servers,
        params.max_faults,
        readers=params.readers,
        writers=params.writers if spec.multi_writer else 1,
        **kwargs,
    )
    simulation = Simulation(protocol, delay_model=UniformDelay(0.5, 1.5, seed=seed))
    writer_names = client_ids("w", protocol.writers)
    reader_names = client_ids("r", params.readers)
    if workload_kind == "bursty":
        workload = bursty_contention(
            writer_names,
            reader_names,
            bursts=bursts,
            burst_width=1.5,
            burst_gap=25.0,
            seed=seed,
        )
    else:
        workload = asymmetric_write_contention(
            writer_names, reader_names, rounds=max(1, bursts // 2)
        )
    apply_open_loop(simulation, workload)
    if crash_one_server and params.max_faults >= 1:
        simulation.crash_server(servers[-1], at=bursts * 12.0)
    outcome = simulation.run()
    verdict = check_atomicity(outcome.history)
    write_rtts, read_rtts = outcome.history.round_trip_counts()
    kinds = [kind.value for kind in verdict.report.kinds()]
    return (
        len(outcome.history.complete_operations),
        0 if verdict.atomic else 1,
        kinds,
        max(write_rtts, default=0),
        max(read_rtts, default=0),
    )


def empirical_table(
    params: SystemParameters,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    bursts: int = 4,
    crash_one_server: bool = True,
) -> List[EmpiricalRow]:
    """Measure the design space by running one protocol per quadrant."""
    rows: List[EmpiricalRow] = []
    for point in (DesignPoint.W2R2, DesignPoint.W1R2, DesignPoint.W2R1, DesignPoint.W1R1):
        spec = protocol_for_point(point, multi_writer=True)
        row = EmpiricalRow(
            point=point,
            protocol=spec.key,
            runs=len(seeds),
            total_operations=0,
            violations=0,
            expected_atomic=spec.expected_atomic and is_feasible(point, params),
        )
        kinds: set = set()
        for seed in seeds:
            for workload_kind in ("bursty", "asymmetric"):
                ops, violated, anomaly_kinds, w_rtt, r_rtt = _run_protocol_once(
                    spec, params, seed, bursts, crash_one_server, workload_kind
                )
                row.total_operations += ops
                row.violations += violated
                kinds.update(anomaly_kinds)
                row.observed_write_rtts = max(row.observed_write_rtts, w_rtt)
                row.observed_read_rtts = max(row.observed_read_rtts, r_rtt)
        row.runs = len(seeds) * 2
        row.anomaly_kinds = sorted(kinds)
        rows.append(row)
    return rows


def format_table(
    theoretical: Sequence[TheoreticalRow], empirical: Sequence[EmpiricalRow]
) -> str:
    """A printable side-by-side rendering of Table 1 and its measurement."""
    lines = [
        f"{'point':6} | {'impossible when':24} | {'implementation when':24} | "
        f"{'feasible':8} | {'protocol':20} | {'viol.':5} | {'RTTs (w/r)':10}",
        "-" * 118,
    ]
    empirical_by_point: Dict[DesignPoint, EmpiricalRow] = {row.point: row for row in empirical}
    for row in theoretical:
        measured = empirical_by_point.get(row.point)
        rtts = (
            f"{measured.observed_write_rtts}/{measured.observed_read_rtts}"
            if measured
            else "-"
        )
        lines.append(
            f"{row.point.name:6} | {row.impossibility:24} | {row.implementation:24} | "
            f"{str(row.feasible_here):8} | {(measured.protocol if measured else '-'):20} | "
            f"{(measured.violations if measured else 0):5} | {rtts:10}"
        )
    return "\n".join(lines)
