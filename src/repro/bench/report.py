"""Plain-text report rendering for benchmark results."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from .metrics import RunMetrics

__all__ = ["format_metrics_table", "format_rows"]


def format_rows(rows: Sequence[Dict[str, object]], columns: Sequence[str]) -> str:
    """Render a list of dictionaries as an aligned plain-text table."""
    widths = {col: len(col) for col in columns}
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for col in columns:
            value = row.get(col, "")
            if isinstance(value, float):
                text = f"{value:.3f}"
            else:
                text = str(value)
            widths[col] = max(widths[col], len(text))
            cells.append(text)
        rendered.append(cells)
    header = " | ".join(col.ljust(widths[col]) for col in columns)
    separator = "-+-".join("-" * widths[col] for col in columns)
    lines = [header, separator]
    for cells in rendered:
        lines.append(
            " | ".join(cell.ljust(widths[col]) for cell, col in zip(cells, columns))
        )
    return "\n".join(lines)


def format_metrics_table(metrics: Iterable[RunMetrics]) -> str:
    """Render a set of :class:`RunMetrics` as a comparison table."""
    rows = [m.as_row() for m in metrics]
    columns = [
        "protocol",
        "operations",
        "write_rtts",
        "read_rtts",
        "write_p50",
        "read_p50",
        "messages",
        "atomic",
        "anomalies",
    ]
    return format_rows(rows, columns)
