"""Metrics collected by the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..consistency.atomicity import AtomicityResult
from ..consistency.history import History
from ..util.stats import LatencyStats, summarize

__all__ = ["RunMetrics", "collect_metrics"]


@dataclass
class RunMetrics:
    """Latency, round-trip and correctness metrics of one protocol run."""

    protocol: str
    operations: int
    write_latency: LatencyStats
    read_latency: LatencyStats
    max_write_round_trips: int
    max_read_round_trips: int
    mean_write_round_trips: float
    mean_read_round_trips: float
    messages_sent: int
    atomic: bool
    anomaly_summary: str
    extra: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "operations": self.operations,
            "write_p50": self.write_latency.p50,
            "write_p99": self.write_latency.p99,
            "read_p50": self.read_latency.p50,
            "read_p99": self.read_latency.p99,
            "write_rtts": self.max_write_round_trips,
            "read_rtts": self.max_read_round_trips,
            "messages": self.messages_sent,
            "atomic": self.atomic,
            "anomalies": self.anomaly_summary,
            **self.extra,
        }


def collect_metrics(
    protocol_name: str,
    history: History,
    verdict: AtomicityResult,
    messages_sent: int = 0,
    extra: Optional[Dict[str, float]] = None,
) -> RunMetrics:
    """Derive :class:`RunMetrics` from a history and its atomicity verdict."""
    write_latencies = [
        op.latency for op in history.writes if op.latency is not None
    ]
    read_latencies = [op.latency for op in history.reads if op.latency is not None]
    write_rtts, read_rtts = history.round_trip_counts()
    return RunMetrics(
        protocol=protocol_name,
        operations=len(history.complete_operations),
        write_latency=summarize(write_latencies),
        read_latency=summarize(read_latencies),
        max_write_round_trips=max(write_rtts, default=0),
        max_read_round_trips=max(read_rtts, default=0),
        mean_write_round_trips=(sum(write_rtts) / len(write_rtts)) if write_rtts else 0.0,
        mean_read_round_trips=(sum(read_rtts) / len(read_rtts)) if read_rtts else 0.0,
        messages_sent=messages_sent,
        atomic=verdict.atomic,
        anomaly_summary=verdict.report.summary(),
        extra=dict(extra or {}),
    )
