"""Benchmark harness: run a protocol under a workload and collect metrics.

The ``benchmarks/`` directory uses this module for every table and figure so
that each benchmark file stays a thin declaration of *which* sweep to run,
while the mechanics (building the protocol, applying the workload, checking
atomicity, summarising latencies) live here and are unit-tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..consistency.atomicity import check_atomicity
from ..protocols.base import RegisterProtocol
from ..protocols.registry import build_protocol
from ..sim.delays import DelayModel, UniformDelay
from ..sim.runtime import Simulation
from ..util.ids import client_ids, server_ids
from ..workloads.generators import (
    OpenLoopWorkload,
    apply_open_loop,
    asymmetric_write_contention,
    bursty_contention,
    uniform_open_loop,
)
from .metrics import RunMetrics, collect_metrics

__all__ = ["BenchConfig", "run_simulated_benchmark", "sweep_protocols"]


@dataclass
class BenchConfig:
    """Configuration of one simulated benchmark run."""

    protocol_key: str
    servers: int = 5
    max_faults: int = 1
    readers: int = 2
    writers: int = 2
    seed: int = 0
    workload: str = "uniform"  # uniform | bursty | asymmetric
    writes_per_writer: int = 5
    reads_per_reader: int = 10
    horizon: float = 200.0
    crash_servers: int = 0
    protocol_kwargs: Dict[str, object] = field(default_factory=dict)

    def build_protocol(self) -> RegisterProtocol:
        return build_protocol(
            self.protocol_key,
            server_ids(self.servers),
            self.max_faults,
            readers=self.readers,
            writers=self.writers,
            **self.protocol_kwargs,
        )

    def build_workload(self, writer_count: int) -> OpenLoopWorkload:
        writer_names = client_ids("w", writer_count)
        reader_names = client_ids("r", self.readers)
        if self.workload == "uniform":
            return uniform_open_loop(
                writer_names,
                reader_names,
                writes_per_writer=self.writes_per_writer,
                reads_per_reader=self.reads_per_reader,
                horizon=self.horizon,
                seed=self.seed,
            )
        if self.workload == "bursty":
            return bursty_contention(
                writer_names,
                reader_names,
                bursts=max(1, self.writes_per_writer),
                burst_width=1.5,
                burst_gap=self.horizon / max(1, self.writes_per_writer),
                seed=self.seed,
            )
        if self.workload == "asymmetric":
            return asymmetric_write_contention(
                writer_names, reader_names, rounds=max(1, self.writes_per_writer // 2)
            )
        raise ValueError(f"unknown workload kind {self.workload!r}")


def run_simulated_benchmark(
    config: BenchConfig, delay_model: Optional[DelayModel] = None
) -> RunMetrics:
    """Run one protocol under one workload on the simulator and collect metrics."""
    protocol = config.build_protocol()
    simulation = Simulation(
        protocol,
        delay_model=delay_model or UniformDelay(0.5, 1.5, seed=config.seed),
    )
    workload = config.build_workload(protocol.writers)
    apply_open_loop(simulation, workload)
    servers = server_ids(config.servers)
    for index in range(min(config.crash_servers, config.max_faults)):
        simulation.crash_server(servers[-(index + 1)], at=config.horizon / 2)
    outcome = simulation.run()
    verdict = check_atomicity(outcome.history)
    return collect_metrics(
        protocol.name,
        outcome.history,
        verdict,
        messages_sent=outcome.messages_sent,
        extra={"virtual_duration": outcome.virtual_duration},
    )


def sweep_protocols(
    protocol_keys: Sequence[str],
    base_config: Optional[BenchConfig] = None,
    seeds: Sequence[int] = (0,),
    **overrides,
) -> List[RunMetrics]:
    """Run several protocols under the same workload settings."""
    results: List[RunMetrics] = []
    for key in protocol_keys:
        for seed in seeds:
            config_kwargs = dict(
                protocol_key=key,
                seed=seed,
            )
            if base_config is not None:
                config_kwargs.update(
                    servers=base_config.servers,
                    max_faults=base_config.max_faults,
                    readers=base_config.readers,
                    writers=base_config.writers,
                    workload=base_config.workload,
                    writes_per_writer=base_config.writes_per_writer,
                    reads_per_reader=base_config.reads_per_reader,
                    horizon=base_config.horizon,
                    crash_servers=base_config.crash_servers,
                )
            config_kwargs.update(overrides)
            results.append(run_simulated_benchmark(BenchConfig(**config_kwargs)))
    return results
