"""Benchmark harness shared by the ``benchmarks/`` directory and the examples."""

from .harness import BenchConfig, run_simulated_benchmark, sweep_protocols
from .metrics import RunMetrics, collect_metrics
from .report import format_metrics_table, format_rows

__all__ = [
    "BenchConfig",
    "run_simulated_benchmark",
    "sweep_protocols",
    "RunMetrics",
    "collect_metrics",
    "format_metrics_table",
    "format_rows",
]
