"""Process automata: the base classes for simulated servers and clients.

The paper models an implementation as "a collection of automata" whose
computation "proceeds in steps".  In the simulator every process is an object
registered with the network; a step is the handling of one delivered message
(plus any messages the handler sends in response).
"""

from __future__ import annotations

import abc
from typing import Optional

from .messages import Message
from .network import Network

__all__ = ["Process", "ServerProcess"]


class Process(abc.ABC):
    """A named automaton attached to a network."""

    def __init__(self, process_id: str) -> None:
        self.process_id = process_id
        self._network: Optional[Network] = None

    def attach(self, network: Network) -> None:
        """Register this process with a network."""
        self._network = network
        network.register(self.process_id, self.on_message)

    @property
    def network(self) -> Network:
        if self._network is None:
            raise RuntimeError(f"process {self.process_id} is not attached to a network")
        return self._network

    def send(self, message: Message) -> None:
        self.network.send(message)

    @abc.abstractmethod
    def on_message(self, message: Message) -> None:
        """Handle one delivered message (one automaton step)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.process_id})"


class ServerProcess(Process):
    """A server that wraps a protocol-defined server state machine.

    The wrapped ``logic`` object must expose ``handle(message) -> Message | None``;
    whatever it returns is sent back over the network.  Keeping the server
    logic free of any network or clock reference lets the same class run under
    the simulator, the asyncio transport and the proof engine's direct-call
    harness.
    """

    def __init__(self, process_id: str, logic) -> None:
        super().__init__(process_id)
        self.logic = logic
        self.received_count = 0

    def on_message(self, message: Message) -> None:
        self.received_count += 1
        reply = self.logic.handle(message)
        if reply is not None:
            self.send(reply)
