"""Crash-failure injection for the simulator.

The model allows any number of clients and up to ``t`` servers to crash in an
execution.  The injector schedules crash events on the virtual clock and
enforces the ``t`` budget for servers so that an experiment cannot
accidentally exceed the failure model it claims to run under.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set

from ..core.errors import ConfigurationError
from ..util.rng import SeededRng
from .clock import EventQueue
from .network import Network

__all__ = ["CrashPlan", "FailureInjector"]


@dataclass(frozen=True)
class CrashPlan:
    """A single planned crash: which process, and when."""

    process_id: str
    time: float


class FailureInjector:
    """Schedules and tracks crash failures on a network."""

    def __init__(
        self,
        events: EventQueue,
        network: Network,
        server_ids: Sequence[str],
        max_server_faults: int,
    ) -> None:
        if max_server_faults < 0 or max_server_faults >= len(server_ids):
            raise ConfigurationError(
                f"t={max_server_faults} invalid for S={len(server_ids)}"
            )
        self.events = events
        self.network = network
        self.server_ids = list(server_ids)
        self.max_server_faults = max_server_faults
        self.crashed_servers: Set[str] = set()
        self.crashed_clients: Set[str] = set()
        self.plans: List[CrashPlan] = []

    def schedule_crash(self, process_id: str, time: float) -> CrashPlan:
        """Plan a crash of ``process_id`` at virtual time ``time``."""
        if process_id in self.server_ids:
            planned_servers = {
                p.process_id for p in self.plans if p.process_id in self.server_ids
            }
            planned_servers.add(process_id)
            if len(planned_servers | self.crashed_servers) > self.max_server_faults:
                raise ConfigurationError(
                    f"crashing {process_id} would exceed the fault budget t="
                    f"{self.max_server_faults}"
                )
        plan = CrashPlan(process_id, time)
        self.plans.append(plan)
        self.events.schedule_at(time, lambda: self._crash_now(process_id),
                                label=f"crash:{process_id}")
        return plan

    def schedule_random_server_crashes(
        self, count: int, horizon: float, rng: SeededRng
    ) -> List[CrashPlan]:
        """Crash ``count`` random distinct servers at random times in [0, horizon]."""
        if count > self.max_server_faults:
            raise ConfigurationError(
                f"cannot crash {count} servers with fault budget t={self.max_server_faults}"
            )
        victims = rng.sample(self.server_ids, count)
        return [
            self.schedule_crash(victim, rng.uniform(0, horizon)) for victim in victims
        ]

    def _crash_now(self, process_id: str) -> None:
        self.network.crash(process_id)
        if process_id in self.server_ids:
            self.crashed_servers.add(process_id)
        else:
            self.crashed_clients.add(process_id)

    @property
    def remaining_fault_budget(self) -> int:
        return self.max_server_faults - len(self.crashed_servers)
