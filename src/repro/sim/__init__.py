"""Discrete-event simulation substrate for register emulations."""

from .byzantine import (
    ByzantineBehavior,
    ByzantineInjector,
    ByzantineServer,
    Equivocation,
    SilentDrop,
    TagInflation,
    ValueCorruption,
    make_byzantine,
)
from .clock import EventQueue, ScheduledEvent, SimClock
from .client import ClientProcess
from .delays import (
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    GeoDelay,
    PerLinkDelay,
    UniformDelay,
)
from .failures import CrashPlan, FailureInjector
from .messages import Message
from .network import DeliveryRecord, Network, SkipRule
from .process import Process, ServerProcess
from .runtime import Simulation, SimulationResult
from .tracing import HistoryRecorder

__all__ = [
    "ByzantineBehavior",
    "ByzantineInjector",
    "ByzantineServer",
    "Equivocation",
    "SilentDrop",
    "TagInflation",
    "ValueCorruption",
    "make_byzantine",
    "EventQueue",
    "ScheduledEvent",
    "SimClock",
    "ClientProcess",
    "ConstantDelay",
    "DelayModel",
    "ExponentialDelay",
    "GeoDelay",
    "PerLinkDelay",
    "UniformDelay",
    "CrashPlan",
    "FailureInjector",
    "Message",
    "DeliveryRecord",
    "Network",
    "SkipRule",
    "Process",
    "ServerProcess",
    "Simulation",
    "SimulationResult",
    "HistoryRecorder",
]
