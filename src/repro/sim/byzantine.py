"""Byzantine server behaviours for the simulator.

Section 5.2 of the paper notes that impossibility results in the crash model
carry over to the Byzantine model, and that the constructive W2R1 result can
be extended to tolerate Byzantine servers along the lines of DGLV.  To study
that direction the simulator can wrap any server logic in a *Byzantine
behaviour* that corrupts its replies while leaving the protocol code
untouched:

* :class:`ValueCorruption` -- replies carry fabricated values for the tags
  they report.
* :class:`TagInflation` -- replies advertise a fabricated, very large tag, a
  classic attack against "return the largest tag you see" readers.
* :class:`Equivocation` -- replies alternate between the true state and a
  fabricated one, so different clients observe different answers.
* :class:`SilentDrop` -- the server simply never answers (a crash expressed
  as a behaviour, useful for mixing fault types under one budget).

:func:`make_byzantine` wraps an existing :class:`~repro.protocols.base.ServerLogic`;
the :class:`ByzantineInjector` tracks the ``t`` budget exactly like the crash
injector does.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Sequence, Set

from ..core.errors import ConfigurationError
from ..core.timestamps import Tag
from ..protocols.base import ServerLogic
from ..protocols.codec import encode_tag
from .messages import Message

__all__ = [
    "ByzantineBehavior",
    "ValueCorruption",
    "TagInflation",
    "Equivocation",
    "SilentDrop",
    "ByzantineServer",
    "make_byzantine",
    "ByzantineInjector",
]

#: Marker value used by the fabrication behaviours so tests can recognise
#: data that no client ever wrote.
FABRICATED_VALUE = "<byzantine-fabricated>"
FABRICATED_TAG = Tag(10**9, "byz")


class ByzantineBehavior(abc.ABC):
    """Transforms the reply a correct server logic would have produced."""

    @abc.abstractmethod
    def corrupt(self, request: Message, reply: Optional[Message]) -> Optional[Message]:
        """Return the (possibly corrupted) reply to send, or None to stay silent."""

    def describe(self) -> str:
        return type(self).__name__


def _rewrite_payload_values(payload: Dict, value) -> Dict:
    """Replace every value field in a reply payload with a fabricated one."""
    rewritten = dict(payload)
    if "value" in rewritten:
        rewritten["value"] = value
    if "vector" in rewritten:
        rewritten["vector"] = {
            tag: {**entry, "value": value}
            for tag, entry in rewritten["vector"].items()
        }
    return rewritten


class ValueCorruption(ByzantineBehavior):
    """Fabricate the value payloads while keeping tags plausible."""

    def corrupt(self, request: Message, reply: Optional[Message]) -> Optional[Message]:
        if reply is None:
            return None
        reply.payload = _rewrite_payload_values(reply.payload, FABRICATED_VALUE)
        return reply


class TagInflation(ByzantineBehavior):
    """Advertise an absurdly large tag with a fabricated value."""

    def corrupt(self, request: Message, reply: Optional[Message]) -> Optional[Message]:
        if reply is None:
            return None
        payload = dict(reply.payload)
        if "tag" in payload:
            payload["tag"] = encode_tag(FABRICATED_TAG)
            payload["value"] = FABRICATED_VALUE
        if "vector" in payload:
            vector = dict(payload["vector"])
            vector[encode_tag(FABRICATED_TAG)] = {
                "value": FABRICATED_VALUE,
                "updated": ["byz"],
            }
            payload["vector"] = vector
        reply.payload = payload
        return reply


class Equivocation(ByzantineBehavior):
    """Alternate between honest replies and tag-inflated ones per request."""

    def __init__(self) -> None:
        self._count = 0
        self._inflator = TagInflation()

    def corrupt(self, request: Message, reply: Optional[Message]) -> Optional[Message]:
        self._count += 1
        if self._count % 2 == 0:
            return reply
        return self._inflator.corrupt(request, reply)


class SilentDrop(ByzantineBehavior):
    """Never reply (equivalent to a crash, expressed as a behaviour)."""

    def corrupt(self, request: Message, reply: Optional[Message]) -> Optional[Message]:
        return None


class ByzantineServer(ServerLogic):
    """A server logic wrapped with a Byzantine behaviour."""

    def __init__(self, inner: ServerLogic, behavior: ByzantineBehavior) -> None:
        super().__init__(inner.server_id)
        self.inner = inner
        self.behavior = behavior

    def handle(self, message: Message) -> Optional[Message]:
        reply = self.inner.handle(message)
        return self.behavior.corrupt(message, reply)


def make_byzantine(logic: ServerLogic, behavior: ByzantineBehavior) -> ByzantineServer:
    """Wrap a server logic object with a Byzantine behaviour."""
    return ByzantineServer(logic, behavior)


class ByzantineInjector:
    """Tracks which servers are Byzantine, enforcing the ``t`` budget."""

    def __init__(self, server_ids: Sequence[str], max_faults: int) -> None:
        if max_faults < 0 or max_faults >= len(server_ids):
            raise ConfigurationError(
                f"t={max_faults} invalid for S={len(server_ids)}"
            )
        self.server_ids = list(server_ids)
        self.max_faults = max_faults
        self.behaviors: Dict[str, ByzantineBehavior] = {}

    def corrupt(self, server_id: str, behavior: ByzantineBehavior) -> None:
        """Mark a server as Byzantine with the given behaviour."""
        if server_id not in self.server_ids:
            raise ConfigurationError(f"unknown server {server_id}")
        planned = set(self.behaviors) | {server_id}
        if len(planned) > self.max_faults:
            raise ConfigurationError(
                f"corrupting {server_id} would exceed the fault budget t={self.max_faults}"
            )
        self.behaviors[server_id] = behavior

    def wrap(self, server_id: str, logic: ServerLogic) -> ServerLogic:
        """Wrap the logic of a server if it has been marked Byzantine."""
        behavior = self.behaviors.get(server_id)
        if behavior is None:
            return logic
        return make_byzantine(logic, behavior)

    @property
    def corrupted(self) -> Set[str]:
        return set(self.behaviors)
