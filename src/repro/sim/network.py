"""The simulated asynchronous message-passing network.

Processes communicate over bidirectional reliable channels (Fig. 1 of the
paper).  There is no communication among servers and none among clients; the
network itself does not enforce that topology (the protocols simply never use
such links), but the tracer records every message so tests can assert it.

The network supports the scheduling controls the proofs and the fault
injector need:

* per-link **delay models** (see :mod:`repro.sim.delays`);
* **skip rules** -- delay every matching message "a sufficiently long period
  of time (e.g. until the rest of the execution has finished)", which is how
  the paper models a round-trip skipping a server;
* **crash** of a process -- messages to and from it are silently dropped from
  the moment of the crash;
* message **interception hooks** used by the adversarial scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from ..core.errors import SimulationError
from .clock import EventQueue
from .delays import ConstantDelay, DelayModel
from .messages import Message

__all__ = ["SkipRule", "Network", "DeliveryRecord"]

#: Value used to "skip" a message: it is scheduled this far in the future,
#: long after every workload in this library has completed.
SKIP_DELAY = 1e12


@dataclass
class SkipRule:
    """Delays matching messages effectively forever.

    A rule matches a message when every non-None field matches.  ``op_id``
    and ``round_trip`` let the proof engine skip a *specific round-trip of a
    specific operation* on a specific server, which is exactly the primitive
    used in the chain constructions (e.g. "R2 skips the critical server").
    """

    sender: Optional[str] = None
    receiver: Optional[str] = None
    op_id: Optional[str] = None
    round_trip: Optional[int] = None
    kind: Optional[str] = None
    both_directions: bool = True

    def matches(self, message: Message) -> bool:
        if self.op_id is not None and message.op_id != self.op_id:
            return False
        if self.round_trip is not None and message.round_trip != self.round_trip:
            return False
        if self.kind is not None and message.kind != self.kind:
            return False
        direct = (self.sender is None or message.sender == self.sender) and (
            self.receiver is None or message.receiver == self.receiver
        )
        if direct:
            return True
        if self.both_directions:
            reverse = (self.sender is None or message.receiver == self.sender) and (
                self.receiver is None or message.sender == self.receiver
            )
            return reverse
        return False


@dataclass(frozen=True)
class DeliveryRecord:
    """A record of one message transit, kept by the network for tracing."""

    message: Message
    sent_at: float
    delivered_at: Optional[float]
    dropped: bool = False
    skipped: bool = False


class Network:
    """Routes messages between registered processes through the event queue."""

    def __init__(
        self,
        events: EventQueue,
        delay_model: Optional[DelayModel] = None,
    ) -> None:
        self.events = events
        self.delay_model = delay_model if delay_model is not None else ConstantDelay()
        self._handlers: Dict[str, Callable[[Message], None]] = {}
        self._crashed: Set[str] = set()
        self._skip_rules: List[SkipRule] = []
        self._intercept: Optional[Callable[[Message], Optional[float]]] = None
        self.deliveries: List[DeliveryRecord] = []
        self.sent_count = 0
        self.delivered_count = 0

    # -- topology -----------------------------------------------------------

    def register(self, process_id: str, handler: Callable[[Message], None]) -> None:
        """Attach a process; ``handler`` is called for each delivered message."""
        if process_id in self._handlers:
            raise SimulationError(f"process {process_id} already registered")
        self._handlers[process_id] = handler

    def is_registered(self, process_id: str) -> bool:
        return process_id in self._handlers

    # -- failure / adversary controls ----------------------------------------

    def crash(self, process_id: str) -> None:
        """Crash a process: all its future traffic is dropped."""
        self._crashed.add(process_id)

    def recover(self, process_id: str) -> None:
        """Undo a crash (used only by availability experiments)."""
        self._crashed.discard(process_id)

    @property
    def crashed(self) -> Set[str]:
        return set(self._crashed)

    def add_skip_rule(self, rule: SkipRule) -> SkipRule:
        """Install a skip rule; returns it so callers can remove it later."""
        self._skip_rules.append(rule)
        return rule

    def remove_skip_rule(self, rule: SkipRule) -> None:
        self._skip_rules.remove(rule)

    def clear_skip_rules(self) -> None:
        self._skip_rules.clear()

    def set_interceptor(
        self, interceptor: Optional[Callable[[Message], Optional[float]]]
    ) -> None:
        """Install an adversarial interceptor.

        The interceptor sees every message before scheduling and may return a
        delay override (a float), ``None`` to use the delay model, or
        ``float('inf')`` to skip the message entirely.
        """
        self._intercept = interceptor

    # -- sending -------------------------------------------------------------

    def send(self, message: Message) -> None:
        """Send a message; delivery is scheduled according to delays/rules."""
        self.sent_count += 1
        now = self.events.clock.now

        if message.sender in self._crashed or message.receiver in self._crashed:
            self.deliveries.append(
                DeliveryRecord(message, now, None, dropped=True)
            )
            return

        skipped = any(rule.matches(message) for rule in self._skip_rules)
        delay: Optional[float] = None
        if self._intercept is not None:
            override = self._intercept(message)
            if override is not None:
                if override == float("inf"):
                    skipped = True
                else:
                    delay = override
        if delay is None:
            delay = self.delay_model.delay(message.sender, message.receiver)
        if skipped:
            delay = SKIP_DELAY

        record_index = len(self.deliveries)
        self.deliveries.append(
            DeliveryRecord(message, now, None, skipped=skipped)
        )

        def deliver() -> None:
            self._deliver(message, record_index)

        self.events.schedule(delay, deliver, label=f"deliver:{message.kind}")

    def _deliver(self, message: Message, record_index: int) -> None:
        if message.receiver in self._crashed:
            return
        handler = self._handlers.get(message.receiver)
        if handler is None:
            raise SimulationError(f"no process registered as {message.receiver}")
        self.delivered_count += 1
        old = self.deliveries[record_index]
        self.deliveries[record_index] = DeliveryRecord(
            old.message, old.sent_at, self.events.clock.now, skipped=old.skipped
        )
        handler(message)

    # -- introspection --------------------------------------------------------

    def pending_messages(self) -> int:
        """Messages sent but not yet delivered (including skipped ones)."""
        return sum(1 for rec in self.deliveries if rec.delivered_at is None and not rec.dropped)
