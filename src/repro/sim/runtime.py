"""Simulation runtime: binds clock, network, servers, clients and tracing.

:class:`Simulation` builds a full emulation of the paper's system model
(Fig. 1) for any :class:`~repro.protocols.base.RegisterProtocol`:

* ``S`` server processes running the protocol's server logic,
* ``W`` writer and ``R`` reader client processes running the protocol's
  client logic,
* an asynchronous network with a configurable delay model, skip rules and an
  optional adversarial interceptor,
* a crash-failure injector bounded by ``t``,
* a history recorder whose output feeds the atomicity checker.

Operations can be scheduled at explicit virtual times (open-loop) or issued
back-to-back per client (closed-loop); both modes are used by the workload
generators and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..consistency.history import History
from ..core.conditions import SystemParameters
from ..core.errors import ConfigurationError, SimulationError
from ..protocols.base import OperationOutcome, RegisterProtocol
from ..util.ids import client_ids
from .byzantine import ByzantineBehavior, ByzantineInjector
from .clock import EventQueue
from .client import ClientProcess
from .delays import ConstantDelay, DelayModel
from .failures import FailureInjector
from .network import Network, SkipRule
from .process import ServerProcess
from .tracing import HistoryRecorder

__all__ = ["Simulation", "SimulationResult"]


@dataclass
class SimulationResult:
    """What a simulation run produces."""

    history: History
    messages_sent: int
    messages_delivered: int
    virtual_duration: float
    crashed_servers: List[str] = field(default_factory=list)
    outcomes: Dict[str, OperationOutcome] = field(default_factory=dict)


class Simulation:
    """A single-register emulation of the paper's client/server system."""

    def __init__(
        self,
        protocol: RegisterProtocol,
        params: Optional[SystemParameters] = None,
        delay_model: Optional[DelayModel] = None,
        byzantine_behaviors: Optional[Dict[str, "ByzantineBehavior"]] = None,
    ) -> None:
        self.protocol = protocol
        self.params = params or SystemParameters(
            servers=len(protocol.servers),
            writers=protocol.writers,
            readers=protocol.readers,
            max_faults=protocol.max_faults,
        )
        if len(protocol.servers) != self.params.servers:
            raise ConfigurationError(
                "protocol server list does not match system parameters"
            )
        self.events = EventQueue()
        self.network = Network(self.events, delay_model or ConstantDelay())
        self.recorder = HistoryRecorder(self.events.clock)

        # Optional Byzantine fault injection: wrap the chosen servers' logic,
        # enforcing the same t budget as crash failures.
        self.byzantine = ByzantineInjector(protocol.servers, self.params.max_faults)
        for server_id, behavior in (byzantine_behaviors or {}).items():
            self.byzantine.corrupt(server_id, behavior)

        self.server_processes: Dict[str, ServerProcess] = {}
        for server_id in protocol.servers:
            logic = self.byzantine.wrap(server_id, protocol.make_server(server_id))
            process = ServerProcess(server_id, logic)
            process.attach(self.network)
            self.server_processes[server_id] = process

        self.writer_ids = client_ids("w", self.params.writers)
        self.reader_ids = client_ids("r", self.params.readers)
        self.writers: Dict[str, ClientProcess] = {}
        self.readers: Dict[str, ClientProcess] = {}
        for writer_id in self.writer_ids:
            logic = protocol.make_writer(writer_id)
            process = ClientProcess(writer_id, logic, protocol.servers, self.recorder)
            process.attach(self.network)
            self.writers[writer_id] = process
        for reader_id in self.reader_ids:
            logic = protocol.make_reader(reader_id)
            process = ClientProcess(reader_id, logic, protocol.servers, self.recorder)
            process.attach(self.network)
            self.readers[reader_id] = process

        self.failures = FailureInjector(
            self.events, self.network, protocol.servers, self.params.max_faults
        )
        self.outcomes: Dict[str, OperationOutcome] = {}

    # -- convenience accessors ---------------------------------------------------

    @property
    def clock(self):
        return self.events.clock

    def client(self, client_id: str) -> ClientProcess:
        if client_id in self.writers:
            return self.writers[client_id]
        if client_id in self.readers:
            return self.readers[client_id]
        raise KeyError(client_id)

    @property
    def all_clients(self) -> Dict[str, ClientProcess]:
        merged: Dict[str, ClientProcess] = {}
        merged.update(self.writers)
        merged.update(self.readers)
        return merged

    # -- scheduling operations -----------------------------------------------------

    def schedule_write(
        self,
        writer_id: str,
        value: Any,
        at: float,
        on_complete: Optional[Callable[[OperationOutcome], None]] = None,
    ) -> None:
        """Invoke ``write(value)`` on the given writer at virtual time ``at``."""
        client = self.writers[writer_id]
        self.events.schedule_at(
            at,
            lambda: client.invoke_write(value, self._capture(writer_id, on_complete)),
            label=f"invoke-write:{writer_id}",
        )

    def schedule_read(
        self,
        reader_id: str,
        at: float,
        on_complete: Optional[Callable[[OperationOutcome], None]] = None,
    ) -> None:
        """Invoke ``read()`` on the given reader at virtual time ``at``."""
        client = self.readers[reader_id]
        self.events.schedule_at(
            at,
            lambda: client.invoke_read(self._capture(reader_id, on_complete)),
            label=f"invoke-read:{reader_id}",
        )

    def _capture(self, client_id: str, inner):
        def callback(outcome: OperationOutcome) -> None:
            self.outcomes[f"{client_id}#{len(self.outcomes)}"] = outcome
            if inner is not None:
                inner(outcome)

        return callback

    def schedule_closed_loop(
        self,
        client_id: str,
        operations: Sequence[Any],
        start_at: float = 0.0,
        think_time: float = 0.0,
    ) -> None:
        """Issue a sequence of operations back-to-back on one client.

        ``operations`` is a sequence of items: ``("write", value)`` or
        ``("read",)``; each is invoked as soon as the previous one completes
        (plus ``think_time``).
        """
        client = self.client(client_id)
        ops = list(operations)

        def issue(index: int) -> None:
            if index >= len(ops):
                return
            spec = ops[index]

            def next_one(_outcome: OperationOutcome) -> None:
                self.outcomes[f"{client_id}#{len(self.outcomes)}"] = _outcome
                if think_time > 0:
                    self.events.schedule(think_time, lambda: issue(index + 1))
                else:
                    issue(index + 1)

            if spec[0] == "write":
                client.invoke_write(spec[1], next_one)
            elif spec[0] == "read":
                client.invoke_read(next_one)
            else:
                raise SimulationError(f"unknown operation spec {spec!r}")

        self.events.schedule_at(start_at, lambda: issue(0), label=f"closed-loop:{client_id}")

    # -- adversary / failure controls ------------------------------------------------

    def add_skip_rule(self, rule: SkipRule) -> SkipRule:
        return self.network.add_skip_rule(rule)

    def set_interceptor(self, interceptor) -> None:
        self.network.set_interceptor(interceptor)

    def crash_server(self, server_id: str, at: float) -> None:
        self.failures.schedule_crash(server_id, at)

    # -- running ----------------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: int = 2_000_000) -> SimulationResult:
        """Run the simulation to quiescence (or a deadline) and return results."""
        self.events.run(until=until, max_events=max_events)
        history = self.recorder.history()
        return SimulationResult(
            history=history,
            messages_sent=self.network.sent_count,
            messages_delivered=self.network.delivered_count,
            virtual_duration=self.clock.now,
            crashed_servers=sorted(self.failures.crashed_servers),
            outcomes=dict(self.outcomes),
        )
