"""Compatibility shim: the message/frame definitions moved to
:mod:`repro.messages`.

The envelope and every frame helper are transport-neutral -- the simulator,
the asyncio codec, and the sans-I/O :mod:`repro.kvstore.engine` all speak
them -- so they live above :mod:`repro.sim` now.  This module re-exports the
whole surface so historical imports keep working.
"""

from __future__ import annotations

from ..messages import *  # noqa: F401,F403
from ..messages import __all__  # noqa: F401
