"""Message envelopes exchanged over the simulated (and real) network."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["Message"]

_message_counter = itertools.count(1)


@dataclass
class Message:
    """A network message.

    Attributes:
        sender: id of the sending process.
        receiver: id of the destination process.
        kind: message kind, e.g. ``"read"``, ``"write"``, ``"READACK"``,
            ``"WRITEACK"`` (following the names in Algorithms 1 and 2).
        payload: protocol-specific dictionary.
        op_id: the client operation this message belongs to, if any.
        round_trip: 1-based index of the round-trip within the operation.
        msg_id: globally unique message id (assigned automatically).
    """

    sender: str
    receiver: str
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    op_id: Optional[str] = None
    round_trip: int = 0
    msg_id: int = field(default_factory=lambda: next(_message_counter))

    def reply(self, kind: str, payload: Optional[Dict[str, Any]] = None) -> "Message":
        """Construct a reply addressed back to the sender, tagged with the
        same operation id and round-trip index."""
        return Message(
            sender=self.receiver,
            receiver=self.sender,
            kind=kind,
            payload=payload if payload is not None else {},
            op_id=self.op_id,
            round_trip=self.round_trip,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message(#{self.msg_id} {self.sender}->{self.receiver} {self.kind} "
            f"op={self.op_id} rt={self.round_trip})"
        )
