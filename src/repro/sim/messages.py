"""Message envelopes exchanged over the simulated (and real) network.

Besides the plain :class:`Message` envelope this module defines the **batch
frame** used by the sharded key-value store (:mod:`repro.kvstore`): several
sub-requests destined for the same server are packed into one ``"batch"``
message and answered with one ``"batch-ack"``, amortizing per-message
overhead (framing, delivery scheduling, syscalls on the asyncio transport)
across every operation coalesced into the round.

Since the placement layer decoupled shards from replica groups, one group
server multiplexes the per-key registers of *many* shards, so every
sub-request is **shard-tagged**: it names the shard it believes owns its key
and the per-shard epoch it resolved against (:class:`SubRequest`).  Servers
fence requests whose epoch is stale -- the mechanism that makes live
rebalancing (``ShardMap.resize`` / ``move_shard``) safe under concurrent
client load.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

__all__ = [
    "Message",
    "SubRequest",
    "BATCH_KIND",
    "BATCH_ACK_KIND",
    "make_batch",
    "unpack_batch",
    "make_batch_ack",
    "unpack_batch_ack",
]

_message_counter = itertools.count(1)


@dataclass
class Message:
    """A network message.

    Attributes:
        sender: id of the sending process.
        receiver: id of the destination process.
        kind: message kind, e.g. ``"read"``, ``"write"``, ``"READACK"``,
            ``"WRITEACK"`` (following the names in Algorithms 1 and 2).
        payload: protocol-specific dictionary.
        op_id: the client operation this message belongs to, if any.
        round_trip: 1-based index of the round-trip within the operation.
        msg_id: globally unique message id (assigned automatically).
    """

    sender: str
    receiver: str
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    op_id: Optional[str] = None
    round_trip: int = 0
    msg_id: int = field(default_factory=lambda: next(_message_counter))

    def reply(self, kind: str, payload: Optional[Dict[str, Any]] = None) -> "Message":
        """Construct a reply addressed back to the sender, tagged with the
        same operation id and round-trip index."""
        return Message(
            sender=self.receiver,
            receiver=self.sender,
            kind=kind,
            payload=payload if payload is not None else {},
            op_id=self.op_id,
            round_trip=self.round_trip,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message(#{self.msg_id} {self.sender}->{self.receiver} {self.kind} "
            f"op={self.op_id} rt={self.round_trip})"
        )


# -- batch frames (repro.kvstore) ----------------------------------------------

#: Kind of a request frame packing several sub-requests for one server.
BATCH_KIND = "batch"
#: Kind of the reply frame carrying the sub-replies of one batch.
BATCH_ACK_KIND = "batch-ack"


class SubRequest(NamedTuple):
    """One sub-request of a batch frame: a keyed message plus its route tag.

    ``shard`` and ``epoch`` are the client's belief about the key's owner:
    the shard it resolved through its hash ring and that shard's epoch at
    resolution time.  A multiplexed group server fences the sub-request when
    the belief is stale (shard not hosted, or epoch superseded by a resize or
    move), bouncing it back so the client re-resolves.  ``shard=None`` (the
    legacy single-shard form) is never considered fresh by a group server.
    """

    key: str
    message: Message
    shard: Optional[str] = None
    epoch: int = 0


#: What callers may pass to :func:`make_batch`: full route-tagged sub-requests
#: or bare ``(key, message)`` pairs (coerced to untagged :class:`SubRequest`).
SubRequestLike = Union[SubRequest, Tuple[str, Message]]


def _coerce_sub(entry: SubRequestLike) -> SubRequest:
    if isinstance(entry, SubRequest):
        return entry
    key, message = entry
    return SubRequest(key, message)


def _encode_sub(key: str, message: Message) -> Dict[str, Any]:
    return {
        "key": key,
        "sender": message.sender,
        "kind": message.kind,
        "payload": message.payload,
        "op_id": message.op_id,
        "round_trip": message.round_trip,
    }


def _encode_sub_request(sub: SubRequest) -> Dict[str, Any]:
    entry = _encode_sub(sub.key, sub.message)
    if sub.shard is not None:
        entry["shard"] = sub.shard
        entry["epoch"] = sub.epoch
    return entry


def _decode_message(receiver: str, entry: Dict[str, Any]) -> Message:
    return Message(
        sender=entry["sender"],
        receiver=receiver,
        kind=entry["kind"],
        payload=entry.get("payload", {}),
        op_id=entry.get("op_id"),
        round_trip=entry.get("round_trip", 0),
    )


def _decode_sub(receiver: str, entry: Dict[str, Any]) -> SubRequest:
    return SubRequest(
        key=entry["key"],
        message=_decode_message(receiver, entry),
        shard=entry.get("shard"),
        epoch=entry.get("epoch", 0),
    )


def make_batch(
    sender: str, receiver: str, sub_messages: Sequence[SubRequestLike]
) -> Message:
    """Pack sub-requests into one batch frame for ``receiver``.

    Each sub-message keeps its own ``op_id``/``round_trip`` so replies can be
    routed back to the operation that issued it; the ``key`` names the
    register the sub-message addresses and the optional ``shard``/``epoch``
    tag names the owning shard the client resolved (see :class:`SubRequest`).
    """
    if not sub_messages:
        raise ValueError("a batch frame must contain at least one sub-message")
    return Message(
        sender=sender,
        receiver=receiver,
        kind=BATCH_KIND,
        payload={
            "ops": [_encode_sub_request(_coerce_sub(sub)) for sub in sub_messages]
        },
    )


def unpack_batch(message: Message) -> List[SubRequest]:
    """Inverse of :func:`make_batch`: the route-tagged sub-requests."""
    if message.kind != BATCH_KIND:
        raise ValueError(f"not a batch frame: kind={message.kind!r}")
    return [_decode_sub(message.receiver, entry) for entry in message.payload["ops"]]


def make_batch_ack(
    request: Message, sub_replies: Sequence[Tuple[str, Optional[Message]]]
) -> Message:
    """Pack the per-sub-request replies of one batch into one ack frame.

    ``sub_replies`` pairs each key with the reply the per-key server logic
    produced (``None`` entries -- a logic that chose not to reply -- are
    preserved positionally as ``null`` so the client can account for them).
    """
    entries: List[Optional[Dict[str, Any]]] = []
    for key, reply in sub_replies:
        entries.append(None if reply is None else _encode_sub(key, reply))
    return Message(
        sender=request.receiver,
        receiver=request.sender,
        kind=BATCH_ACK_KIND,
        payload={"acks": entries},
        op_id=request.op_id,
        round_trip=request.round_trip,
    )


def unpack_batch_ack(message: Message) -> List[Tuple[str, Optional[Message]]]:
    """Inverse of :func:`make_batch_ack`: ``(key, sub-reply | None)`` pairs."""
    if message.kind != BATCH_ACK_KIND:
        raise ValueError(f"not a batch ack frame: kind={message.kind!r}")
    pairs: List[Tuple[str, Optional[Message]]] = []
    for entry in message.payload["acks"]:
        if entry is None:
            pairs.append(("", None))
        else:
            pairs.append((entry["key"], _decode_message(message.receiver, entry)))
    return pairs
