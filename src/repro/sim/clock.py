"""Discrete global clock and event queue.

The paper's system model assumes "the existence of a discrete global clock,
but the processes cannot access the global clock" (Section 2.1).  The
simulator realizes exactly that: a single virtual clock drives all events in
timestamp order, while protocol code never reads it -- only the tracer and
the history checker do.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..core.errors import SimulationError

__all__ = ["ScheduledEvent", "EventQueue", "SimClock"]


@dataclass(order=True)
class ScheduledEvent:
    """An event scheduled on the virtual clock.

    Ordering is by ``(time, sequence)`` so that simultaneous events fire in
    the order they were scheduled -- this keeps executions deterministic.
    """

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the event from firing when its time comes."""
        self.cancelled = True


class SimClock:
    """The read-only face of the simulation clock."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def _advance(self, time: float) -> None:
        if time < self._now:
            raise SimulationError(
                f"clock cannot move backwards (now={self._now}, target={time})"
            )
        self._now = time


class EventQueue:
    """A priority queue of :class:`ScheduledEvent` driving the simulation."""

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: List[ScheduledEvent] = []
        self._sequence = itertools.count()
        self._running = False

    @property
    def running(self) -> bool:
        """True while :meth:`run` is on the stack.

        Lets code that may be called either from quiescence or from inside
        an event handler (e.g. a live resize) decide whether it must pump
        the queue itself or can rely on the already-running loop.
        """
        return self._running

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    @property
    def empty(self) -> bool:
        return len(self) == 0

    def schedule(
        self, delay: float, action: Callable[[], None], label: str = ""
    ) -> ScheduledEvent:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        event = ScheduledEvent(
            time=self.clock.now + delay,
            sequence=next(self._sequence),
            action=action,
            label=label,
        )
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(
        self, time: float, action: Callable[[], None], label: str = ""
    ) -> ScheduledEvent:
        """Schedule ``action`` at an absolute virtual time."""
        return self.schedule(time - self.clock.now, action, label)

    def pop(self) -> Optional[ScheduledEvent]:
        """Remove and return the next non-cancelled event, advancing the clock."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock._advance(event.time)
            return event
        return None

    def run(self, until: Optional[float] = None, max_events: int = 1_000_000) -> int:
        """Run events until the queue is empty, a deadline, or an event cap.

        Returns the number of events executed.  The event cap guards against
        accidental livelock in protocol code.
        """
        executed = 0
        was_running, self._running = self._running, True
        try:
            while True:
                if executed >= max_events:
                    raise SimulationError(
                        f"event cap of {max_events} exceeded; likely livelock"
                    )
                if until is not None and self._peek_time() is not None:
                    if self._peek_time() > until:
                        break
                event = self.pop()
                if event is None:
                    break
                event.action()
                executed += 1
        finally:
            self._running = was_running
        return executed

    def _peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
