"""Simulated client processes that drive protocol operation generators.

A :class:`ClientProcess` owns one :class:`~repro.protocols.base.ClientLogic`
instance and executes its read/write generators over the simulated network:
each yielded :class:`~repro.protocols.base.Broadcast` becomes one round-trip
(a message to every server, resumed once ``S - t`` replies -- or the
broadcast's own threshold -- have arrived).  Replies for past round-trips and
replies beyond the threshold are ignored, exactly as in the quorum protocols
the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from ..core.errors import ProtocolError
from ..core.operations import OpKind, new_op_id
from ..protocols.base import Broadcast, ClientLogic, OperationOutcome
from .messages import Message
from .process import Process
from .tracing import HistoryRecorder

__all__ = ["ClientProcess", "PendingOperation"]


@dataclass
class PendingOperation:
    """Book-keeping for the operation a client is currently executing."""

    op_id: str
    kind: OpKind
    generator: Any
    round_trip: int = 0
    wait_for: int = 0
    replies: List[Message] = field(default_factory=list)
    responded: bool = False
    on_complete: Optional[Callable[[OperationOutcome], None]] = None


class ClientProcess(Process):
    """A reader or writer client attached to the simulated network."""

    def __init__(
        self,
        client_id: str,
        logic: ClientLogic,
        servers: Sequence[str],
        recorder: HistoryRecorder,
    ) -> None:
        super().__init__(client_id)
        self.logic = logic
        self.servers = list(servers)
        self.recorder = recorder
        self.current: Optional[PendingOperation] = None
        self.completed_operations: int = 0
        #: Operations invoked while another one is in flight are queued and
        #: issued as soon as the current one completes, so that each client's
        #: history stays sequential (well-formed) regardless of how densely a
        #: workload schedules invocations.
        self._backlog: List[tuple] = []

    # -- invoking operations ---------------------------------------------------

    @property
    def busy(self) -> bool:
        return self.current is not None

    def invoke_write(
        self, value: Any, on_complete: Optional[Callable[[OperationOutcome], None]] = None
    ) -> str:
        """Invoke ``write(value)``; returns the operation id."""
        return self._invoke(OpKind.WRITE, self.logic.write_protocol(value), value,
                            on_complete)

    def invoke_read(
        self, on_complete: Optional[Callable[[OperationOutcome], None]] = None
    ) -> str:
        """Invoke ``read()``; returns the operation id."""
        return self._invoke(OpKind.READ, self.logic.read_protocol(), None, on_complete)

    def _invoke(self, kind, generator, value, on_complete) -> str:
        if self.current is not None:
            op_id = new_op_id(f"{self.process_id}-{kind.value}")
            self._backlog.append((op_id, kind, generator, value, on_complete))
            return op_id
        op_id = new_op_id(f"{self.process_id}-{kind.value}")
        self.recorder.record_invocation(op_id, self.process_id, kind, value=value)
        pending = PendingOperation(
            op_id=op_id, kind=kind, generator=generator, on_complete=on_complete
        )
        self.current = pending
        self._advance(pending, first=True)
        return op_id

    # -- driving the generator --------------------------------------------------

    def _advance(self, pending: PendingOperation, first: bool = False) -> None:
        try:
            if first:
                request = next(pending.generator)
            else:
                request = pending.generator.send(list(pending.replies))
        except StopIteration as stop:
            self._complete(pending, stop.value)
            return
        if not isinstance(request, Broadcast):
            raise ProtocolError("client generators must yield Broadcast objects")
        pending.round_trip += 1
        pending.replies = []
        default_quorum = len(self.servers) - self.logic.max_faults
        pending.wait_for = (
            request.wait_for if request.wait_for is not None else default_quorum
        )
        for server_id in self.servers:
            self.send(
                Message(
                    sender=self.process_id,
                    receiver=server_id,
                    kind=request.kind,
                    payload=request.payload_for(server_id),
                    op_id=pending.op_id,
                    round_trip=pending.round_trip,
                )
            )

    def _complete(self, pending: PendingOperation, outcome: OperationOutcome) -> None:
        if not isinstance(outcome, OperationOutcome):
            raise ProtocolError("operation generator must return an OperationOutcome")
        pending.responded = True
        self.recorder.record_response(
            pending.op_id,
            value=outcome.value,
            tag=outcome.tag,
            round_trips=pending.round_trip,
            metadata=outcome.metadata,
        )
        self.current = None
        self.completed_operations += 1
        if pending.on_complete is not None:
            pending.on_complete(outcome)
        if self.current is None and self._backlog:
            op_id, kind, generator, value, on_complete = self._backlog.pop(0)
            self.recorder.record_invocation(op_id, self.process_id, kind, value=value)
            queued = PendingOperation(
                op_id=op_id, kind=kind, generator=generator, on_complete=on_complete
            )
            self.current = queued
            self._advance(queued, first=True)

    # -- network events ----------------------------------------------------------

    def on_message(self, message: Message) -> None:
        pending = self.current
        if pending is None or pending.responded:
            return
        if message.op_id != pending.op_id or message.round_trip != pending.round_trip:
            # A straggler reply from a previous round-trip or operation.
            return
        pending.replies.append(message)
        if len(pending.replies) >= pending.wait_for:
            self._advance(pending)
