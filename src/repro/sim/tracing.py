"""Execution tracing: recording invocation/response events and operations.

The tracer is the only component that reads the global clock; protocol code
never does, matching the system model (processes cannot access the global
clock).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..consistency.history import History
from ..core.operations import Event, EventKind, Operation, OpKind
from ..core.timestamps import Tag
from .clock import SimClock

__all__ = ["HistoryRecorder"]


class HistoryRecorder:
    """Collects operations as clients invoke and complete them."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._operations: Dict[str, Operation] = {}
        self._events: List[Event] = []
        self._order: List[str] = []

    def record_invocation(
        self,
        op_id: str,
        client: str,
        kind: OpKind,
        value: Any = None,
        tag: Optional[Tag] = None,
    ) -> Operation:
        now = self._clock.now
        operation = Operation(
            op_id=op_id, client=client, kind=kind, start=now, value=value, tag=tag
        )
        self._operations[op_id] = operation
        self._order.append(op_id)
        self._events.append(
            Event(EventKind.INVOCATION, kind, op_id, client, now, value, tag)
        )
        return operation

    def record_response(
        self,
        op_id: str,
        value: Any = None,
        tag: Optional[Tag] = None,
        round_trips: int = 0,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> Operation:
        operation = self._operations[op_id]
        now = self._clock.now
        operation.finish = now
        operation.round_trips = round_trips
        if metadata:
            operation.metadata.update(metadata)
        if operation.is_read:
            operation.value = value
            operation.tag = tag
        elif tag is not None:
            operation.tag = tag
        self._events.append(
            Event(
                EventKind.RESPONSE,
                operation.kind,
                op_id,
                operation.client,
                now,
                value if operation.is_read else operation.value,
                operation.tag,
            )
        )
        return operation

    @property
    def events(self) -> List[Event]:
        return list(self._events)

    def history(self) -> History:
        """The history of all recorded operations, in invocation order."""
        return History([self._operations[op_id] for op_id in self._order])
