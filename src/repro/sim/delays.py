"""Message delay models for the simulated network.

Delays decide the interleavings the protocols see; the paper's proofs rely on
an *asynchronous* network where the adversary may delay any message
arbitrarily (up to "skipping" a server by delaying its messages past the end
of the execution).  The benchmark harness instead uses distributions that
mimic LAN / WAN round-trip times so that the one-vs-two-round-trip latency
difference the paper motivates shows up in wall-clock numbers.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Tuple

from ..util.rng import SeededRng

__all__ = [
    "DelayModel",
    "ConstantDelay",
    "UniformDelay",
    "ExponentialDelay",
    "PerLinkDelay",
    "GeoDelay",
]


class DelayModel(abc.ABC):
    """Computes the one-way delay of a message from ``src`` to ``dst``."""

    @abc.abstractmethod
    def delay(self, src: str, dst: str) -> float:
        """One-way latency for the next message on this link."""


@dataclass
class ConstantDelay(DelayModel):
    """Every message takes exactly ``value`` time units (default 1.0)."""

    value: float = 1.0

    def delay(self, src: str, dst: str) -> float:
        return self.value


class UniformDelay(DelayModel):
    """Delays drawn uniformly from ``[low, high]`` with a seeded RNG."""

    def __init__(self, low: float = 0.5, high: float = 1.5, seed: int = 0) -> None:
        if low < 0 or high < low:
            raise ValueError("need 0 <= low <= high")
        self.low = low
        self.high = high
        self._rng = SeededRng(seed)

    def delay(self, src: str, dst: str) -> float:
        return self._rng.uniform(self.low, self.high)


class ExponentialDelay(DelayModel):
    """Exponentially distributed delays with the given mean, plus a floor."""

    def __init__(self, mean: float = 1.0, floor: float = 0.05, seed: int = 0) -> None:
        if mean <= 0:
            raise ValueError("mean must be positive")
        self.mean = mean
        self.floor = floor
        self._rng = SeededRng(seed)

    def delay(self, src: str, dst: str) -> float:
        return self.floor + self._rng.expovariate(1.0 / self.mean)


class PerLinkDelay(DelayModel):
    """A fixed base delay per (src, dst) link, with optional jitter."""

    def __init__(
        self,
        base: Dict[Tuple[str, str], float],
        default: float = 1.0,
        jitter: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.base = dict(base)
        self.default = default
        self.jitter = jitter
        self._rng = SeededRng(seed)

    def delay(self, src: str, dst: str) -> float:
        base = self.base.get((src, dst), self.default)
        if self.jitter <= 0:
            return base
        return base + self._rng.uniform(0, self.jitter)


class GeoDelay(DelayModel):
    """A geo-replication-like delay model.

    Each process is assigned to a *site*; intra-site messages take
    ``local_delay`` and inter-site messages take ``wan_delay`` (both with a
    configurable jitter fraction).  This models the deployment the paper's
    introduction motivates, where clients read from nearby replicas.
    """

    def __init__(
        self,
        sites: Dict[str, str],
        local_delay: float = 0.5,
        wan_delay: float = 40.0,
        jitter_fraction: float = 0.1,
        seed: int = 0,
    ) -> None:
        self.sites = dict(sites)
        self.local_delay = local_delay
        self.wan_delay = wan_delay
        self.jitter_fraction = jitter_fraction
        self._rng = SeededRng(seed)

    def delay(self, src: str, dst: str) -> float:
        same_site = self.sites.get(src) == self.sites.get(dst)
        base = self.local_delay if same_site else self.wan_delay
        if self.jitter_fraction <= 0:
            return base
        return base * self._rng.uniform(1.0, 1.0 + self.jitter_fraction)
