"""Quantifying *how much* atomicity is violated (the paper's future work).

The paper's conclusion sketches the next step of this research line: "fix
fast implementations in the first place, and then quantify how much data
inconsistency will be introduced when strictly guaranteeing atomicity is
impossible".  The authors' companion work on probabilistically-atomic
2-atomicity (Wei et al., reference [28]) measures exactly this for W1R2-style
fast protocols.

This module implements those metrics over the histories our simulator
produces, so the benchmarks can report not only *whether* the fast candidates
violate atomicity but *by how much*:

* **Version staleness** of a read: how many writes were *missed* -- a write
  ``w`` is missed when it completed before the read started, yet the value
  the read returned was written by a write that had already finished before
  ``w`` even started (i.e. the returned data is strictly older, in real
  time, than a value the client was guaranteed to be able to see).  A
  history is k-atomic in this sense when no read misses more than ``k - 1``
  writes; atomic histories are 1-atomic (zero misses).
* **Time staleness**: how long before the read's invocation the oldest
  missed write had completed (how out-of-date the returned data is in clock
  terms).
* **Inversion count**: the number of ordered read pairs (r1 before r2, any
  clients) where the later read returned a value strictly older, in real
  time, than the earlier read's -- the paper's new/old inversions.

The metrics are defined purely over real-time order, *not* over tag order:
the broken fast-write candidates corrupt the tag order (that is exactly
their bug), so tag-based staleness would under-report their inconsistency.
They complement, not replace, the sound-and-complete checker in
:mod:`repro.consistency.register_checker`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.operations import Operation
from ..core.timestamps import BOTTOM_TAG, Tag
from .history import History

__all__ = ["ReadStaleness", "StalenessReport", "measure_staleness"]


@dataclass(frozen=True)
class ReadStaleness:
    """Staleness of one read operation."""

    op_id: str
    client: str
    returned_tag: Tag
    version_lag: int
    time_lag: float

    @property
    def is_fresh(self) -> bool:
        """True when the read returned the newest completed-before-it value."""
        return self.version_lag == 0


@dataclass
class StalenessReport:
    """Aggregate inconsistency metrics of one history."""

    reads: List[ReadStaleness] = field(default_factory=list)
    inversions: int = 0

    @property
    def read_count(self) -> int:
        return len(self.reads)

    @property
    def stale_read_count(self) -> int:
        return sum(1 for read in self.reads if not read.is_fresh)

    @property
    def stale_read_fraction(self) -> float:
        if not self.reads:
            return 0.0
        return self.stale_read_count / len(self.reads)

    @property
    def max_version_lag(self) -> int:
        return max((read.version_lag for read in self.reads), default=0)

    @property
    def mean_version_lag(self) -> float:
        if not self.reads:
            return 0.0
        return sum(read.version_lag for read in self.reads) / len(self.reads)

    @property
    def max_time_lag(self) -> float:
        return max((read.time_lag for read in self.reads), default=0.0)

    def k_atomicity(self) -> int:
        """The smallest k such that the history is k-atomic (read-staleness sense).

        Every read returns one of the ``k`` newest values whose writes
        completed before the read started; an atomic history has k = 1.
        Returns 1 for histories without reads.
        """
        return max(self.max_version_lag + 1, 1)

    def summary(self) -> str:
        return (
            f"{self.read_count} reads: {self.stale_read_count} stale "
            f"({self.stale_read_fraction:.1%}), k-atomicity={self.k_atomicity()}, "
            f"max version lag={self.max_version_lag}, "
            f"inversions={self.inversions}"
        )


def _completed_writes_before(history: History, moment: float) -> List[Operation]:
    """Writes whose response precedes ``moment``."""
    return [
        op
        for op in history.writes
        if op.finish is not None and op.finish < moment and op.tag is not None
    ]


def _strictly_older(candidate: Optional[Operation], other: Operation) -> bool:
    """Whether ``candidate`` finished before ``other`` started (real time).

    ``candidate is None`` models the initial value, which is older than every
    write.
    """
    if candidate is None:
        return True
    if candidate.finish is None:
        return False
    return candidate.finish < other.start


def measure_staleness(history: History) -> StalenessReport:
    """Compute version/time staleness and inversion counts for a history.

    Reads without a tag are skipped.  A read's returned write is resolved by
    tag; reads of the initial value resolve to "no write", which counts as
    strictly older than every write.
    """
    report = StalenessReport()
    writes_by_tag: Dict[Tag, Operation] = {
        op.tag: op for op in history.writes if op.tag is not None
    }

    for read in history.reads:
        if not read.is_complete or read.tag is None:
            continue
        returned_write = writes_by_tag.get(read.tag)
        if read.tag != BOTTOM_TAG and returned_write is None:
            # Read-from-nowhere: no sensible staleness value; count it as
            # maximally stale against every completed preceding write.
            returned_write = None
        completed = _completed_writes_before(history, read.start)
        missed = [
            op
            for op in completed
            if op.tag != read.tag and _strictly_older(returned_write, op)
        ]
        version_lag = len(missed)
        if version_lag == 0:
            time_lag = 0.0
        else:
            earliest_missed = min(op.finish for op in missed)
            time_lag = max(0.0, read.start - earliest_missed)
        report.reads.append(
            ReadStaleness(
                op_id=read.op_id,
                client=read.client,
                returned_tag=read.tag,
                version_lag=version_lag,
                time_lag=time_lag,
            )
        )

    completed_reads = [
        op for op in history.reads if op.is_complete and op.tag is not None
    ]
    for first in completed_reads:
        for second in completed_reads:
            if first is second or not first.precedes(second):
                continue
            if first.tag == second.tag:
                continue
            first_write = writes_by_tag.get(first.tag)
            second_write = (
                writes_by_tag.get(second.tag) if second.tag != BOTTOM_TAG else None
            )
            if first_write is None and first.tag != BOTTOM_TAG:
                continue
            if first.tag == BOTTOM_TAG:
                continue
            # Inversion: the later read's value is strictly older (real time)
            # than the earlier read's value.
            if _strictly_older(second_write, first_write):
                report.inversions += 1
    return report
