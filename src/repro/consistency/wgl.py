"""Exhaustive linearizability checking (Wing & Gong style, with pruning).

This checker decides linearizability of a register history against the
sequential register specification by searching over all ways to order
concurrent operations, with the standard Wing-Gong/Lowe optimisations:

* only *minimal* operations (those not real-time-preceded by another pending
  operation) may be linearized next;
* memoisation on the pair (set of linearized operations, current register
  value) prunes re-explored states.

It makes **no uniqueness assumption** about written values, so it serves as
the ground truth the fast cluster-based checker is validated against in the
test suite.  Its running time is exponential in the number of overlapping
operations, so use it only on small histories (tens of operations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Set, Tuple

from ..core.operations import Operation
from .history import History

__all__ = ["WGLResult", "check_linearizable_exhaustive"]


@dataclass
class WGLResult:
    """Outcome of the exhaustive search."""

    atomic: bool
    linearization: Optional[List[Operation]] = None
    states_explored: int = 0


def _value_key(value) -> str:
    """Normalize values for use in memoisation keys."""
    return repr(value)


def check_linearizable_exhaustive(
    history: History,
    initial_value=None,
    max_states: int = 2_000_000,
) -> WGLResult:
    """Search for a linearization of ``history`` against register semantics.

    Pending reads are dropped; pending writes are considered optional -- the
    search may linearize them or leave them out entirely (modelling a crash
    before the write took effect).

    Raises ``RuntimeError`` when ``max_states`` is exceeded, so callers never
    mistake a timeout for a verdict.
    """
    completed: List[Operation] = []
    optional: List[Operation] = []
    for op in history.operations:
        if op.is_complete:
            completed.append(op)
        elif op.is_write:
            optional.append(op)

    operations = completed + optional
    optional_ids = {op.op_id for op in optional}
    index = {op.op_id: i for i, op in enumerate(operations)}
    n = len(operations)

    # Precompute real-time predecessors: op can be linearized only after all
    # operations that precede it have been linearized.
    predecessors: List[Set[int]] = [set() for _ in range(n)]
    for i, a in enumerate(operations):
        for j, b in enumerate(operations):
            if i != j and a.precedes(b):
                predecessors[j].add(i)

    seen: Set[Tuple[FrozenSet[int], str]] = set()
    states = 0

    def search(done: FrozenSet[int], value, sequence: List[int]) -> Optional[List[int]]:
        nonlocal states
        states += 1
        if states > max_states:
            raise RuntimeError("WGL search exceeded max_states; history too large")
        if len(done) == n:
            return list(sequence)
        key = (done, _value_key(value))
        if key in seen:
            return None
        seen.add(key)

        # Option: declare remaining optional (pending, unlinearized) writes as
        # never-taking-effect, but only if every remaining op is optional.
        remaining = [i for i in range(n) if i not in done]
        if all(operations[i].op_id in optional_ids for i in remaining):
            return list(sequence)

        for i in remaining:
            if not predecessors[i] <= done:
                continue
            op = operations[i]
            if op.is_read:
                if not _values_equal(op.value, value):
                    continue
                result = search(done | {i}, value, sequence + [i])
            else:
                result = search(done | {i}, op.value, sequence + [i])
            if result is not None:
                return result
        return None

    sequence = search(frozenset(), initial_value, [])
    if sequence is None:
        return WGLResult(False, None, states)
    return WGLResult(True, [operations[i] for i in sequence], states)


def _values_equal(a, b) -> bool:
    if a is None and b is None:
        return True
    return a == b
