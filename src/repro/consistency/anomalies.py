"""Classification of atomicity violations.

When a history is not atomic, reporting *why* matters for the experiments:
Table 1 and the Fig. 9 sweep do not just need a yes/no verdict, they need to
show that the violations produced by "too fast" protocols are exactly the
kinds the impossibility arguments predict (stale reads and new/old
inversions between the two readers).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.operations import Operation

__all__ = ["AnomalyKind", "Anomaly", "AnomalyReport"]


class AnomalyKind(enum.Enum):
    """Kinds of non-atomic behaviour a register history can exhibit."""

    #: A read returned a value that no write in the history wrote.
    READ_FROM_NOWHERE = "read-from-nowhere"
    #: A read finished before the write of the value it returned started.
    READ_FROM_FUTURE = "read-from-future"
    #: A read returned a value although a strictly newer write finished
    #: before the read started (the value was already overwritten).
    STALE_READ = "stale-read"
    #: Two non-concurrent reads observed values in an order contradicting the
    #: order of the corresponding writes ("new/old inversion").
    NEW_OLD_INVERSION = "new-old-inversion"
    #: Writes and reads impose cyclic ordering constraints that do not reduce
    #: to one of the specific patterns above.
    ORDERING_CYCLE = "ordering-cycle"


@dataclass(frozen=True)
class Anomaly:
    """One concrete violation witness."""

    kind: AnomalyKind
    description: str
    operations: tuple

    @staticmethod
    def of(kind: AnomalyKind, description: str, *operations: Operation) -> "Anomaly":
        return Anomaly(kind, description, tuple(operations))


@dataclass
class AnomalyReport:
    """All anomalies found in one history."""

    anomalies: List[Anomaly] = field(default_factory=list)

    def add(self, anomaly: Anomaly) -> None:
        self.anomalies.append(anomaly)

    def extend(self, anomalies: Sequence[Anomaly]) -> None:
        self.anomalies.extend(anomalies)

    @property
    def is_clean(self) -> bool:
        return not self.anomalies

    def count(self, kind: Optional[AnomalyKind] = None) -> int:
        if kind is None:
            return len(self.anomalies)
        return sum(1 for a in self.anomalies if a.kind is kind)

    def kinds(self) -> List[AnomalyKind]:
        return sorted({a.kind for a in self.anomalies}, key=lambda k: k.value)

    def summary(self) -> str:
        if self.is_clean:
            return "no anomalies"
        parts = [f"{self.count(kind)}x {kind.value}" for kind in self.kinds()]
        return ", ".join(parts)
