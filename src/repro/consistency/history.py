"""Histories of register operations.

A *history* (the paper calls it an execution of the clients, Section 2.1) is
the sequence of invocation and response events observed at the global clock.
The atomicity checker, the anomaly classifier and the benchmark reporters all
consume this type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.operations import Event, EventKind, Operation, OpKind
from ..core.timestamps import Tag

__all__ = ["History"]


@dataclass
class History:
    """A collection of operations with real-time ordering information."""

    operations: List[Operation] = field(default_factory=list)

    # -- construction ---------------------------------------------------------

    def add(self, operation: Operation) -> None:
        self.operations.append(operation)

    @classmethod
    def from_operations(cls, operations: Iterable[Operation]) -> "History":
        return cls(list(operations))

    @classmethod
    def from_events(cls, events: Sequence[Event]) -> "History":
        """Reconstruct operations from a flat event stream."""
        pending: Dict[str, Operation] = {}
        history = cls()
        for event in sorted(events, key=lambda e: e.time):
            if event.kind is EventKind.INVOCATION:
                op = Operation(
                    op_id=event.op_id,
                    client=event.client,
                    kind=event.op_kind,
                    start=event.time,
                    value=event.value,
                    tag=event.tag,
                )
                pending[event.op_id] = op
                history.add(op)
            else:
                op = pending.get(event.op_id)
                if op is None:
                    raise ValueError(f"response without invocation: {event.op_id}")
                op.finish = event.time
                if event.op_kind is OpKind.READ:
                    op.value = event.value
                    op.tag = event.tag
        return history

    # -- basic queries --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    @property
    def reads(self) -> List[Operation]:
        return [op for op in self.operations if op.is_read]

    @property
    def writes(self) -> List[Operation]:
        return [op for op in self.operations if op.is_write]

    @property
    def complete_operations(self) -> List[Operation]:
        return [op for op in self.operations if op.is_complete]

    @property
    def pending_operations(self) -> List[Operation]:
        return [op for op in self.operations if not op.is_complete]

    def by_client(self, client: str) -> List[Operation]:
        return [op for op in self.operations if op.client == client]

    def operation(self, op_id: str) -> Operation:
        for op in self.operations:
            if op.op_id == op_id:
                return op
        raise KeyError(op_id)

    def write_for_tag(self, tag: Tag) -> Optional[Operation]:
        """The write operation that produced ``tag``, if present."""
        for op in self.writes:
            if op.tag == tag:
                return op
        return None

    # -- structural checks -----------------------------------------------------

    def is_well_formed(self) -> bool:
        """Each client's sub-history is sequential (no overlapping ops)."""
        clients: Dict[str, List[Operation]] = {}
        for op in self.operations:
            clients.setdefault(op.client, []).append(op)
        for ops in clients.values():
            ordered = sorted(ops, key=lambda o: o.start)
            for earlier, later in zip(ordered, ordered[1:]):
                if earlier.finish is None or earlier.finish > later.start:
                    return False
        return True

    def precedes(self, first: Operation, second: Operation) -> bool:
        """Real-time order ``first ≺ second``."""
        return first.precedes(second)

    def concurrent(self, first: Operation, second: Operation) -> bool:
        return first.concurrent_with(second)

    def real_time_pairs(self) -> Iterator[Tuple[Operation, Operation]]:
        """All ordered pairs (a, b) with a ≺ b."""
        for a in self.complete_operations:
            for b in self.operations:
                if a is not b and a.precedes(b):
                    yield a, b

    # -- completion -----------------------------------------------------------

    def completed_only(self) -> "History":
        """A copy restricted to complete operations.

        Pending *writes* are kept (a pending write may have taken effect and
        be observed by readers), pending reads are dropped -- the standard
        history-completion convention for linearizability checking.
        """
        ops: List[Operation] = []
        for op in self.operations:
            if op.is_complete:
                ops.append(op)
            elif op.is_write:
                ops.append(op)
        return History(ops)

    def duration(self) -> float:
        """Virtual/wall-clock span covered by the history."""
        if not self.operations:
            return 0.0
        start = min(op.start for op in self.operations)
        finish = max(
            (op.finish for op in self.operations if op.finish is not None),
            default=start,
        )
        return finish - start

    def round_trip_counts(self) -> Tuple[List[int], List[int]]:
        """Round-trip counts for (writes, reads), for the design-space classifier."""
        writes = [op.round_trips for op in self.writes if op.is_complete]
        reads = [op.round_trips for op in self.reads if op.is_complete]
        return writes, reads
