"""Histories, atomicity checking and anomaly classification."""

from .anomalies import Anomaly, AnomalyKind, AnomalyReport
from .atomicity import AtomicityResult, assert_atomic, check_atomicity
from .history import History
from .register_checker import RegisterCheckResult, check_register_atomicity
from .staleness import ReadStaleness, StalenessReport, measure_staleness
from .wgl import WGLResult, check_linearizable_exhaustive

__all__ = [
    "Anomaly",
    "AnomalyKind",
    "AnomalyReport",
    "AtomicityResult",
    "assert_atomic",
    "check_atomicity",
    "History",
    "RegisterCheckResult",
    "check_register_atomicity",
    "ReadStaleness",
    "StalenessReport",
    "measure_staleness",
    "WGLResult",
    "check_linearizable_exhaustive",
]
