"""Polynomial-time atomicity checking for register histories with unique writes.

The histories our protocols produce have the property that every write is
identified by a unique ``(ts, wid)`` tag and every read reports the tag of the
value it returned.  Under that assumption (distinct written values), register
linearizability can be decided in polynomial time by the classical
*cluster ordering* argument (Gibbons & Korach; also Lemma 13.16 of Lynch):

* group each write together with the reads that returned its value into a
  **cluster**;
* in any atomic permutation the operations of one cluster occupy a contiguous
  block (all reads of value ``v`` must lie between ``write(v)`` and the next
  write in the permutation);
* therefore a history is atomic **iff**

  1. every read returns a value actually written (or the initial value),
  2. no read of ``v`` precedes ``write(v)`` in real time, and
  3. the digraph over clusters with an edge ``u -> v`` whenever some
     operation of cluster ``u`` precedes (in real time) some operation of
     cluster ``v`` is acyclic.

The checker reports concrete anomaly witnesses (stale reads, new/old
inversions, ...) when the history is not atomic, and an explicit
linearization (a valid permutation) when it is.  The exhaustive
Wing-Gong-style checker in :mod:`repro.consistency.wgl` is used by the test
suite to cross-validate this implementation on small histories.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.operations import Operation
from ..core.timestamps import BOTTOM_TAG, Tag
from .anomalies import Anomaly, AnomalyKind, AnomalyReport
from .history import History

__all__ = ["RegisterCheckResult", "check_register_atomicity"]


@dataclass
class RegisterCheckResult:
    """Outcome of the cluster-based atomicity check."""

    atomic: bool
    report: AnomalyReport
    linearization: Optional[List[Operation]] = None
    cluster_order: Optional[List[Tag]] = None

    @property
    def anomalies(self) -> List[Anomaly]:
        return self.report.anomalies


def _prepare(history: History) -> Tuple[List[Operation], AnomalyReport]:
    """Completion step: drop pending reads and unread pending writes."""
    report = AnomalyReport()
    read_tags: Set[Tag] = set()
    for op in history.operations:
        if op.is_read and op.is_complete and op.tag is not None:
            read_tags.add(op.tag)

    prepared: List[Operation] = []
    for op in history.operations:
        if op.is_complete:
            prepared.append(op)
        elif op.is_write and op.tag is not None and op.tag in read_tags:
            # A pending write whose value was observed must be retained: it
            # has taken effect.  It is treated as finishing at +infinity.
            prepared.append(op)
    return prepared, report


def _cluster_of(op: Operation) -> Tag:
    return op.tag if op.tag is not None else BOTTOM_TAG


def check_register_atomicity(history: History) -> RegisterCheckResult:
    """Decide atomicity of a register history with uniquely tagged writes.

    Requirements on the input: every completed write and read carries a
    ``tag``; writes carry pairwise distinct tags.  Violations of those
    requirements are reported as anomalies (never silently ignored).
    """
    operations, report = _prepare(history)

    writes_by_tag: Dict[Tag, Operation] = {}
    duplicate_writes = False
    for op in operations:
        if op.is_write:
            tag = _cluster_of(op)
            if tag in writes_by_tag:
                duplicate_writes = True
                report.add(
                    Anomaly.of(
                        AnomalyKind.ORDERING_CYCLE,
                        f"two writes share tag {tag}",
                        writes_by_tag[tag],
                        op,
                    )
                )
            writes_by_tag[tag] = op

    # Condition 1: every read returns a written value or the initial value.
    clusters: Dict[Tag, List[Operation]] = defaultdict(list)
    for op in operations:
        tag = _cluster_of(op)
        clusters[tag].append(op)
        if op.is_read and tag != BOTTOM_TAG and tag not in writes_by_tag:
            report.add(
                Anomaly.of(
                    AnomalyKind.READ_FROM_NOWHERE,
                    f"read {op.op_id} returned tag {tag} never written",
                    op,
                )
            )

    # Condition 2: no read of v precedes write(v).
    for tag, write_op in writes_by_tag.items():
        for op in clusters.get(tag, []):
            if op.is_read and op.precedes(write_op):
                report.add(
                    Anomaly.of(
                        AnomalyKind.READ_FROM_FUTURE,
                        f"read {op.op_id} returned tag {tag} but finished before "
                        f"write {write_op.op_id} started",
                        op,
                        write_op,
                    )
                )

    if not report.is_clean or duplicate_writes:
        _classify_inversions(operations, report)
        return RegisterCheckResult(False, report)

    # Condition 3: the cluster precedence digraph must be acyclic.  Besides
    # the real-time edges, the initial value's cluster (reads returning
    # BOTTOM) must precede every written value's cluster: once any write is
    # linearized, no read may return the initial value any more.
    edges: Dict[Tag, Set[Tag]] = defaultdict(set)
    edge_witness: Dict[Tuple[Tag, Tag], Tuple[Operation, Operation]] = {}
    tags = list(clusters.keys())
    if BOTTOM_TAG in clusters:
        for tag in tags:
            if tag != BOTTOM_TAG:
                edges[BOTTOM_TAG].add(tag)
    for u in tags:
        for v in tags:
            if u == v:
                continue
            for op1 in clusters[u]:
                done = False
                for op2 in clusters[v]:
                    if op1.precedes(op2):
                        edges[u].add(v)
                        edge_witness.setdefault((u, v), (op1, op2))
                        done = True
                        break
                if done:
                    break

    order = _topological_order(tags, edges)
    if order is None:
        _report_cycle(clusters, edges, edge_witness, report)
        _classify_inversions(operations, report)
        return RegisterCheckResult(False, report)

    linearization = _build_linearization(order, clusters)
    return RegisterCheckResult(True, report, linearization, order)


def _topological_order(
    tags: Sequence[Tag], edges: Dict[Tag, Set[Tag]]
) -> Optional[List[Tag]]:
    """Kahn's algorithm; prefers tag order among unconstrained clusters so the
    produced linearization is stable and human-readable."""
    indegree: Dict[Tag, int] = {tag: 0 for tag in tags}
    for src, dsts in edges.items():
        for dst in dsts:
            indegree[dst] += 1
    available = sorted([tag for tag, deg in indegree.items() if deg == 0])
    order: List[Tag] = []
    while available:
        tag = available.pop(0)
        order.append(tag)
        for dst in sorted(edges.get(tag, ())):
            indegree[dst] -= 1
            if indegree[dst] == 0:
                available.append(dst)
        available.sort()
    if len(order) != len(tags):
        return None
    return order


def _build_linearization(
    order: Sequence[Tag], clusters: Dict[Tag, List[Operation]]
) -> List[Operation]:
    """Emit write-then-reads per cluster, reads sorted by start time."""
    result: List[Operation] = []
    for tag in order:
        ops = clusters[tag]
        writes = [op for op in ops if op.is_write]
        reads = sorted(
            (op for op in ops if op.is_read),
            key=lambda op: (op.start, op.finish if op.finish is not None else float("inf")),
        )
        result.extend(writes)
        result.extend(reads)
    return result


def _report_cycle(
    clusters: Dict[Tag, List[Operation]],
    edges: Dict[Tag, Set[Tag]],
    edge_witness: Dict[Tuple[Tag, Tag], Tuple[Operation, Operation]],
    report: AnomalyReport,
) -> None:
    """Find one cycle in the cluster digraph and report it."""
    cycle = _find_cycle(list(clusters.keys()), edges)
    if cycle is None:  # pragma: no cover - defensive; caller only calls on cycles
        report.add(Anomaly.of(AnomalyKind.ORDERING_CYCLE, "unidentified ordering cycle"))
        return
    ops: List[Operation] = []
    pieces: List[str] = []
    for u, v in zip(cycle, cycle[1:] + cycle[:1]):
        witness = edge_witness.get((u, v))
        if witness is not None:
            ops.extend(witness)
            pieces.append(f"{witness[0].op_id} precedes {witness[1].op_id}")
    report.add(
        Anomaly.of(
            AnomalyKind.ORDERING_CYCLE,
            "cyclic cluster constraints: " + "; ".join(pieces),
            *ops,
        )
    )


def _find_cycle(tags: Sequence[Tag], edges: Dict[Tag, Set[Tag]]) -> Optional[List[Tag]]:
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[Tag, int] = {tag: WHITE for tag in tags}
    parent: Dict[Tag, Optional[Tag]] = {}

    def dfs(node: Tag) -> Optional[List[Tag]]:
        color[node] = GRAY
        for nxt in edges.get(node, ()):  # deterministic enough for reporting
            if color[nxt] == GRAY:
                # Reconstruct cycle node -> ... -> nxt -> node.
                cycle = [node]
                cur = node
                while cur != nxt:
                    cur = parent[cur]
                    cycle.append(cur)
                cycle.reverse()
                return cycle
            if color[nxt] == WHITE:
                parent[nxt] = node
                found = dfs(nxt)
                if found is not None:
                    return found
        color[node] = BLACK
        return None

    for tag in tags:
        if color[tag] == WHITE:
            parent[tag] = None
            found = dfs(tag)
            if found is not None:
                return found
    return None


def _classify_inversions(operations: Sequence[Operation], report: AnomalyReport) -> None:
    """Add stale-read and new/old-inversion witnesses for human consumption.

    These checks use the tag order among writes (which all protocols in this
    library maintain for non-concurrent writes), so they are heuristics for
    *explaining* a violation rather than part of the decision procedure.
    """
    writes = {op.tag: op for op in operations if op.is_write and op.tag is not None}
    reads = [op for op in operations if op.is_read and op.is_complete]

    for read in reads:
        read_tag = _cluster_of(read)
        for tag, write in writes.items():
            if tag > read_tag and write.precedes(read):
                report.add(
                    Anomaly.of(
                        AnomalyKind.STALE_READ,
                        f"read {read.op_id} returned {read_tag} although write "
                        f"{write.op_id} with newer tag {tag} finished before it started",
                        read,
                        write,
                    )
                )
                break

    for first in reads:
        for second in reads:
            if first is second or not first.precedes(second):
                continue
            if _cluster_of(first) > _cluster_of(second):
                report.add(
                    Anomaly.of(
                        AnomalyKind.NEW_OLD_INVERSION,
                        f"read {first.op_id} returned {_cluster_of(first)} but the later "
                        f"read {second.op_id} returned the older {_cluster_of(second)}",
                        first,
                        second,
                    )
                )
