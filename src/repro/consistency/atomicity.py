"""Top-level atomicity checking API.

:func:`check_atomicity` is what tests, benchmarks and examples call: it runs
the polynomial cluster-based register checker when the history carries unique
tags (the normal case for every protocol in this library) and falls back to
the exhaustive Wing-Gong search otherwise.  :func:`assert_atomic` raises
:class:`~repro.core.errors.AtomicityViolation` with the anomaly report
attached, which gives failing tests a readable witness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.errors import AtomicityViolation
from ..core.operations import Operation
from .anomalies import AnomalyReport
from .history import History
from .register_checker import RegisterCheckResult, check_register_atomicity
from .wgl import WGLResult, check_linearizable_exhaustive

__all__ = ["AtomicityResult", "check_atomicity", "assert_atomic"]


@dataclass
class AtomicityResult:
    """Combined verdict of the atomicity check."""

    atomic: bool
    report: AnomalyReport
    linearization: Optional[List[Operation]] = None
    method: str = "cluster"

    def summary(self) -> str:
        verdict = "ATOMIC" if self.atomic else "NOT ATOMIC"
        return f"{verdict} ({self.method}): {self.report.summary()}"


def _has_unique_tags(history: History) -> bool:
    tags = [op.tag for op in history.writes if op.tag is not None]
    if len(tags) != len(history.writes):
        return False
    return len(set(tags)) == len(tags)


def check_atomicity(history: History, force_exhaustive: bool = False) -> AtomicityResult:
    """Decide whether ``history`` satisfies atomicity (Definition 2.1).

    Args:
        history: the history to check.  It must be well-formed (each client's
            operations are sequential); a non-well-formed history raises
            ``ValueError`` because it indicates a harness bug rather than a
            protocol bug.
        force_exhaustive: always use the exhaustive search (for testing).
    """
    if not history.is_well_formed():
        raise ValueError("history is not well-formed; cannot check atomicity")

    if not force_exhaustive and _has_unique_tags(history):
        cluster: RegisterCheckResult = check_register_atomicity(history)
        return AtomicityResult(
            atomic=cluster.atomic,
            report=cluster.report,
            linearization=cluster.linearization,
            method="cluster",
        )

    wgl: WGLResult = check_linearizable_exhaustive(history)
    report = AnomalyReport()
    if not wgl.atomic:
        # The exhaustive checker has no witness structure; run the classifier
        # from the cluster checker to explain the failure when tags exist.
        cluster = check_register_atomicity(history)
        report = cluster.report
    return AtomicityResult(
        atomic=wgl.atomic,
        report=report,
        linearization=wgl.linearization,
        method="exhaustive",
    )


def assert_atomic(history: History) -> AtomicityResult:
    """Check atomicity and raise :class:`AtomicityViolation` when it fails."""
    result = check_atomicity(history)
    if not result.atomic:
        raise AtomicityViolation(
            f"history is not atomic: {result.report.summary()}", witness=result
        )
    return result
