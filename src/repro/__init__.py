"""repro: fast implementations of distributed multi-writer atomic registers.

A reproduction of Huang, Huang & Wei, "Fine-grained Analysis on Fast
Implementations of Multi-writer Atomic Registers" (PODC / arXiv 2020).

The library has two halves:

* **Executable protocols** (:mod:`repro.protocols`) running on a
  discrete-event simulator (:mod:`repro.sim`) or a real asyncio transport
  (:mod:`repro.asyncio_net`), checked for atomicity by
  :mod:`repro.consistency`.
* **Executable proofs** (:mod:`repro.theory`): the chain-argument machinery
  behind the W1R2 impossibility theorem, the crucial-info model and sieve,
  and the ``R < S/t - 2`` fast-read bound.

Quickstart::

    from repro import quick_run

    result = quick_run("fast-read-mwmr", servers=7, max_faults=1,
                       readers=2, writers=2, seed=1)
    print(result.history)            # the recorded operation history
    print(result.atomicity.summary())  # "ATOMIC (cluster): no anomalies"
"""

from __future__ import annotations

from dataclasses import dataclass

from .consistency import AtomicityResult, History, check_atomicity
from .core import (
    BOTTOM_TAG,
    DesignPoint,
    SystemParameters,
    Tag,
    TaggedValue,
    fast_read_possible,
    fast_write_possible,
    is_feasible,
)
from .kvstore import KVStore, ShardMap, SyncKVStore, check_per_key_atomicity
from .protocols import build_protocol
from .sim import Simulation, UniformDelay
from .util.ids import client_ids, server_ids
from .workloads import apply_open_loop, uniform_open_loop

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "AtomicityResult",
    "History",
    "check_atomicity",
    "BOTTOM_TAG",
    "DesignPoint",
    "SystemParameters",
    "Tag",
    "TaggedValue",
    "fast_read_possible",
    "fast_write_possible",
    "is_feasible",
    "build_protocol",
    "Simulation",
    "QuickRunResult",
    "quick_run",
    "KVStore",
    "ShardMap",
    "SyncKVStore",
    "check_per_key_atomicity",
]


@dataclass
class QuickRunResult:
    """What :func:`quick_run` returns: the history and its atomicity verdict."""

    history: History
    atomicity: AtomicityResult
    messages_sent: int
    virtual_duration: float


def quick_run(
    protocol_key: str = "fast-read-mwmr",
    servers: int = 5,
    max_faults: int = 1,
    readers: int = 2,
    writers: int = 2,
    writes_per_writer: int = 3,
    reads_per_reader: int = 4,
    seed: int = 0,
    **protocol_kwargs,
) -> QuickRunResult:
    """Run a small random workload against a protocol and check atomicity.

    This is the one-call entry point used by the README quickstart and the
    ``examples/quickstart.py`` script.
    """
    ids = server_ids(servers)
    protocol = build_protocol(
        protocol_key, ids, max_faults, readers=readers, writers=writers, **protocol_kwargs
    )
    simulation = Simulation(protocol, delay_model=UniformDelay(0.5, 1.5, seed=seed))
    workload = uniform_open_loop(
        client_ids("w", protocol.writers),
        client_ids("r", readers),
        writes_per_writer=writes_per_writer,
        reads_per_reader=reads_per_reader,
        horizon=60.0,
        seed=seed,
    )
    apply_open_loop(simulation, workload)
    result = simulation.run()
    verdict = check_atomicity(result.history)
    return QuickRunResult(
        history=result.history,
        atomicity=verdict,
        messages_sent=result.messages_sent,
        virtual_duration=result.virtual_duration,
    )
