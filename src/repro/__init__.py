"""repro: fast implementations of distributed multi-writer atomic registers.

A reproduction of Huang, Huang & Wei, "Fine-grained Analysis on Fast
Implementations of Multi-writer Atomic Registers" (PODC / arXiv 2020).

The library has two halves:

* **Executable protocols** (:mod:`repro.protocols`) running on a
  discrete-event simulator (:mod:`repro.sim`) or a real asyncio transport
  (:mod:`repro.asyncio_net`), checked for atomicity by
  :mod:`repro.consistency`.  On top sits a sharded key-value store
  (:mod:`repro.kvstore`) whose protocol core is a transport-free engine
  (:mod:`repro.kvstore.engine`).
* **Executable proofs** (:mod:`repro.theory`): the chain-argument machinery
  behind the W1R2 impossibility theorem, the crucial-info model and sieve,
  and the ``R < S/t - 2`` fast-read bound.

Quickstart::

    from repro import quick_run

    result = quick_run("fast-read-mwmr", servers=7, max_faults=1,
                       readers=2, writers=2, seed=1)
    print(result.history)            # the recorded operation history
    print(result.atomicity.summary())  # "ATOMIC (cluster): no anomalies"

Exports resolve lazily (PEP 562): ``import repro`` (or any one submodule)
pulls in only what is actually used -- in particular, the sans-I/O
:mod:`repro.kvstore.engine` can be imported without dragging in asyncio or
the simulator runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from importlib import import_module
from typing import TYPE_CHECKING

__version__ = "1.0.0"

#: Public name -> defining submodule; attribute access imports on demand.
_EXPORTS = {
    "AtomicityResult": ".consistency",
    "History": ".consistency",
    "check_atomicity": ".consistency",
    "BOTTOM_TAG": ".core",
    "DesignPoint": ".core",
    "SystemParameters": ".core",
    "Tag": ".core",
    "TaggedValue": ".core",
    "fast_read_possible": ".core",
    "fast_write_possible": ".core",
    "is_feasible": ".core",
    "KVStore": ".kvstore",
    "ShardMap": ".kvstore",
    "SyncKVStore": ".kvstore",
    "check_per_key_atomicity": ".kvstore",
    "build_protocol": ".protocols",
    "Simulation": ".sim",
}

__all__ = ["__version__", "QuickRunResult", "quick_run", *list(_EXPORTS)]


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is not None:
        value = getattr(import_module(module_name, __name__), name)
        globals()[name] = value  # cache: later lookups skip __getattr__
        return value
    # Submodule access (``import repro; repro.sim...``): the eager imports
    # used to bind these as a side effect, so keep them reachable lazily.
    try:
        return import_module(f".{name}", __name__)
    except ModuleNotFoundError as exc:
        if exc.name != f"{__name__}.{name}":
            raise  # the submodule exists but one of *its* imports is missing
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from .consistency import AtomicityResult, History, check_atomicity  # noqa: F401
    from .core import (  # noqa: F401
        BOTTOM_TAG,
        DesignPoint,
        SystemParameters,
        Tag,
        TaggedValue,
        fast_read_possible,
        fast_write_possible,
        is_feasible,
    )
    from .kvstore import (  # noqa: F401
        KVStore,
        ShardMap,
        SyncKVStore,
        check_per_key_atomicity,
    )
    from .protocols import build_protocol  # noqa: F401
    from .sim import Simulation  # noqa: F401


@dataclass
class QuickRunResult:
    """What :func:`quick_run` returns: the history and its atomicity verdict."""

    history: "History"
    atomicity: "AtomicityResult"
    messages_sent: int
    virtual_duration: float


def quick_run(
    protocol_key: str = "fast-read-mwmr",
    servers: int = 5,
    max_faults: int = 1,
    readers: int = 2,
    writers: int = 2,
    writes_per_writer: int = 3,
    reads_per_reader: int = 4,
    seed: int = 0,
    **protocol_kwargs,
) -> QuickRunResult:
    """Run a small random workload against a protocol and check atomicity.

    This is the one-call entry point used by the README quickstart and the
    ``examples/quickstart.py`` script.
    """
    from .consistency import check_atomicity
    from .protocols import build_protocol
    from .sim import Simulation, UniformDelay
    from .util.ids import client_ids, server_ids
    from .workloads import apply_open_loop, uniform_open_loop

    ids = server_ids(servers)
    protocol = build_protocol(
        protocol_key, ids, max_faults, readers=readers, writers=writers, **protocol_kwargs
    )
    simulation = Simulation(protocol, delay_model=UniformDelay(0.5, 1.5, seed=seed))
    workload = uniform_open_loop(
        client_ids("w", protocol.writers),
        client_ids("r", readers),
        writes_per_writer=writes_per_writer,
        reads_per_reader=reads_per_reader,
        horizon=60.0,
        seed=seed,
    )
    apply_open_loop(simulation, workload)
    result = simulation.run()
    verdict = check_atomicity(result.history)
    return QuickRunResult(
        history=result.history,
        atomicity=verdict,
        messages_sent=result.messages_sent,
        virtual_duration=result.virtual_duration,
    )
