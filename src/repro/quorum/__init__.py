"""Quorum systems: majority quorums and fast-read quorum structures."""

from .systems import (
    FastQuorumSystem,
    MajorityQuorumSystem,
    QuorumSystem,
    ack_sets,
    all_intersect,
    intersection_size_lower_bound,
)

__all__ = [
    "FastQuorumSystem",
    "MajorityQuorumSystem",
    "QuorumSystem",
    "ack_sets",
    "all_intersect",
    "intersection_size_lower_bound",
]
