"""Quorum systems used by register emulations.

The protocols in the paper all follow the same pattern: a client round-trip
contacts every server and waits for acknowledgements from ``S - t`` of them.
Correctness then rests on intersection properties of those ack sets.  This
module makes the quorum structure explicit so that protocols, proofs and
benchmarks can reason about it directly:

* :class:`MajorityQuorumSystem` -- the classic ``t < S/2`` majority system
  behind W2R2 (any two ``S - t`` sets intersect).
* :class:`FastQuorumSystem` -- the stronger structure needed for fast reads:
  with ``R < S/t - 2`` the sets ``S - a*t`` used by the admissibility
  predicate intersect the reply set of any later operation even after up to
  ``t`` failures (Lemmas 9-10 of Appendix A).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, Sequence, Tuple

from ..core.errors import ConfigurationError

__all__ = [
    "QuorumSystem",
    "MajorityQuorumSystem",
    "FastQuorumSystem",
    "ack_sets",
    "all_intersect",
    "intersection_size_lower_bound",
]


def intersection_size_lower_bound(size_a: int, size_b: int, universe: int) -> int:
    """Guaranteed size of the intersection of two subsets of a universe.

    By inclusion-exclusion, two subsets of sizes ``a`` and ``b`` of a universe
    of ``n`` elements intersect in at least ``a + b - n`` elements.
    """
    return max(0, size_a + size_b - universe)


def ack_sets(servers: Sequence[str], quorum_size: int) -> Iterator[FrozenSet[str]]:
    """All possible sets of ``quorum_size`` acknowledging servers."""
    for combo in itertools.combinations(servers, quorum_size):
        yield frozenset(combo)


def all_intersect(quorums: Iterable[FrozenSet[str]]) -> bool:
    """True when every pair of the given quorums has a nonempty intersection."""
    qs = list(quorums)
    for a, b in itertools.combinations(qs, 2):
        if not (a & b):
            return False
    return True


@dataclass(frozen=True)
class QuorumSystem:
    """A generic ``S - t`` acknowledgement quorum system.

    Attributes:
        servers: the ordered tuple of server ids.
        max_faults: ``t``, the number of crash failures tolerated.
    """

    servers: Tuple[str, ...]
    max_faults: int

    def __post_init__(self) -> None:
        if len(self.servers) < 2:
            raise ConfigurationError("a quorum system needs at least 2 servers")
        if self.max_faults < 0 or self.max_faults >= len(self.servers):
            raise ConfigurationError(
                f"t={self.max_faults} out of range for S={len(self.servers)}"
            )
        if len(set(self.servers)) != len(self.servers):
            raise ConfigurationError("duplicate server ids in quorum system")

    @property
    def size(self) -> int:
        return len(self.servers)

    @property
    def quorum_size(self) -> int:
        """The ``S - t`` ack threshold used by every round-trip."""
        return self.size - self.max_faults

    def quorums(self) -> Iterator[FrozenSet[str]]:
        """All possible ack sets of size ``S - t``."""
        return ack_sets(self.servers, self.quorum_size)

    def is_quorum(self, acked: Iterable[str]) -> bool:
        acked_set = set(acked)
        if not acked_set.issubset(self.servers):
            raise ConfigurationError("ack set contains unknown servers")
        return len(acked_set) >= self.quorum_size

    def guaranteed_overlap(self) -> int:
        """Minimum intersection size of any two ``S - t`` quorums."""
        return intersection_size_lower_bound(
            self.quorum_size, self.quorum_size, self.size
        )

    def tolerates(self, crashed: Iterable[str]) -> bool:
        """Whether progress is possible with the given servers crashed."""
        crashed_set = set(crashed) & set(self.servers)
        return len(crashed_set) <= self.max_faults


@dataclass(frozen=True)
class MajorityQuorumSystem(QuorumSystem):
    """The ``t < S/2`` system used by ABD / MW-ABD (W2R2 implementations)."""

    def __post_init__(self) -> None:
        super().__post_init__()
        if 2 * self.max_faults >= len(self.servers):
            raise ConfigurationError(
                "majority quorums require t < S/2 "
                f"(got t={self.max_faults}, S={len(self.servers)})"
            )

    def regular(self) -> bool:
        """Any two quorums intersect -- the defining property."""
        return self.guaranteed_overlap() >= 1


@dataclass(frozen=True)
class FastQuorumSystem(QuorumSystem):
    """Quorum structure for fast (one-round-trip) reads.

    Requires ``R < S/t - 2`` where ``R`` is the number of readers; the class
    records ``readers`` so it can validate the condition and expose the
    intersection lemmas the admissibility proof relies on.
    """

    readers: int = 2

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.readers < 1:
            raise ConfigurationError("need at least one reader")
        if self.max_faults > 0 and self.readers >= self.size / self.max_faults - 2:
            raise ConfigurationError(
                "fast reads require R < S/t - 2 "
                f"(got R={self.readers}, S={self.size}, t={self.max_faults})"
            )

    def admissible_set_size(self, degree: int) -> int:
        """Size ``S - a*t`` of a witnessing set for admissibility degree a."""
        return self.size - degree * self.max_faults

    def witness_survives_faults(self, degree: int) -> bool:
        """Lemma 9: a degree-``a`` witness set has more than ``t`` servers."""
        return self.admissible_set_size(degree) > self.max_faults

    def witness_meets_later_read(self, degree: int) -> bool:
        """Lemma 10: a degree-``a`` witness set intersects a later ``S - t`` reply set."""
        overlap = intersection_size_lower_bound(
            self.admissible_set_size(degree), self.quorum_size, self.size
        )
        return overlap >= 1

    def max_degree(self) -> int:
        """The largest admissibility degree the algorithm ever uses, ``R + 1``."""
        return self.readers + 1
