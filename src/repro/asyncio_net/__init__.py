"""Real asyncio TCP transport for register protocols (wall-clock latency leg)."""

from .client import AsyncRegisterClient, TimedOutcome
from .cluster import ClusterResult, LocalCluster, run_closed_loop_workload
from .codec import decode_message, encode_message
from .server import ReplicaServer

__all__ = [
    "AsyncRegisterClient",
    "TimedOutcome",
    "ClusterResult",
    "LocalCluster",
    "run_closed_loop_workload",
    "decode_message",
    "encode_message",
    "ReplicaServer",
]
