"""Asyncio TCP server hosting one register replica.

The server wraps the *same* :class:`~repro.protocols.base.ServerLogic` object
that the simulator uses; the only difference is the transport.  Each client
connection is a stream of length-prefixed JSON messages; every request gets
exactly one reply frame (or none when the logic returns ``None``).

Logic objects that expose the effect-driven interface (``on_frame`` /
``on_timer``, i.e. :class:`~repro.kvstore.engine.server.GroupServerEngine`)
are driven through it instead: one inbound frame may produce several sends
-- a batch-ack plus a lease grant, or lease invalidations chasing a *third*
party -- and timer effects (server-side lease expiry) land on the event
loop via ``call_later``.  Outbound frames route over the inbound connection
of their destination peer (peers dial replicas, never the reverse), tracked
by the sender id of the frames each connection delivers.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional, Tuple

from ..kvstore.engine.effects import CancelTimer, SendFrame, StartTimer
from ..protocols.base import ServerLogic
from .codec import read_frame, write_frame

__all__ = ["ReplicaServer"]


class ReplicaServer:
    """One register replica listening on a TCP port.

    ``service_overhead``/``service_per_op`` model server capacity for the
    kv-store benchmarks: each request on a connection costs
    ``overhead + per_op * sub_ops`` seconds of service time before its reply
    is sent (sub_ops counts the operations inside a batch frame, 1
    otherwise), and requests on one connection are served in order.  The
    defaults keep the replica infinitely fast, the behaviour of the
    single-register experiments.
    """

    def __init__(
        self,
        logic: ServerLogic,
        host: str = "127.0.0.1",
        port: int = 0,
        service_overhead: float = 0.0,
        service_per_op: float = 0.0,
    ) -> None:
        self.logic = logic
        self.host = host
        self.port = port
        self.service_overhead = service_overhead
        self.service_per_op = service_per_op
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: "set" = set()
        self.requests_served = 0
        # Effect-driven logics only: inbound connection per peer id (keyed by
        # the sender of the frames it delivers) and live lease timers.
        self._peers: Dict[str, asyncio.StreamWriter] = {}
        self._timers: Dict[Tuple, asyncio.TimerHandle] = {}

    @property
    def server_id(self) -> str:
        return self.logic.server_id

    @property
    def running(self) -> bool:
        return self._server is not None

    async def start(self) -> None:
        """(Re)start listening; ``self.port`` is updated with the bound port.

        After a :meth:`stop`, calling ``start`` again rebinds the *same*
        port with the *same* logic object -- the crash-recovery model of a
        replica whose state survives on stable storage, which is what lets
        clients reconnect to a known endpoint after a kill.
        """
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop listening and sever every live connection (a process kill:
        in-flight requests on those connections are simply lost)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        self._peers.clear()
        for writer in list(self._connections):
            writer.close()

    async def _handle_connection(self, reader, writer) -> None:
        self._connections.add(writer)
        effect_driven = hasattr(self.logic, "on_frame")
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionResetError, OSError):
                    break
                except asyncio.CancelledError:
                    # Event-loop teardown raced this connection's EOF; exit
                    # cleanly so the streams machinery has nothing to log.
                    break
                self.requests_served += 1
                if effect_driven:
                    # Route later out-of-band frames (lease grants and
                    # invalidations, deferred batch-acks) back over this
                    # peer's own inbound connection.
                    self._peers[request.sender] = writer
                    effects = self.logic.on_frame(request)
                else:
                    reply = self.logic.handle(request)
                if self.service_overhead > 0 or self.service_per_op > 0:
                    # Batch frames charge per sub-op, drain frames per key:
                    # the pause a migration imposes on a replica grows with
                    # the range size, matching the simulator's cost model.
                    payload = request.payload
                    sub_ops = len(
                        payload.get("ops", ()) or payload.get("keys", ())
                    ) or 1
                    await asyncio.sleep(
                        self.service_overhead + self.service_per_op * sub_ops
                    )
                if effect_driven:
                    await self._run_effects(effects)
                elif reply is not None:
                    await write_frame(writer, reply)
        except (ConnectionResetError, BrokenPipeError):
            pass  # peer vanished mid-write; the connection is done either way
        finally:
            self._connections.discard(writer)
            # Only unmap peers still pointing at *this* connection: if the
            # peer reconnected while this handler was winding down, the
            # mapping already names the new writer and must survive, or
            # out-of-band frames (lease invalidations, deferred acks) would
            # silently drop until the peer's next inbound frame.
            stale_peers = [
                peer for peer, peer_writer in list(self._peers.items())
                if peer_writer is writer
            ]
            for peer in stale_peers:
                if self._peers.get(peer) is writer:
                    del self._peers[peer]
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                # Teardown path: the peer (or the server itself) is going
                # away; there is nothing left to clean up on this connection.
                pass

    async def _run_effects(self, effects) -> None:
        """Execute an effect batch: frames go out over the destination peer's
        inbound connection (in order -- a lease grant emitted before the
        batch-ack stays before it on the wire); timers land on the event
        loop.  A frame for a peer with no live connection is dropped, the
        same fate the simulator gives sends to a severed process."""
        for effect in effects:
            if isinstance(effect, SendFrame):
                peer = self._peers.get(effect.destination)
                if peer is None:
                    continue
                try:
                    await write_frame(peer, effect.frame)
                except (ConnectionResetError, BrokenPipeError, OSError):
                    pass  # peer died between frames; leases expire on timers
            elif isinstance(effect, StartTimer):
                stale = self._timers.pop(effect.timer_id, None)
                if stale is not None:
                    stale.cancel()
                self._timers[effect.timer_id] = asyncio.get_event_loop().call_later(
                    effect.delay, self._on_timer_fired, effect.timer_id
                )
            elif isinstance(effect, CancelTimer):
                handle = self._timers.pop(effect.timer_id, None)
                if handle is not None:
                    handle.cancel()
            else:
                raise TypeError(
                    f"replica server cannot execute effect {effect!r}"
                )

    def _on_timer_fired(self, timer_id) -> None:
        self._timers.pop(timer_id, None)
        effects = self.logic.on_timer(timer_id)
        if effects:
            asyncio.ensure_future(self._run_effects(effects))
