"""A local asyncio cluster: replicas plus connected clients in one process.

The cluster is the wall-clock counterpart of :class:`repro.sim.Simulation`:
it starts one TCP replica per server of a
:class:`~repro.protocols.base.RegisterProtocol`, connects writer and reader
clients, runs a closed-loop workload and reports per-operation latencies and
the resulting history (checked by the same atomicity checker).  It exists for
the latency-oriented experiments (X1 in DESIGN.md): one-round-trip reads
really do take roughly half the wall-clock time of two-round-trip reads, even
on loopback.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List

from ..consistency.history import History
from ..core.operations import Operation, new_op_id
from ..protocols.base import RegisterProtocol
from ..util.ids import client_ids
from ..util.stats import LatencyStats, summarize
from .client import AsyncRegisterClient, TimedOutcome
from .server import ReplicaServer

__all__ = ["ClusterResult", "LocalCluster", "run_closed_loop_workload"]


@dataclass
class ClusterResult:
    """What a cluster workload run produces."""

    history: History
    write_latencies: List[float] = field(default_factory=list)
    read_latencies: List[float] = field(default_factory=list)
    read_round_trips: List[int] = field(default_factory=list)
    write_round_trips: List[int] = field(default_factory=list)

    def write_stats(self) -> LatencyStats:
        return summarize(self.write_latencies)

    def read_stats(self) -> LatencyStats:
        return summarize(self.read_latencies)


class LocalCluster:
    """Replica servers and clients for one protocol, on loopback TCP."""

    def __init__(self, protocol: RegisterProtocol) -> None:
        self.protocol = protocol
        self.replicas: Dict[str, ReplicaServer] = {}
        self.writers: Dict[str, AsyncRegisterClient] = {}
        self.readers: Dict[str, AsyncRegisterClient] = {}

    async def start(self) -> None:
        for server_id in self.protocol.servers:
            replica = ReplicaServer(self.protocol.make_server(server_id))
            await replica.start()
            self.replicas[server_id] = replica
        endpoints = {
            server_id: (replica.host, replica.port)
            for server_id, replica in self.replicas.items()
        }
        for writer_id in client_ids("w", self.protocol.writers):
            client = AsyncRegisterClient(
                self.protocol.make_writer(writer_id), endpoints, self.protocol.max_faults
            )
            await client.connect()
            self.writers[writer_id] = client
        for reader_id in client_ids("r", self.protocol.readers):
            client = AsyncRegisterClient(
                self.protocol.make_reader(reader_id), endpoints, self.protocol.max_faults
            )
            await client.connect()
            self.readers[reader_id] = client

    async def stop(self) -> None:
        for client in list(self.writers.values()) + list(self.readers.values()):
            await client.close()
        for replica in self.replicas.values():
            await replica.stop()
        self.writers.clear()
        self.readers.clear()
        self.replicas.clear()

    async def run_closed_loop(
        self,
        writes_per_writer: int = 5,
        reads_per_reader: int = 10,
    ) -> ClusterResult:
        """Writers and readers issue operations back-to-back, concurrently."""
        base = time.monotonic()
        operations: List[Operation] = []
        result = ClusterResult(history=History())

        async def writer_loop(writer_id: str, client: AsyncRegisterClient) -> None:
            for index in range(writes_per_writer):
                timed = await client.write(f"v-{writer_id}-{index}")
                operations.append(_to_operation(timed, writer_id, base))
                result.write_latencies.append(timed.latency)
                result.write_round_trips.append(timed.round_trips)

        async def reader_loop(reader_id: str, client: AsyncRegisterClient) -> None:
            for _ in range(reads_per_reader):
                timed = await client.read()
                operations.append(_to_operation(timed, reader_id, base))
                result.read_latencies.append(timed.latency)
                result.read_round_trips.append(timed.round_trips)

        tasks = [
            asyncio.create_task(writer_loop(writer_id, client))
            for writer_id, client in self.writers.items()
        ] + [
            asyncio.create_task(reader_loop(reader_id, client))
            for reader_id, client in self.readers.items()
        ]
        await asyncio.gather(*tasks)
        result.history = History(sorted(operations, key=lambda op: op.start))
        return result


def _to_operation(timed: TimedOutcome, client_id: str, base: float) -> Operation:
    outcome = timed.outcome
    return Operation(
        op_id=new_op_id(f"{client_id}-net"),
        client=client_id,
        kind=outcome.kind,
        start=timed.started_at - base,
        finish=timed.finished_at - base,
        value=outcome.value,
        tag=outcome.tag,
        round_trips=timed.round_trips,
    )


def run_closed_loop_workload(
    protocol: RegisterProtocol,
    writes_per_writer: int = 5,
    reads_per_reader: int = 10,
) -> ClusterResult:
    """Convenience wrapper: start a cluster, run the workload, tear it down."""

    async def _run() -> ClusterResult:
        cluster = LocalCluster(protocol)
        await cluster.start()
        try:
            return await cluster.run_closed_loop(writes_per_writer, reads_per_reader)
        finally:
            await cluster.stop()

    return asyncio.run(_run())
