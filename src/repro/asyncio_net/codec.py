"""Length-prefixed JSON framing for the asyncio transport.

One frame is a 4-byte big-endian length header followed by a JSON body.  The
body is a single :class:`~repro.sim.messages.Message`; batch frames (used by
:mod:`repro.kvstore` to coalesce several sub-requests into one round) are
ordinary messages of kind ``"batch"``/``"batch-ack"`` whose payload packs the
sub-messages -- including each sub-request's (shard, epoch) routing tag, the
fence that makes live rebalancing safe -- so the wire format needs no second
framing layer: :func:`encode_batch_frame`/:func:`decode_batch_frame` are the
convenience composition of both layers.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, Sequence

from ..messages import (
    Message,
    ProxySubReply,
    ProxySubRequest,
    SubRequest,
    make_batch,
    make_drain_install,
    make_drain_transfer,
    make_lease_grant,
    make_lease_invalidate,
    make_lease_release,
    make_proxy_ack,
    make_proxy_request,
    make_view_push,
    unpack_batch,
    unpack_drain_install,
    unpack_drain_transfer,
    unpack_lease_grant,
    unpack_lease_invalidate,
    unpack_lease_release,
    unpack_proxy_ack,
    unpack_proxy_request,
    unpack_view_push,
)

__all__ = [
    "MAX_FRAME_BYTES",
    "FrameError",
    "encode_message",
    "decode_message",
    "encode_batch_frame",
    "decode_batch_frame",
    "encode_proxy_frame",
    "decode_proxy_frame",
    "encode_proxy_ack_frame",
    "decode_proxy_ack_frame",
    "encode_view_push_frame",
    "decode_view_push_frame",
    "encode_drain_transfer_frame",
    "decode_drain_transfer_frame",
    "encode_drain_install_frame",
    "decode_drain_install_frame",
    "encode_lease_grant_frame",
    "decode_lease_grant_frame",
    "encode_lease_invalidate_frame",
    "decode_lease_invalidate_frame",
    "encode_lease_release_frame",
    "decode_lease_release_frame",
    "read_frame",
    "write_frame",
]

_HEADER = struct.Struct("!I")

#: Upper bound on a frame body.  Large enough for any batch this library
#: produces (thousands of sub-operations), small enough to fail fast when a
#: peer sends garbage that parses as an absurd length header.
MAX_FRAME_BYTES = 16 * 1024 * 1024


class FrameError(ValueError):
    """A frame that cannot be encoded or decoded safely."""


def encode_message(message: Message) -> bytes:
    """Serialize a message to a length-prefixed JSON frame."""
    fields = {
        "sender": message.sender,
        "receiver": message.receiver,
        "kind": message.kind,
        "payload": message.payload,
        "op_id": message.op_id,
        "round_trip": message.round_trip,
        "msg_id": message.msg_id,
    }
    # The trace-context id is optional on the wire: frames from peers that
    # predate it stay byte-identical, and decoders default it to None.
    if message.trace is not None:
        fields["trace"] = message.trace
    body = json.dumps(fields, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame body of {len(body)} bytes exceeds MAX_FRAME_BYTES"
        )
    return _HEADER.pack(len(body)) + body


def decode_message(body: bytes) -> Message:
    """Deserialize the JSON body of a frame back into a Message."""
    data: Dict[str, Any] = json.loads(body.decode("utf-8"))
    return Message(
        sender=data["sender"],
        receiver=data["receiver"],
        kind=data["kind"],
        payload=data.get("payload", {}),
        op_id=data.get("op_id"),
        round_trip=data.get("round_trip", 0),
        msg_id=data.get("msg_id", 0),
        trace=data.get("trace"),
    )


def encode_batch_frame(
    sender: str, receiver: str, sub_messages: Sequence
) -> bytes:
    """Pack sub-requests (:class:`SubRequest` or ``(key, message)`` pairs)
    into one encoded batch frame."""
    return encode_message(make_batch(sender, receiver, sub_messages))


def decode_batch_frame(body: bytes) -> List[SubRequest]:
    """Inverse of :func:`encode_batch_frame` (body excludes the length header)."""
    return unpack_batch(decode_message(body))


def encode_proxy_frame(
    sender: str, receiver: str, subs: Sequence[ProxySubRequest]
) -> bytes:
    """Pack forwarded rounds into one encoded proxy frame (client -> proxy)."""
    return encode_message(make_proxy_request(sender, receiver, subs))


def decode_proxy_frame(body: bytes) -> List[ProxySubRequest]:
    """Inverse of :func:`encode_proxy_frame` (body excludes the length header)."""
    return unpack_proxy_request(decode_message(body))


def encode_proxy_ack_frame(
    sender: str, receiver: str, sub_replies: Sequence[ProxySubReply]
) -> bytes:
    """Pack completed rounds into one encoded proxy ack frame (proxy -> client)."""
    return encode_message(make_proxy_ack(sender, receiver, sub_replies))


def decode_proxy_ack_frame(body: bytes) -> List[ProxySubReply]:
    """Inverse of :func:`encode_proxy_ack_frame` (body excludes the header)."""
    return unpack_proxy_ack(decode_message(body))


def encode_view_push_frame(
    sender: str, receiver: str, view: Dict[str, Any]
) -> bytes:
    """Pack one shard-map view into an encoded control-plane push frame."""
    return encode_message(make_view_push(sender, receiver, view))


def decode_view_push_frame(body: bytes) -> Dict[str, Any]:
    """Inverse of :func:`encode_view_push_frame` (body excludes the header)."""
    return unpack_view_push(decode_message(body))


def encode_drain_transfer_frame(
    sender: str, receiver: str, mig: str, token: str, shard: str,
    keys: Sequence[str],
) -> bytes:
    """One incremental-drain transfer request as a wire frame."""
    return encode_message(
        make_drain_transfer(sender, receiver, mig, token, shard, keys)
    )


def decode_drain_transfer_frame(body: bytes) -> Dict[str, Any]:
    """Inverse of :func:`encode_drain_transfer_frame` (no length header)."""
    return unpack_drain_transfer(decode_message(body))


def encode_drain_install_frame(
    sender: str, receiver: str, mig: str, token: str, shard: str, epoch: int,
    keys: Sequence[str], states: Dict[str, List[Dict[str, Any]]],
) -> bytes:
    """One incremental-drain install request as a wire frame."""
    return encode_message(
        make_drain_install(sender, receiver, mig, token, shard, epoch, keys,
                           states)
    )


def decode_drain_install_frame(body: bytes) -> Dict[str, Any]:
    """Inverse of :func:`encode_drain_install_frame` (no length header)."""
    return unpack_drain_install(decode_message(body))


def encode_lease_grant_frame(
    sender: str, receiver: str, keys: Sequence[str], ttl: float,
    nonces: Sequence[str],
) -> bytes:
    """One read-lease grant (replica -> proxy) as a wire frame."""
    return encode_message(make_lease_grant(sender, receiver, keys, ttl, nonces))


def decode_lease_grant_frame(body: bytes) -> Dict[str, Any]:
    """Inverse of :func:`encode_lease_grant_frame` (no length header)."""
    return unpack_lease_grant(decode_message(body))


def encode_lease_invalidate_frame(
    sender: str, receiver: str, keys: Sequence[str]
) -> bytes:
    """One lease invalidation (replica -> holder) as a wire frame."""
    return encode_message(make_lease_invalidate(sender, receiver, keys))


def decode_lease_invalidate_frame(body: bytes) -> Dict[str, Any]:
    """Inverse of :func:`encode_lease_invalidate_frame` (no length header)."""
    return unpack_lease_invalidate(decode_message(body))


def encode_lease_release_frame(
    sender: str, receiver: str, keys: Sequence[str]
) -> bytes:
    """One lease release (holder -> replica) as a wire frame."""
    return encode_message(make_lease_release(sender, receiver, keys))


def decode_lease_release_frame(body: bytes) -> Dict[str, Any]:
    """Inverse of :func:`encode_lease_release_frame` (no length header)."""
    return unpack_lease_release(decode_message(body))


async def read_frame(reader) -> Message:
    """Read one length-prefixed frame from an asyncio StreamReader."""
    header = await reader.readexactly(_HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"incoming frame of {length} bytes exceeds MAX_FRAME_BYTES")
    body = await reader.readexactly(length)
    return decode_message(body)


async def write_frame(writer, message: Message) -> None:
    """Write one frame to an asyncio StreamWriter and flush it."""
    writer.write(encode_message(message))
    await writer.drain()
