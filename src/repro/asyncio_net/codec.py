"""Length-prefixed JSON framing for the asyncio transport."""

from __future__ import annotations

import json
import struct
from typing import Any, Dict

from ..sim.messages import Message

__all__ = ["encode_message", "decode_message", "read_frame", "write_frame"]

_HEADER = struct.Struct("!I")


def encode_message(message: Message) -> bytes:
    """Serialize a message to a length-prefixed JSON frame."""
    body = json.dumps(
        {
            "sender": message.sender,
            "receiver": message.receiver,
            "kind": message.kind,
            "payload": message.payload,
            "op_id": message.op_id,
            "round_trip": message.round_trip,
            "msg_id": message.msg_id,
        },
        separators=(",", ":"),
    ).encode("utf-8")
    return _HEADER.pack(len(body)) + body


def decode_message(body: bytes) -> Message:
    """Deserialize the JSON body of a frame back into a Message."""
    data: Dict[str, Any] = json.loads(body.decode("utf-8"))
    return Message(
        sender=data["sender"],
        receiver=data["receiver"],
        kind=data["kind"],
        payload=data.get("payload", {}),
        op_id=data.get("op_id"),
        round_trip=data.get("round_trip", 0),
        msg_id=data.get("msg_id", 0),
    )


async def read_frame(reader) -> Message:
    """Read one length-prefixed frame from an asyncio StreamReader."""
    header = await reader.readexactly(_HEADER.size)
    (length,) = _HEADER.unpack(header)
    body = await reader.readexactly(length)
    return decode_message(body)


async def write_frame(writer, message: Message) -> None:
    """Write one frame to an asyncio StreamWriter and flush it."""
    writer.write(encode_message(message))
    await writer.drain()
