"""Asyncio client driver for register protocols.

Drives the same generator-based :class:`~repro.protocols.base.ClientLogic`
the simulator uses, but over real TCP connections: each yielded
:class:`~repro.protocols.base.Broadcast` sends one frame to every replica and
resumes the generator as soon as ``S - t`` replies have arrived.

Stragglers are handled the way quorum systems handle them: every connection
has a background receive loop that tags incoming frames with the operation id
and round-trip they answer; frames for already-completed round-trips are
discarded instead of being mistaken for answers to the current one.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import ProtocolError
from ..core.operations import OpKind, new_op_id
from ..protocols.base import Broadcast, ClientLogic, OperationOutcome
from ..messages import Message
from .codec import read_frame, write_frame

__all__ = ["TimedOutcome", "AsyncRegisterClient"]


@dataclass
class TimedOutcome:
    """An operation outcome plus its wall-clock latency in seconds."""

    outcome: OperationOutcome
    latency: float
    round_trips: int
    started_at: float
    finished_at: float


class AsyncRegisterClient:
    """A reader or writer client connected to a set of replica endpoints."""

    def __init__(
        self,
        logic: ClientLogic,
        endpoints: Dict[str, Tuple[str, int]],
        max_faults: int,
    ) -> None:
        self.logic = logic
        self.endpoints = dict(endpoints)
        self.max_faults = max_faults
        self._writers: Dict[str, asyncio.StreamWriter] = {}
        self._receive_tasks: List[asyncio.Task] = []
        self.history: List[TimedOutcome] = []
        # Reply collection state for the in-flight round-trip.
        self._expected_key: Optional[Tuple[str, int]] = None
        self._replies: List[Message] = []
        self._enough_replies: Optional[asyncio.Event] = None
        self._wait_for: int = 0

    @property
    def client_id(self) -> str:
        return self.logic.client_id

    @property
    def quorum_size(self) -> int:
        return len(self.endpoints) - self.max_faults

    # -- connection management ---------------------------------------------------

    async def connect(self) -> None:
        for server_id, (host, port) in self.endpoints.items():
            reader, writer = await asyncio.open_connection(host, port)
            self._writers[server_id] = writer
            self._receive_tasks.append(
                asyncio.create_task(self._receive_loop(server_id, reader))
            )

    async def close(self) -> None:
        for task in self._receive_tasks:
            task.cancel()
        await asyncio.gather(*self._receive_tasks, return_exceptions=True)
        self._receive_tasks.clear()
        for writer in self._writers.values():
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
        self._writers.clear()

    async def _receive_loop(self, server_id: str, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                message = await read_frame(reader)
                key = (message.op_id, message.round_trip)
                if key != self._expected_key or self._enough_replies is None:
                    continue  # straggler from an earlier round-trip
                self._replies.append(message)
                if len(self._replies) >= self._wait_for:
                    self._enough_replies.set()
        except (asyncio.IncompleteReadError, ConnectionResetError, asyncio.CancelledError):
            return

    # -- operations ----------------------------------------------------------------

    async def write(self, value: Any) -> TimedOutcome:
        """Perform ``write(value)`` and record its latency."""
        return await self._run(self.logic.write_protocol(value), OpKind.WRITE)

    async def read(self) -> TimedOutcome:
        """Perform ``read()`` and record its latency."""
        return await self._run(self.logic.read_protocol(), OpKind.READ)

    async def _run(self, generator, kind: OpKind) -> TimedOutcome:
        op_id = new_op_id(f"{self.client_id}-{kind.value}")
        started = time.monotonic()
        round_trip = 0
        try:
            request = next(generator)
            while True:
                round_trip += 1
                replies = await self._broadcast(request, op_id, round_trip)
                request = generator.send(replies)
        except StopIteration as stop:
            outcome = stop.value
            if not isinstance(outcome, OperationOutcome):
                raise ProtocolError("operation generator must return an OperationOutcome")
            finished = time.monotonic()
            timed = TimedOutcome(
                outcome=outcome,
                latency=finished - started,
                round_trips=round_trip,
                started_at=started,
                finished_at=finished,
            )
            self.history.append(timed)
            return timed

    async def _broadcast(
        self, request: Broadcast, op_id: str, round_trip: int
    ) -> List[Message]:
        wait_for = request.wait_for if request.wait_for is not None else self.quorum_size
        self._expected_key = (op_id, round_trip)
        self._replies = []
        self._wait_for = wait_for
        self._enough_replies = asyncio.Event()
        for server_id, writer in self._writers.items():
            message = Message(
                sender=self.client_id,
                receiver=server_id,
                kind=request.kind,
                payload=request.payload_for(server_id),
                op_id=op_id,
                round_trip=round_trip,
            )
            await write_frame(writer, message)
        await self._enough_replies.wait()
        replies = list(self._replies[:wait_for])
        self._expected_key = None
        self._enough_replies = None
        return replies
