"""Command-line interface for the repro library.

Exposes the most common workflows without writing any Python:

* ``python -m repro run`` — run one protocol under a workload on the
  simulator, print the history summary, atomicity verdict and staleness
  metrics.
* ``python -m repro table1`` — regenerate Table 1 (theoretical + measured).
* ``python -m repro prove`` — run the mechanized W1R2 chain argument and the
  refutation of the built-in read rules.
* ``python -m repro boundary`` — sweep the fast-read feasibility boundary
  ``R < S/t − 2`` (Fig. 9).
* ``python -m repro latency`` — compare protocol latencies under a LAN or geo
  delay model.
* ``python -m repro kv`` — run the sharded, batched key-value store
  (:mod:`repro.kvstore`) on the simulator or over loopback TCP and verify
  per-key atomicity.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .bench.harness import BenchConfig, run_simulated_benchmark
from .bench.report import format_metrics_table, format_rows
from .consistency import check_atomicity, measure_staleness
from .core.conditions import SystemParameters, fast_read_bound
from .kvstore import generate_workload, run_asyncio_kv_workload, run_sim_kv_workload
from .kvstore.engine import DRAIN_RANGE_SIZE
from .observe import TraceCollector
from .protocols.registry import PROTOCOLS, build_protocol
from .sim.delays import GeoDelay, UniformDelay
from .sim.runtime import Simulation
from .theory.design_space import empirical_table, format_table, theoretical_table
from .theory.fast_read_bound import run_fig9_experiment
from .theory.fullinfo import NATURAL_RULES
from .theory.impossibility import refute_all
from .util.ids import client_ids, server_ids
from .workloads.generators import apply_open_loop, uniform_open_loop

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fast implementations of multi-writer atomic registers (PODC 2020 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run one protocol on the simulator")
    run.add_argument("--protocol", default="fast-read-mwmr", choices=sorted(PROTOCOLS))
    run.add_argument("--servers", type=int, default=5)
    run.add_argument("--faults", type=int, default=1)
    run.add_argument("--readers", type=int, default=2)
    run.add_argument("--writers", type=int, default=2)
    run.add_argument("--writes", type=int, default=4, help="writes per writer")
    run.add_argument("--reads", type=int, default=6, help="reads per reader")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--crash", action="store_true", help="crash one server mid-run")

    table1 = subparsers.add_parser("table1", help="regenerate Table 1")
    table1.add_argument("--servers", type=int, default=5)
    table1.add_argument("--faults", type=int, default=1)
    table1.add_argument("--seeds", type=int, default=2)

    prove = subparsers.add_parser("prove", help="run the W1R2 impossibility argument")
    prove.add_argument("--servers", type=int, default=4)

    boundary = subparsers.add_parser("boundary", help="sweep the fast-read bound R < S/t - 2")
    boundary.add_argument("--max-servers", type=int, default=8)
    boundary.add_argument("--faults", type=int, default=1)
    boundary.add_argument("--readers", type=int, default=2)

    latency = subparsers.add_parser("latency", help="compare protocol latencies")
    latency.add_argument("--delay", choices=("lan", "geo"), default="lan")
    latency.add_argument("--servers", type=int, default=7)
    latency.add_argument(
        "--protocols",
        nargs="+",
        default=["abd-mwmr", "fast-read-mwmr"],
        choices=sorted(PROTOCOLS),
    )

    kv = subparsers.add_parser(
        "kv", help="run the sharded key-value store and verify per-key atomicity"
    )
    kv.add_argument("--backend", choices=("sim", "asyncio"), default="sim")
    kv.add_argument("--shards", type=int, default=4)
    kv.add_argument("--groups", type=int, default=None,
                    help="replica groups hosting the shards (default: one per "
                         "shard); fewer groups than shards multiplexes many "
                         "shards per group")
    kv.add_argument("--protocol", default="abd-mwmr", choices=sorted(PROTOCOLS))
    kv.add_argument("--servers-per-shard", type=int, default=3,
                    help="replica servers per group")
    kv.add_argument("--faults", type=int, default=1)
    kv.add_argument("--resize-to", type=int, default=None, metavar="N",
                    help="live-resize the ring to N shards mid-run (the "
                         "resize action: registers drain to the new owners "
                         "while clients keep operating)")
    kv.add_argument("--resize-after", type=int, default=None, metavar="OPS",
                    help="trigger the live resize after OPS completed "
                         "operations (default: half the workload)")
    kv.add_argument("--kill-proxy-after", type=int, default=None, metavar="OPS",
                    help="kill one ingress proxy per site after OPS completed "
                         "operations (requires --proxies; clients fail over "
                         "to a sibling proxy or to direct connections with "
                         "no client-visible errors)")
    kv.add_argument("--no-view-push", action="store_true",
                    help="disable control-plane view pushes to the proxies "
                         "(live rebalances are then discovered via "
                         "stale-epoch bounces only)")
    kv.add_argument("--proxies", type=int, default=0, metavar="N",
                    help="route clients through N site-local ingress proxies "
                         "(round-robin) that merge quorum rounds across "
                         "clients into shared replica frames; 0 = direct")
    kv.add_argument("--read-cache", type=int, default=0, metavar="N",
                    help="give each ingress proxy an N-entry LRU read cache "
                         "backed by server-granted leases (requires "
                         "--proxies); hot-key reads are served at the proxy "
                         "with no replica round, writes invalidate before "
                         "they ack, so atomicity is preserved")
    kv.add_argument("--lease-ttl", type=float, default=None, metavar="T",
                    help="read-lease duration (sim: virtual time units, "
                         "default 60; asyncio: wall-clock seconds, default "
                         "1.0); longer leases raise the hit rate but extend "
                         "how long a crashed proxy can defer writers")
    kv.add_argument("--bounded-staleness", action="store_true",
                    help="serve expired-but-uninvalidated cache entries for "
                         "another half lease TTL: reads trade atomicity for "
                         "a staleness bound (checked by the staleness "
                         "checker instead of the atomicity checker)")
    kv.add_argument("--autoscale", action="store_true",
                    help="arm the metrics-driven autoscaler: the control "
                         "plane folds per-group served-op counts and moves "
                         "the hottest group's hottest shard to the coldest "
                         "group via incremental drains")
    kv.add_argument("--drain-range-size", type=int, default=None, metavar="K",
                    help="keys per drained range during live rebalances; "
                         "bounds the per-range cutover pause (default: "
                         f"{DRAIN_RANGE_SIZE})")
    kv.add_argument("--workload", default="zipf:0.8", metavar="SHAPE",
                    help="key-popularity shape: 'uniform' or 'zipf:<s>' "
                         "with skew exponent s, e.g. zipf:1.2 (default: "
                         "zipf:0.8)")
    kv.add_argument("--clients", type=int, default=4)
    kv.add_argument("--ops", type=int, default=30, help="operations per client")
    kv.add_argument("--keys", type=int, default=32)
    kv.add_argument("--read-fraction", type=float, default=0.7)
    kv.add_argument("--batch", type=int, default=8, help="max sub-ops per batch frame")
    kv.add_argument("--pipeline", type=int, default=4,
                    help="operations in flight per client")
    kv.add_argument("--crashes", type=int, default=0, metavar="N",
                    help="crash N random replicas per group mid-run (sim "
                         "backend only; capped at each group's fault budget, "
                         "victims drawn from the run's --seed)")
    kv.add_argument("--seed", type=int, default=0,
                    help="seed for workload generation and crash-victim "
                         "selection; the same seed reproduces the same run "
                         "on either backend")
    kv.add_argument("--trace-dump", metavar="PATH", default=None,
                    help="write cross-tier span trees (one per operation, "
                         "client -> proxy -> replica) to PATH as JSON")
    kv.add_argument("--metrics-dump", metavar="PATH", default=None,
                    help="write the run's per-tier metrics snapshot "
                         "(counters + latency histograms) to PATH as JSON")
    return parser


def _command_run(args: argparse.Namespace) -> int:
    protocol = build_protocol(
        args.protocol,
        server_ids(args.servers),
        args.faults,
        readers=args.readers,
        writers=args.writers,
    )
    simulation = Simulation(protocol, delay_model=UniformDelay(0.5, 1.5, seed=args.seed))
    workload = uniform_open_loop(
        client_ids("w", protocol.writers),
        client_ids("r", args.readers),
        writes_per_writer=args.writes,
        reads_per_reader=args.reads,
        horizon=40.0 * max(args.writes, args.reads),
        seed=args.seed,
    )
    apply_open_loop(simulation, workload)
    if args.crash and args.faults >= 1:
        simulation.crash_server(f"s{args.servers}", at=20.0)
    result = simulation.run()
    verdict = check_atomicity(result.history)
    staleness = measure_staleness(result.history)
    writes, reads = result.history.round_trip_counts()

    print(f"protocol           : {protocol.name}")
    print(f"configuration      : S={args.servers} t={args.faults} "
          f"W={protocol.writers} R={args.readers} seed={args.seed}")
    print(f"operations         : {len(result.history.complete_operations)} completed "
          f"({len(result.history.pending_operations)} pending)")
    print(f"round-trips (w/r)  : {max(writes, default=0)}/{max(reads, default=0)} worst case")
    print(f"messages sent      : {result.messages_sent}")
    print(f"atomicity          : {verdict.summary()}")
    print(f"staleness          : {staleness.summary()}")
    return 0 if verdict.atomic else 1


def _command_table1(args: argparse.Namespace) -> int:
    params = SystemParameters(args.servers, 2, 2, args.faults)
    print(f"configuration: {params.describe()}  "
          f"(fast-read bound S/t-2 = {fast_read_bound(args.servers, args.faults):.2f})")
    theoretical = theoretical_table(params)
    empirical = empirical_table(params, seeds=tuple(range(args.seeds)), bursts=3)
    print(format_table(theoretical, empirical))
    mismatches = [row for row in empirical if not row.matches_expectation]
    return 1 if mismatches else 0


def _command_prove(args: argparse.Namespace) -> int:
    outcomes = refute_all(NATURAL_RULES, num_servers=args.servers)
    rows = [
        {
            "rule": outcome.rule_name,
            "critical server": f"s{outcome.critical_index}" if outcome.critical_index else "-",
            "violating execution": outcome.witness.execution.name if outcome.witness else "-",
            "links verified": outcome.certificate.all_verified if outcome.certificate else "-",
        }
        for outcome in outcomes
    ]
    print(format_rows(rows, ["rule", "critical server", "violating execution", "links verified"]))
    return 0 if all(outcome.refuted for outcome in outcomes) else 1


def _command_boundary(args: argparse.Namespace) -> int:
    rows = []
    exit_code = 0
    for servers in range(max(3, 2 * args.faults + 1), args.max_servers + 1):
        if 2 * args.faults >= servers:
            continue
        result = run_fig9_experiment(servers, args.faults, args.readers)
        impossible = args.readers >= fast_read_bound(servers, args.faults)
        if impossible != result.violation_found:
            exit_code = 1
        rows.append(
            {
                "S": servers,
                "t": args.faults,
                "R": args.readers,
                "S/t-2": f"{fast_read_bound(servers, args.faults):.2f}",
                "impossible (theory)": impossible,
                "violation observed": result.violation_found,
            }
        )
    print(format_rows(rows, ["S", "t", "R", "S/t-2", "impossible (theory)", "violation observed"]))
    return exit_code


def _command_latency(args: argparse.Namespace) -> int:
    metrics = []
    for key in args.protocols:
        config = BenchConfig(
            protocol_key=key,
            servers=args.servers,
            max_faults=1,
            writes_per_writer=4,
            reads_per_reader=10,
            horizon=2000.0 if args.delay == "geo" else 200.0,
            seed=1,
        )
        if args.delay == "geo":
            sites = {}
            for index, name in enumerate(
                server_ids(args.servers) + client_ids("w", 2) + client_ids("r", 2)
            ):
                sites[name] = ("us", "eu", "ap")[index % 3]
            delay = GeoDelay(sites, local_delay=0.5, wan_delay=40.0, seed=1)
        else:
            delay = UniformDelay(0.5, 1.5, seed=1)
        metrics.append(run_simulated_benchmark(config, delay_model=delay))
    print(format_metrics_table(metrics))
    return 0


def _parse_workload_shape(shape: str) -> float:
    """``uniform`` or ``zipf:<s>`` -> the key-skew exponent."""
    if shape == "uniform":
        return 0.0
    if shape.startswith("zipf:"):
        try:
            skew = float(shape.split(":", 1)[1])
        except ValueError:
            raise SystemExit(f"--workload: bad zipf skew in {shape!r}")
        if skew <= 0:
            raise SystemExit("--workload: zipf skew must be positive "
                             "(use 'uniform' for no skew)")
        return skew
    raise SystemExit(f"--workload must be 'uniform' or 'zipf:<s>', got {shape!r}")


def _command_kv(args: argparse.Namespace) -> int:
    if args.resize_after is not None and args.resize_to is None:
        raise SystemExit("--resize-after requires --resize-to")
    if args.kill_proxy_after is not None and args.proxies <= 0:
        raise SystemExit("--kill-proxy-after requires --proxies")
    if args.crashes > 0 and args.backend != "sim":
        raise SystemExit("--crashes requires the sim backend")
    if args.read_cache > 0 and args.proxies <= 0:
        raise SystemExit("--read-cache requires --proxies")
    if (args.lease_ttl is not None or args.bounded_staleness) and args.read_cache <= 0:
        raise SystemExit("--lease-ttl/--bounded-staleness require --read-cache")
    # One seed drives every RNG of the run -- the workload shape here and
    # (on the simulator) the crash-victim draw below -- so a CLI run is
    # reproduced exactly by repeating its --seed.
    workload = generate_workload(
        num_clients=args.clients,
        ops_per_client=args.ops,
        num_keys=args.keys,
        read_fraction=args.read_fraction,
        key_skew=_parse_workload_shape(args.workload),
        pipeline_depth=args.pipeline,
        seed=args.seed,
    )
    common = dict(
        num_shards=args.shards,
        protocol_key=args.protocol,
        servers_per_shard=args.servers_per_shard,
        max_faults=args.faults,
        max_batch=args.batch,
        num_groups=args.groups,
        resize_to=args.resize_to,
        resize_after_ops=args.resize_after,
        use_proxy=args.proxies > 0,
        num_proxies=max(args.proxies, 1),
        push_views=not args.no_view_push,
        kill_proxy_after_ops=args.kill_proxy_after,
        autoscale=args.autoscale,
        read_cache=args.read_cache,
        bounded_staleness=args.bounded_staleness,
    )
    if args.lease_ttl is not None:
        # Only forwarded when given: the backends' defaults differ (the
        # sim's virtual clock vs. wall-clock seconds on asyncio).
        common["lease_ttl"] = args.lease_ttl
    if args.drain_range_size is not None:
        common["drain_range_size"] = args.drain_range_size
    trace_collector = TraceCollector() if args.trace_dump else None
    if trace_collector is not None:
        common["trace_collector"] = trace_collector
    if args.backend == "sim":
        result = run_sim_kv_workload(
            workload,
            crashes_per_group=args.crashes,
            crash_seed=args.seed,
            **common,
        )
        time_unit = "virtual time units"
    else:
        result = run_asyncio_kv_workload(workload, **common)
        time_unit = "seconds"
    verdict = result.check()

    groups = result.num_groups or args.shards
    print(f"backend            : {result.backend}")
    print(f"configuration      : {args.shards} shards on {groups} groups x "
          f"{args.servers_per_shard} replicas ({args.protocol}, t={args.faults}), "
          f"{args.clients} clients, {args.keys} keys, pipeline {args.pipeline}")
    print(f"operations         : {result.completed_ops} completed "
          f"({workload.total_operations()} scheduled)")
    print(f"duration           : {result.duration:.3f} {time_unit}")
    print(f"throughput         : {result.throughput():.2f} ops per time unit")
    print(f"batching           : {result.batch_stats.summary()}")
    print(f"messages sent      : {result.messages_sent} frames")
    print(f"frames             : {result.frames_sent} sent / {result.frames_total} "
          f"total across tiers; {result.replica_frames} served by replicas "
          f"({result.replica_frames_per_op():.2f} per op)")
    if result.num_proxies:
        print(f"proxy tier         : {result.num_proxies} proxies, "
              f"{result.proxy_stats.summary()}")
    print(f"read latency p50   : {result.read_stats().p50:.3f}")
    if result.metrics and "client" in result.metrics:
        latency = result.metrics["client"]["histograms"]["op_latency"]
        print(f"op latency         : p50 {latency['p50']:.3f} / "
              f"p95 {latency['p95']:.3f} / p99 {latency['p99']:.3f}")
    if result.cache is not None:
        print(f"read cache         : {result.cache_hit_rate():.1%} hit rate "
              f"({result.cache['hits']} hits / {result.cache['misses']} "
              f"misses), {result.cache['invalidations']} invalidations, "
              f"{result.cache['lease_expiries']} lease expiries")
    # Resilience counters print unconditionally (zeroes included) on both
    # backends -- a quiet run should say so, not hide the line.  Drain
    # bounces (rounds parked behind a draining range) and cache
    # invalidations are distinct churn sources and are reported apart.
    print(f"resilience         : {result.stale_replays} stale replays, "
          f"{result.proxy_failovers} proxy failovers, "
          f"{result.stale_bounces} replica bounces, "
          f"{result.drain_backoffs} drain bounces, "
          f"{(result.cache or {}).get('invalidations', 0)} cache invalidations")
    if result.resize:
        print(f"live resize        : -> {result.resize['to']} shards after "
              f"{result.resize['at_ops']} ops; {result.resize['report']}; "
              f"{result.stale_replays} rounds replayed; "
              f"{result.view_pushes} view pushes applied")
    if result.autoscale is not None:
        actions = result.autoscale["actions"]
        moved = ", ".join(
            f"{a['shard']}: {a['from']} -> {a['to']}" for a in actions
        ) or "no moves (load stayed balanced)"
        print(f"autoscaler         : {len(actions)} actions; "
              f"{result.autoscale['drains_completed']} drains / "
              f"{result.autoscale['ranges_drained']} ranges; {moved}")
    if result.proxy_kill:
        print(f"proxy kill         : killed {result.proxy_kill['killed']} after "
              f"{result.proxy_kill['at_ops']} ops; "
              f"{result.proxy_failovers} client failovers; "
              f"{result.completed_ops}/{workload.total_operations()} ops "
              "completed")
    if trace_collector is not None:
        dumped = trace_collector.dump(args.trace_dump)
        print(f"trace dump         : {dumped} span trees -> {args.trace_dump}")
    if args.metrics_dump and result.metrics is not None:
        with open(args.metrics_dump, "w", encoding="utf-8") as handle:
            json.dump(result.metrics, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"metrics dump       : {sorted(result.metrics)} tiers "
              f"-> {args.metrics_dump}")
    print(f"atomicity          : {verdict.summary()}")
    return 0 if verdict.all_atomic else 1


_COMMANDS = {
    "run": _command_run,
    "table1": _command_table1,
    "prove": _command_prove,
    "boundary": _command_boundary,
    "latency": _command_latency,
    "kv": _command_kv,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
