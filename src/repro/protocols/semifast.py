"""A semifast single-writer register (related-work baseline).

Georgiou, Nicolaou and Shvartsman [14] introduced *semifast* implementations:
single-writer registers where writes are fast and almost all reads are fast,
with an occasional two-round-trip read.  The paper under reproduction cites
the result that semifast implementations do not exist for multiple writers,
and notes that its own W1R2 impossibility is strictly stronger.  We include a
semifast SWMR implementation so the latency benchmarks can show the middle
ground between the always-slow and always-fast designs.

Simplified rule (sufficient for atomicity in the SWMR crash model, and checked
by the test suite against the atomicity checker):

* ``write(v)``: one round-trip with the writer's local counter (as in ABD
  SWMR).
* ``read()``: query all servers; if the largest tag observed was reported by
  **every** responding server, the value is already stable on ``S - t``
  servers and the read returns immediately (fast path).  Otherwise the read
  performs a write-back round-trip (slow path) before returning.
"""

from __future__ import annotations

from typing import Any

from ..core.errors import ConfigurationError
from ..core.operations import OpKind
from ..core.timestamps import BOTTOM_TAG
from .abd_swmr import AbdSwmrWriter
from .base import Broadcast, ClientLogic, OperationOutcome, RegisterProtocol, ServerLogic
from .codec import decode_tag, encode_tag
from .server_state import TagValueServer

__all__ = ["SemifastReader", "SemifastSwmrProtocol"]


class SemifastReader(ClientLogic):
    """Reader with a fast path when the newest value is already stable."""

    def __init__(self, client_id: str, servers, max_faults: int) -> None:
        super().__init__(client_id, servers, max_faults)
        self.fast_reads = 0
        self.slow_reads = 0

    def write_protocol(self, value: Any):
        raise NotImplementedError("readers do not write")
        yield  # pragma: no cover

    def read_protocol(self):
        acks = yield Broadcast("query")
        best_tag = BOTTOM_TAG
        best_value = None
        for ack in acks:
            tag = decode_tag(ack.payload["tag"])
            if tag > best_tag:
                best_tag = tag
                best_value = ack.payload.get("value")
        stable = all(decode_tag(a.payload["tag"]) == best_tag for a in acks)
        if stable:
            self.fast_reads += 1
            return OperationOutcome(
                OpKind.READ, value=best_value, tag=best_tag, metadata={"fast_path": True}
            )
        self.slow_reads += 1
        yield Broadcast("update", {"tag": encode_tag(best_tag), "value": best_value})
        return OperationOutcome(
            OpKind.READ, value=best_value, tag=best_tag, metadata={"fast_path": False}
        )


class SemifastSwmrProtocol(RegisterProtocol):
    """Factory for the semifast single-writer register."""

    name = "semifast swmr"
    write_round_trips = 1
    read_round_trips = 2  # worst case; most reads take 1
    multi_writer = False

    def validate_configuration(self) -> None:
        if self.writers != 1:
            raise ConfigurationError(
                "semifast implementations exist only for a single writer [14]"
            )
        if 2 * self.max_faults >= len(self.servers):
            raise ConfigurationError(
                f"need t < S/2 (got t={self.max_faults}, S={len(self.servers)})"
            )

    def make_server(self, server_id: str) -> ServerLogic:
        return TagValueServer(server_id)

    def make_writer(self, writer_id: str) -> ClientLogic:
        return AbdSwmrWriter(writer_id, self.servers, self.max_faults)

    def make_reader(self, reader_id: str) -> ClientLogic:
        return SemifastReader(reader_id, self.servers, self.max_faults)
