"""A registry of all register protocols, keyed by design point.

The Table 1 benchmark and the examples iterate over this registry to build
one protocol per design-space quadrant without hard-coding class names
everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from ..core.fastness import DesignPoint
from .abd_mwmr import AbdMwmrProtocol
from .abd_swmr import AbdSwmrProtocol
from .base import RegisterProtocol
from .byzantine_safe import ByzantineSafeMwmrProtocol
from .fast_read_mwmr import FastReadMwmrProtocol
from .fast_rw_attempt import FastReadWriteAttemptProtocol
from .fast_swmr import FastSwmrProtocol
from .fast_write_attempt import FastWriteAttemptProtocol
from .semifast import SemifastSwmrProtocol

__all__ = ["ProtocolSpec", "PROTOCOLS", "protocol_for_point", "build_protocol", "available_protocols"]


@dataclass(frozen=True)
class ProtocolSpec:
    """Metadata describing one protocol in the registry."""

    key: str
    factory: Callable[..., RegisterProtocol]
    design_point: DesignPoint
    multi_writer: bool
    expected_atomic: bool
    description: str


PROTOCOLS: Dict[str, ProtocolSpec] = {
    "abd-mwmr": ProtocolSpec(
        key="abd-mwmr",
        factory=AbdMwmrProtocol,
        design_point=DesignPoint.W2R2,
        multi_writer=True,
        expected_atomic=True,
        description="Lynch-Shvartsman multi-writer ABD (the W2R2 baseline)",
    ),
    "fast-read-mwmr": ProtocolSpec(
        key="fast-read-mwmr",
        factory=FastReadMwmrProtocol,
        design_point=DesignPoint.W2R1,
        multi_writer=True,
        expected_atomic=True,
        description="The paper's W2R1 algorithm (Algorithms 1 & 2), needs R < S/t - 2",
    ),
    "fast-write-attempt": ProtocolSpec(
        key="fast-write-attempt",
        factory=FastWriteAttemptProtocol,
        design_point=DesignPoint.W1R2,
        multi_writer=True,
        expected_atomic=False,
        description="W1R2 candidate; violations realise the paper's impossibility theorem",
    ),
    "fast-rw-attempt": ProtocolSpec(
        key="fast-rw-attempt",
        factory=FastReadWriteAttemptProtocol,
        design_point=DesignPoint.W1R1,
        multi_writer=True,
        expected_atomic=False,
        description="W1R1 candidate; violations realise the DGLV impossibility",
    ),
    "abd-swmr": ProtocolSpec(
        key="abd-swmr",
        factory=AbdSwmrProtocol,
        design_point=DesignPoint.W1R2,
        multi_writer=False,
        expected_atomic=True,
        description="Single-writer ABD (fast writes are possible with one writer)",
    ),
    "fast-swmr": ProtocolSpec(
        key="fast-swmr",
        factory=FastSwmrProtocol,
        design_point=DesignPoint.W1R1,
        multi_writer=False,
        expected_atomic=True,
        description="DGLV fast single-writer register, needs R < S/t - 2",
    ),
    "byzantine-safe-mwmr": ProtocolSpec(
        key="byzantine-safe-mwmr",
        factory=ByzantineSafeMwmrProtocol,
        design_point=DesignPoint.W2R2,
        multi_writer=True,
        expected_atomic=True,
        description="Byzantine-tolerant MW register (S > 4t, vouched reads) -- Section 5.2 extension",
    ),
    "semifast-swmr": ProtocolSpec(
        key="semifast-swmr",
        factory=SemifastSwmrProtocol,
        # Classified by worst-case round-trips (an occasional read is slow);
        # most reads complete in one round-trip.
        design_point=DesignPoint.W1R2,
        multi_writer=False,
        expected_atomic=True,
        description="Semifast single-writer register (related work [14])",
    ),
}


def available_protocols(multi_writer_only: bool = False) -> List[ProtocolSpec]:
    specs = list(PROTOCOLS.values())
    if multi_writer_only:
        specs = [spec for spec in specs if spec.multi_writer]
    return specs


def protocol_for_point(point: DesignPoint, multi_writer: bool = True) -> ProtocolSpec:
    """The canonical protocol for a design point (multi-writer by default)."""
    for spec in PROTOCOLS.values():
        if spec.design_point is point and spec.multi_writer == multi_writer:
            return spec
    raise KeyError(f"no protocol registered for {point} (multi_writer={multi_writer})")


def build_protocol(
    key: str,
    servers: Sequence[str],
    max_faults: int,
    readers: int = 2,
    writers: int = 2,
    **kwargs,
) -> RegisterProtocol:
    """Instantiate a registered protocol, forwarding extra keyword arguments."""
    spec = PROTOCOLS.get(key)
    if spec is None:
        raise KeyError(f"unknown protocol {key!r}; known: {sorted(PROTOCOLS)}")
    if not spec.multi_writer:
        writers = 1
    return spec.factory(
        servers, max_faults, readers=readers, writers=writers, **kwargs
    )
