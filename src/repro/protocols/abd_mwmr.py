"""MW-ABD: the multi-writer, multi-reader W2R2 baseline.

This is the Lynch-Shvartsman style emulation the paper cites as [23] and
lists in Table 1 as the W2R2 design point: both operations use exactly two
round-trips, and the implementation is correct whenever majorities intersect
(``t < S/2``).

* ``write(v)``: round-trip 1 queries all servers and computes ``maxTS``;
  round-trip 2 updates all servers with ``(maxTS + 1, wid)``.
* ``read()``: round-trip 1 queries all servers and picks the largest tagged
  value; round-trip 2 writes that value back (the "read must write" phase
  that atomicity forces), then returns it.
"""

from __future__ import annotations

from typing import Any, List

from ..core.errors import ConfigurationError
from ..core.operations import OpKind
from ..core.timestamps import BOTTOM_TAG, max_tag
from ..messages import Message
from .base import Broadcast, ClientLogic, OperationOutcome, RegisterProtocol, ServerLogic
from .codec import decode_tag, encode_tag
from .server_state import TagValueServer

__all__ = ["AbdMwmrWriter", "AbdMwmrReader", "AbdMwmrProtocol"]


def _best_from_query_acks(acks: List[Message]):
    """Pick the largest (tag, value) pair from query replies."""
    best_tag = BOTTOM_TAG
    best_value = None
    for ack in acks:
        tag = decode_tag(ack.payload["tag"])
        if tag > best_tag:
            best_tag = tag
            best_value = ack.payload.get("value")
    return best_tag, best_value


class AbdMwmrWriter(ClientLogic):
    """Two-round-trip writer: query for ``maxTS`` then update."""

    def write_protocol(self, value: Any):
        acks = yield Broadcast("query")
        max_seen = max_tag(decode_tag(a.payload["tag"]) for a in acks)
        tag = max_seen.successor(self.client_id)
        yield Broadcast("update", {"tag": encode_tag(tag), "value": value})
        return OperationOutcome(OpKind.WRITE, value=value, tag=tag)

    def read_protocol(self):
        raise NotImplementedError("writers do not read")
        yield  # pragma: no cover


class AbdMwmrReader(ClientLogic):
    """Two-round-trip reader: query then write back the chosen value."""

    def write_protocol(self, value: Any):
        raise NotImplementedError("readers do not write")
        yield  # pragma: no cover

    def read_protocol(self):
        acks = yield Broadcast("query")
        tag, value = _best_from_query_acks(acks)
        yield Broadcast("update", {"tag": encode_tag(tag), "value": value})
        return OperationOutcome(OpKind.READ, value=value, tag=tag)


class AbdMwmrProtocol(RegisterProtocol):
    """Factory for the W2R2 multi-writer register emulation."""

    name = "mw-abd (W2R2)"
    write_round_trips = 2
    read_round_trips = 2
    multi_writer = True

    def validate_configuration(self) -> None:
        if 2 * self.max_faults >= len(self.servers):
            raise ConfigurationError(
                "MW-ABD requires t < S/2 "
                f"(got t={self.max_faults}, S={len(self.servers)})"
            )

    def make_server(self, server_id: str) -> ServerLogic:
        return TagValueServer(server_id)

    def make_writer(self, writer_id: str) -> ClientLogic:
        return AbdMwmrWriter(writer_id, self.servers, self.max_faults)

    def make_reader(self, reader_id: str) -> ClientLogic:
        return AbdMwmrReader(reader_id, self.servers, self.max_faults)
