"""Single-writer ABD: fast writes, two-round-trip reads.

The original Attiya-Bar-Noy-Dolev emulation [5] for the single-writer case.
Because there is only one writer, it orders its own writes with a local
counter and needs just one round-trip per write; reads take two round-trips
(query + write-back).  In the paper's taxonomy this is the single-writer
analogue of W1R2 -- the design point the paper proves *impossible* once a
second writer exists, which is why this protocol refuses multi-writer
configurations.
"""

from __future__ import annotations

from typing import Any

from ..core.errors import ConfigurationError
from ..core.operations import OpKind
from ..core.timestamps import Tag
from .abd_mwmr import AbdMwmrReader
from .base import Broadcast, ClientLogic, OperationOutcome, RegisterProtocol, ServerLogic
from .codec import encode_tag
from .server_state import TagValueServer

__all__ = ["AbdSwmrWriter", "AbdSwmrProtocol"]


class AbdSwmrWriter(ClientLogic):
    """The single writer: one update round-trip with a locally managed counter."""

    def __init__(self, client_id: str, servers, max_faults: int) -> None:
        super().__init__(client_id, servers, max_faults)
        self._ts = 0

    def write_protocol(self, value: Any):
        self._ts += 1
        tag = Tag(self._ts, self.client_id)
        yield Broadcast("update", {"tag": encode_tag(tag), "value": value})
        return OperationOutcome(OpKind.WRITE, value=value, tag=tag)

    def read_protocol(self):
        raise NotImplementedError("writers do not read")
        yield  # pragma: no cover


class AbdSwmrProtocol(RegisterProtocol):
    """Factory for the single-writer ABD register emulation."""

    name = "abd-swmr (single-writer W1R2)"
    write_round_trips = 1
    read_round_trips = 2
    multi_writer = False

    def validate_configuration(self) -> None:
        if self.writers != 1:
            raise ConfigurationError(
                "single-writer ABD supports exactly one writer; "
                "the paper proves fast writes impossible with W >= 2"
            )
        if 2 * self.max_faults >= len(self.servers):
            raise ConfigurationError(
                "ABD requires t < S/2 "
                f"(got t={self.max_faults}, S={len(self.servers)})"
            )

    def make_server(self, server_id: str) -> ServerLogic:
        return TagValueServer(server_id)

    def make_writer(self, writer_id: str) -> ClientLogic:
        return AbdSwmrWriter(writer_id, self.servers, self.max_faults)

    def make_reader(self, reader_id: str) -> ClientLogic:
        return AbdMwmrReader(reader_id, self.servers, self.max_faults)
