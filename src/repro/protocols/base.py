"""Protocol framework: round-trip structured register clients and servers.

Section 2.2 of the paper fixes the *algorithm schema* every implementation
follows: a client operation is a sequence of round-trips; in each round-trip
the client contacts all servers (query or update) and waits for replies from
``S - t`` of them.  This module encodes that schema so that

* every protocol's client logic is an ordinary Python **generator** that
  yields :class:`Broadcast` requests and receives lists of reply
  :class:`~repro.sim.messages.Message` objects -- no knowledge of the
  transport, the clock, or asyncio;
* every protocol's server logic is a plain object with a
  ``handle(message) -> Message | None`` method;
* the number of round-trips an operation used is observable from the outside
  (the driver counts the yields), so the design-space classifier never has to
  trust the protocol's own claim.

The same generator-based client logic is executed by three different drivers:
the discrete-event simulator (:mod:`repro.sim.client`), the asyncio transport
(:mod:`repro.asyncio_net.client`), and the synchronous in-process harness used
by unit tests and the proof engine (:class:`DirectDriver` below).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Sequence

from ..core.errors import ProtocolError, QuorumUnavailableError
from ..core.operations import OpKind
from ..core.timestamps import Tag
from ..messages import Message

__all__ = [
    "Broadcast",
    "OperationOutcome",
    "ClientLogic",
    "ServerLogic",
    "RegisterProtocol",
    "DirectDriver",
]

#: Type alias for the generator a client operation is written as: it yields
#: Broadcast requests and is resumed with the list of reply messages.
OperationGenerator = Generator["Broadcast", List[Message], "OperationOutcome"]


@dataclass
class Broadcast:
    """One round-trip: a message broadcast to all servers plus an ack threshold.

    Attributes:
        kind: message kind (e.g. ``"read"`` or ``"write"``), matching the
            names used in Algorithms 1 and 2.
        payload: the payload sent to every server.  If ``per_server_payload``
            is provided it overrides ``payload`` for the listed servers.
        wait_for: how many replies to wait for; ``None`` means the driver's
            default of ``S - t``.
        per_server_payload: optional per-server payload overrides.
    """

    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    wait_for: Optional[int] = None
    per_server_payload: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def payload_for(self, server_id: str) -> Dict[str, Any]:
        if server_id in self.per_server_payload:
            return self.per_server_payload[server_id]
        return self.payload


@dataclass
class OperationOutcome:
    """The result of a completed client operation.

    ``value`` is the returned value for reads (``None`` for writes); ``tag``
    is the ``(ts, wid)`` tag of the value read or written, which the history
    checker uses to match reads to writes exactly.
    """

    kind: OpKind
    value: Any = None
    tag: Optional[Tag] = None
    metadata: Dict[str, Any] = field(default_factory=dict)


class ClientLogic(abc.ABC):
    """Protocol-specific client logic for one client process.

    Subclasses implement the two operation generators.  They may keep local
    state between operations (for example the reader's ``valQueue`` in
    Algorithm 1 or the single writer's local timestamp in ABD).
    """

    def __init__(self, client_id: str, servers: Sequence[str], max_faults: int) -> None:
        self.client_id = client_id
        self.servers = list(servers)
        self.max_faults = max_faults

    @property
    def quorum_size(self) -> int:
        return len(self.servers) - self.max_faults

    @abc.abstractmethod
    def write_protocol(self, value: Any) -> OperationGenerator:
        """Generator implementing ``write(value)``."""

    @abc.abstractmethod
    def read_protocol(self) -> OperationGenerator:
        """Generator implementing ``read()``."""


class ServerLogic(abc.ABC):
    """Protocol-specific server logic for one server replica."""

    def __init__(self, server_id: str) -> None:
        self.server_id = server_id

    @abc.abstractmethod
    def handle(self, message: Message) -> Optional[Message]:
        """Process one request and return the reply (or None)."""

    # -- state migration (live rebalancing) ------------------------------------
    #
    # The kv-store's incremental drain moves per-key register state between
    # replicas as JSON-safe blobs: ``export_state`` snapshots this replica's
    # contribution, ``absorb_state`` merges a blob into the local state (on a
    # fresh register this is a restore; merging the same blob twice is a
    # no-op, which is what makes duplicated transfer frames harmless).

    def export_state(self) -> Dict[str, Any]:
        """A JSON-safe snapshot of this replica's register state."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support state migration"
        )

    def absorb_state(self, blob: Dict[str, Any]) -> None:
        """Merge an exported snapshot into the local state (idempotent)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support state migration"
        )


class RegisterProtocol(abc.ABC):
    """A factory bundling the client and server logic of one implementation.

    A protocol also declares its *claimed* design point (how many round-trips
    its operations take) and the feasibility condition it requires; both are
    checked against observed behaviour by the test suite and the design-space
    benchmark.
    """

    #: Human-readable protocol name.
    name: str = "abstract"
    #: Claimed worst-case write round-trips.
    write_round_trips: int = 2
    #: Claimed worst-case read round-trips.
    read_round_trips: int = 2
    #: Whether the protocol supports multiple writers.
    multi_writer: bool = True
    #: Server-message kinds that mutate register state.  The lease fence of
    #: the proxy read cache keys on this: a mutating sub-request against a
    #: leased key is deferred until the lease holders release, while pure
    #: queries are served immediately.  Covers the tag/value protocols
    #: ("update") and the value-vector family ("write").
    mutating_kinds: frozenset = frozenset({"update", "write"})

    def __init__(self, servers: Sequence[str], max_faults: int, readers: int = 2,
                 writers: int = 2) -> None:
        self.servers = list(servers)
        self.max_faults = max_faults
        self.readers = readers
        self.writers = writers
        self.validate_configuration()

    def validate_configuration(self) -> None:
        """Raise ``ConfigurationError`` if the protocol cannot be correct here.

        The default accepts anything; subclasses override to enforce e.g.
        ``t < S/2`` or ``R < S/t - 2``.
        """

    @abc.abstractmethod
    def make_server(self, server_id: str) -> ServerLogic:
        """Create the logic object for one server replica."""

    @abc.abstractmethod
    def make_writer(self, writer_id: str) -> ClientLogic:
        """Create the client logic for one writer."""

    @abc.abstractmethod
    def make_reader(self, reader_id: str) -> ClientLogic:
        """Create the client logic for one reader."""

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "write_round_trips": self.write_round_trips,
            "read_round_trips": self.read_round_trips,
            "servers": len(self.servers),
            "max_faults": self.max_faults,
            "readers": self.readers,
            "writers": self.writers,
        }


class DirectDriver:
    """Synchronous in-process driver for client operation generators.

    Useful for unit tests of protocol logic and for the proof engine: it
    delivers every round-trip to a chosen subset of server logic objects
    immediately, in a caller-controlled order, with no clock or network in
    between.  It is *not* used for end-to-end histories (the simulator is).
    """

    def __init__(self, servers: Dict[str, ServerLogic], max_faults: int) -> None:
        self.servers = dict(servers)
        self.max_faults = max_faults

    def run_operation(
        self,
        client_logic: ClientLogic,
        generator: OperationGenerator,
        op_id: str,
        respond_from: Optional[Sequence[str]] = None,
        server_order: Optional[Sequence[str]] = None,
    ) -> OperationOutcome:
        """Run one operation to completion.

        ``respond_from`` selects which servers' replies are handed back to the
        client (default: the first ``S - t`` in ``server_order``);
        ``server_order`` controls the order servers process the broadcast.
        """
        order = list(server_order) if server_order is not None else list(self.servers)
        quorum = len(self.servers) - self.max_faults
        responders = list(respond_from) if respond_from is not None else order[:quorum]
        round_trip = 0
        try:
            request = next(generator)
            while True:
                round_trip += 1
                replies: List[Message] = []
                for server_id in order:
                    logic = self.servers[server_id]
                    msg = Message(
                        sender=client_logic.client_id,
                        receiver=server_id,
                        kind=request.kind,
                        payload=request.payload_for(server_id),
                        op_id=op_id,
                        round_trip=round_trip,
                    )
                    reply = logic.handle(msg)
                    if reply is not None and server_id in responders:
                        replies.append(reply)
                needed = request.wait_for if request.wait_for is not None else quorum
                if len(replies) < needed:
                    raise QuorumUnavailableError(
                        f"only {len(replies)} replies available, need {needed}"
                    )
                request = generator.send(replies[:needed] if needed else replies)
        except StopIteration as stop:
            outcome = stop.value
            if not isinstance(outcome, OperationOutcome):
                raise ProtocolError(
                    "operation generator must return an OperationOutcome"
                )
            outcome.metadata.setdefault("round_trips", round_trip)
            return outcome
