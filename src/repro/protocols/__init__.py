"""Register protocol implementations across the design space of Table 1."""

from .abd_mwmr import AbdMwmrProtocol, AbdMwmrReader, AbdMwmrWriter
from .abd_swmr import AbdSwmrProtocol, AbdSwmrWriter
from .base import (
    Broadcast,
    ClientLogic,
    DirectDriver,
    OperationOutcome,
    RegisterProtocol,
    ServerLogic,
)
from .byzantine_safe import (
    ByzantineSafeMwmrProtocol,
    ByzantineSafeReader,
    ByzantineSafeWriter,
    vouched_pairs,
)
from .codec import decode_tag, decode_tagged, encode_tag, encode_tagged
from .fast_read_mwmr import FastReadMwmrProtocol, FastReadReader, FastReadWriter
from .fast_rw_attempt import FastReadWriteAttemptProtocol, NaiveFastReader
from .fast_swmr import FastSwmrProtocol, FastSwmrWriter
from .fast_write_attempt import FastWriteAttemptProtocol, LocalClockWriter
from .registry import (
    PROTOCOLS,
    ProtocolSpec,
    available_protocols,
    build_protocol,
    protocol_for_point,
)
from .semifast import SemifastReader, SemifastSwmrProtocol
from .server_state import TagValueServer, ValueVectorEntry, ValueVectorServer

__all__ = [
    "AbdMwmrProtocol",
    "AbdMwmrReader",
    "AbdMwmrWriter",
    "AbdSwmrProtocol",
    "AbdSwmrWriter",
    "ByzantineSafeMwmrProtocol",
    "ByzantineSafeReader",
    "ByzantineSafeWriter",
    "vouched_pairs",
    "Broadcast",
    "ClientLogic",
    "DirectDriver",
    "OperationOutcome",
    "RegisterProtocol",
    "ServerLogic",
    "decode_tag",
    "decode_tagged",
    "encode_tag",
    "encode_tagged",
    "FastReadMwmrProtocol",
    "FastReadReader",
    "FastReadWriter",
    "FastReadWriteAttemptProtocol",
    "NaiveFastReader",
    "FastSwmrProtocol",
    "FastSwmrWriter",
    "FastWriteAttemptProtocol",
    "LocalClockWriter",
    "PROTOCOLS",
    "ProtocolSpec",
    "available_protocols",
    "build_protocol",
    "protocol_for_point",
    "SemifastReader",
    "SemifastSwmrProtocol",
    "TagValueServer",
    "ValueVectorEntry",
    "ValueVectorServer",
]
