"""The paper's W2R1 implementation: two-round-trip writes, one-round-trip reads.

This is Algorithms 1 and 2 of the paper (Appendix A), the constructive half of
its Table 1 contribution: a multi-writer atomic register whose *reads finish
in a single round-trip*, correct exactly when ``R < S/t - 2``.

Write (two round-trips, Algorithm 1 lines 5-13):
    1. query all servers (an ordinary ``read`` message with an empty queue)
       and compute ``maxTS`` from the ``S - t`` replies;
    2. update all servers with ``(maxTS + 1, w_i)`` and wait for ``S - t``
       WRITEACKs.

Read (one round-trip, Algorithm 1 lines 18-31):
    1. send ``(read, valQueue)`` to all servers -- ``valQueue`` carries every
       value the reader has previously received, so servers can record the
       reader in those values' ``updated`` sets;
    2. from the ``S - t`` READACKs, return the **largest admissible** value,
       where admissibility with degree ``a ∈ [1, R+1]`` is the predicate in
       :mod:`repro.core.admissible`.

The protocol refuses configurations with ``R >= S/t - 2``: Section 5.1 of the
paper proves no correct W2R1 implementation exists there, and the Fig. 9
benchmark exercises exactly that regime by instantiating this protocol with
``enforce_condition=False``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.admissible import ReadAck, ValueReport, select_return_value
from ..core.errors import ConfigurationError
from ..core.operations import OpKind
from ..core.timestamps import BOTTOM_TAG, Tag, max_tag
from ..messages import Message
from .base import Broadcast, ClientLogic, OperationOutcome, RegisterProtocol, ServerLogic
from .codec import decode_tag, encode_tag
from .server_state import ValueVectorServer

__all__ = ["FastReadWriter", "FastReadReader", "FastReadMwmrProtocol"]


def _acks_to_read_acks(acks: List[Message]) -> List[ReadAck]:
    """Convert raw READACK messages into the checker-friendly representation."""
    result: List[ReadAck] = []
    for ack in acks:
        vector = ack.payload.get("vector", {})
        reports: Dict[Tag, ValueReport] = {}
        best = BOTTOM_TAG
        for encoded, entry in vector.items():
            tag = decode_tag(encoded)
            reports[tag] = ValueReport.of(tag, entry.get("updated", ()))
            if tag > best:
                best = tag
        result.append(ReadAck(server=ack.sender, reports=reports, max_tag=best))
    return result


def _value_of(acks: List[ReadAck], raw_acks: List[Message], tag: Tag) -> Any:
    for ack in raw_acks:
        vector = ack.payload.get("vector", {})
        entry = vector.get(encode_tag(tag))
        if entry is not None and entry.get("value") is not None:
            return entry.get("value")
    return None


class FastReadWriter(ClientLogic):
    """Two-round-trip writer (identical structure to MW-ABD's writer)."""

    def write_protocol(self, value: Any):
        acks = yield Broadcast("read", {"val_queue": {}})
        observed = []
        for ack in acks:
            for encoded in ack.payload.get("vector", {}):
                observed.append(decode_tag(encoded))
        tag = max_tag(observed).successor(self.client_id)
        yield Broadcast("write", {"tag": encode_tag(tag), "value": value})
        return OperationOutcome(OpKind.WRITE, value=value, tag=tag)

    def read_protocol(self):
        raise NotImplementedError("writers do not read")
        yield  # pragma: no cover


class FastReadReader(ClientLogic):
    """One-round-trip reader using the admissibility predicate.

    ``readers`` is the total number of readers ``R`` in the system: the
    admissibility degree ranges over ``[1, R + 1]`` (Algorithm 1 line 25).

    With ``naive=True`` the reader skips the admissibility predicate and
    simply returns the largest tag it saw -- this is *not* the paper's
    algorithm; it exists for the ablation experiment that shows why the
    predicate is necessary.
    """

    def __init__(
        self,
        client_id: str,
        servers,
        max_faults: int,
        readers: int,
        naive: bool = False,
    ) -> None:
        super().__init__(client_id, servers, max_faults)
        self.readers = readers
        self.naive = naive
        #: ``valQueue`` of Algorithm 1: every tagged value this reader has
        #: received, re-sent to servers on each read.
        self.val_queue: Dict[Tag, Any] = {BOTTOM_TAG: None}

    def write_protocol(self, value: Any):
        raise NotImplementedError("readers do not write")
        yield  # pragma: no cover

    def read_protocol(self):
        encoded_queue = {encode_tag(tag): value for tag, value in self.val_queue.items()}
        raw_acks = yield Broadcast("read", {"val_queue": encoded_queue})
        acks = _acks_to_read_acks(raw_acks)

        # valQueue <- (union of received values) union valQueue  (line 22)
        for ack, raw in zip(acks, raw_acks):
            vector = raw.payload.get("vector", {})
            for encoded, entry in vector.items():
                tag = decode_tag(encoded)
                if tag not in self.val_queue or self.val_queue[tag] is None:
                    self.val_queue[tag] = entry.get("value")

        if self.naive:
            chosen = max((ack.max_tag for ack in acks), default=BOTTOM_TAG)
        else:
            chosen, _ = select_return_value(
                acks,
                total_servers=len(self.servers),
                max_faults=self.max_faults,
                max_degree=self.readers + 1,
            )
            if chosen is None:
                # Lemma 3 guarantees the reader's own previous value is
                # admissible; reaching this branch indicates a configuration
                # outside the protocol's feasibility condition.
                chosen = max(self.val_queue)
        value = self.val_queue.get(chosen)
        if value is None:
            value = _value_of(acks, raw_acks, chosen)
        return OperationOutcome(OpKind.READ, value=value, tag=chosen)


class FastReadMwmrProtocol(RegisterProtocol):
    """Factory for the paper's fast-read multi-writer register."""

    name = "fast-read mwmr (W2R1, this paper)"
    write_round_trips = 2
    read_round_trips = 1
    multi_writer = True

    def __init__(
        self,
        servers,
        max_faults: int,
        readers: int = 2,
        writers: int = 2,
        enforce_condition: bool = True,
        naive_reads: bool = False,
        prune_vector_to: Optional[int] = None,
    ) -> None:
        self.enforce_condition = enforce_condition
        self.naive_reads = naive_reads
        self.prune_vector_to = prune_vector_to
        super().__init__(servers, max_faults, readers=readers, writers=writers)

    def validate_configuration(self) -> None:
        if 2 * self.max_faults >= len(self.servers):
            raise ConfigurationError(
                "fast-read protocol still needs t < S/2 "
                f"(got t={self.max_faults}, S={len(self.servers)})"
            )
        if not self.enforce_condition:
            return
        if self.max_faults > 0 and self.readers >= len(self.servers) / self.max_faults - 2:
            raise ConfigurationError(
                "fast reads require R < S/t - 2 "
                f"(got R={self.readers}, S={len(self.servers)}, t={self.max_faults}); "
                "pass enforce_condition=False to study the infeasible regime"
            )

    def make_server(self, server_id: str) -> ServerLogic:
        return ValueVectorServer(server_id, prune_to=self.prune_vector_to)

    def make_writer(self, writer_id: str) -> ClientLogic:
        return FastReadWriter(writer_id, self.servers, self.max_faults)

    def make_reader(self, reader_id: str) -> ClientLogic:
        return FastReadReader(
            reader_id,
            self.servers,
            self.max_faults,
            readers=self.readers,
            naive=self.naive_reads,
        )
