"""Encoding of tags and values into JSON-friendly message payloads.

Message payloads must survive a round-trip through JSON for the asyncio
transport, so tags are encoded as ``"ts:wid"`` strings and decoded back into
:class:`~repro.core.timestamps.Tag` objects at the receiver.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from ..core.timestamps import Tag

__all__ = ["encode_tag", "decode_tag", "encode_tagged", "decode_tagged"]

_SEPARATOR = "|"


def encode_tag(tag: Tag) -> str:
    """Encode a tag as a sortable-enough, JSON-safe string."""
    return f"{tag.ts}{_SEPARATOR}{tag.wid}"


def decode_tag(encoded: str) -> Tag:
    """Inverse of :func:`encode_tag`."""
    ts_part, _, wid = encoded.partition(_SEPARATOR)
    return Tag(int(ts_part), wid)


def encode_tagged(tag: Tag, value: Any) -> Dict[str, Any]:
    return {"tag": encode_tag(tag), "value": value}


def decode_tagged(payload: Dict[str, Any]) -> Tuple[Tag, Any]:
    return decode_tag(payload["tag"]), payload.get("value")
