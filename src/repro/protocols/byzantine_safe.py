"""A Byzantine-fault-tolerant multi-writer register (W2R2, extension).

Section 5.2 of the paper remarks that its W2R1 implementation "can be
extended to further tolerate Byzantine failures", following the single-writer
treatment in DGLV.  This module provides the substrate for studying that
direction: a multi-writer register that stays atomic and never returns
fabricated data when up to ``t`` of the ``S`` servers are Byzantine
(arbitrarily corrupting their replies), at the cost of a larger replication
factor.

Design (a vouching variant of MW-ABD):

* ``S > 4t`` servers; every round-trip waits for ``S - t`` replies.
* A reader only *considers* a ``(tag, value)`` pair that at least ``t + 1``
  of the replies report identically -- at least one of those replies comes
  from a correct server, so the pair was really written (no fabricated
  values, no inflated tags).
* The reader picks the largest vouched pair and writes it back before
  returning (two round-trips), so any later read finds it vouched as well:
  of the ``S - t`` write-back acks at least ``S - 2t`` land on correct
  servers, and a later read's ``S - t`` replies include at least
  ``S - 3t >= t + 1`` of them.
* Writers are unchanged from MW-ABD except that the query phase applies the
  same vouching rule when computing ``maxTS`` (so a Byzantine server cannot
  force a writer to exhaust the tag space or collide with a fabricated tag).

The protocol intentionally targets the W2R2 design point: the paper's
impossibility results only get stronger under Byzantine faults, and a
Byzantine fast-read register needs the full DGLV machinery that is out of
scope for this reproduction (recorded in DESIGN.md).
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Tuple

from ..core.errors import ConfigurationError
from ..core.operations import OpKind
from ..core.timestamps import BOTTOM_TAG, Tag
from ..messages import Message
from .base import Broadcast, ClientLogic, OperationOutcome, RegisterProtocol, ServerLogic
from .codec import decode_tag, encode_tag
from .server_state import TagValueServer

__all__ = [
    "vouched_pairs",
    "ByzantineSafeWriter",
    "ByzantineSafeReader",
    "ByzantineSafeMwmrProtocol",
]


def vouched_pairs(
    acks: List[Message], min_vouchers: int
) -> Dict[Tuple[str, Any], int]:
    """Count identical ``(tag, value)`` pairs across replies.

    Returns the pairs reported by at least ``min_vouchers`` distinct servers.
    The initial pair ``(BOTTOM, None)`` is always considered vouched: a
    Byzantine server cannot gain anything by fabricating the *absence* of
    data, and requiring vouchers for it would block reads of a fresh
    register.
    """
    counts: Counter = Counter()
    for ack in acks:
        tag = ack.payload.get("tag")
        if tag is None:
            continue
        counts[(tag, _freeze(ack.payload.get("value")))] += 1
    vouched = {
        pair: count for pair, count in counts.items() if count >= min_vouchers
    }
    bottom_key = (encode_tag(BOTTOM_TAG), _freeze(None))
    vouched.setdefault(bottom_key, counts.get(bottom_key, 0))
    return vouched


def _freeze(value: Any) -> Any:
    """Make a payload value hashable for counting."""
    if isinstance(value, (dict, list)):
        return repr(value)
    return value


def _best_vouched(acks: List[Message], min_vouchers: int) -> Tuple[Tag, Any]:
    best_tag = BOTTOM_TAG
    best_value: Any = None
    for (encoded, value), _count in vouched_pairs(acks, min_vouchers).items():
        tag = decode_tag(encoded)
        if tag > best_tag:
            best_tag = tag
            best_value = value
    return best_tag, best_value


class ByzantineSafeWriter(ClientLogic):
    """Two-round-trip writer using only vouched tags for ``maxTS``."""

    def __init__(self, client_id: str, servers, max_faults: int) -> None:
        super().__init__(client_id, servers, max_faults)

    def write_protocol(self, value: Any):
        acks = yield Broadcast("query")
        best_tag, _ = _best_vouched(acks, self.max_faults + 1)
        tag = best_tag.successor(self.client_id)
        yield Broadcast("update", {"tag": encode_tag(tag), "value": value})
        return OperationOutcome(OpKind.WRITE, value=value, tag=tag)

    def read_protocol(self):
        raise NotImplementedError("writers do not read")
        yield  # pragma: no cover


class ByzantineSafeReader(ClientLogic):
    """Two-round-trip reader returning the largest *vouched* pair."""

    def write_protocol(self, value: Any):
        raise NotImplementedError("readers do not write")
        yield  # pragma: no cover

    def read_protocol(self):
        acks = yield Broadcast("query")
        tag, value = _best_vouched(acks, self.max_faults + 1)
        yield Broadcast("update", {"tag": encode_tag(tag), "value": value})
        return OperationOutcome(OpKind.READ, value=value, tag=tag)


class ByzantineSafeMwmrProtocol(RegisterProtocol):
    """Factory for the Byzantine-tolerant multi-writer register."""

    name = "byzantine-safe mwmr (W2R2, S > 4t)"
    write_round_trips = 2
    read_round_trips = 2
    multi_writer = True

    def validate_configuration(self) -> None:
        if len(self.servers) <= 4 * self.max_faults:
            raise ConfigurationError(
                "the Byzantine-safe register requires S > 4t "
                f"(got S={len(self.servers)}, t={self.max_faults})"
            )

    def make_server(self, server_id: str) -> ServerLogic:
        return TagValueServer(server_id)

    def make_writer(self, writer_id: str) -> ClientLogic:
        return ByzantineSafeWriter(writer_id, self.servers, self.max_faults)

    def make_reader(self, reader_id: str) -> ClientLogic:
        return ByzantineSafeReader(reader_id, self.servers, self.max_faults)
