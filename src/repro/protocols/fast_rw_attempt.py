"""A fast read-write (W1R1) *candidate* protocol -- deliberately not atomic.

W1R1 multi-writer implementations are impossible (DGLV, re-stated as the
bottom row of the paper's Table 1).  This candidate combines the one
round-trip local-clock writer with a one round-trip reader that simply
returns the largest tag it sees, without admissibility checking or
write-back.

It exhibits *both* failure modes the theory predicts:

* tag order disagreeing with real-time write order (the W1R2 failure), and
* new/old inversions between readers, because a freshly written value may be
  visible to one reader's quorum but not to the next reader's quorum.
"""

from __future__ import annotations

from typing import Any

from ..core.errors import ConfigurationError
from ..core.operations import OpKind
from ..core.timestamps import BOTTOM_TAG
from .base import Broadcast, ClientLogic, OperationOutcome, RegisterProtocol, ServerLogic
from .codec import decode_tag
from .fast_write_attempt import LocalClockWriter
from .server_state import TagValueServer

__all__ = ["NaiveFastReader", "FastReadWriteAttemptProtocol"]


class NaiveFastReader(ClientLogic):
    """One round-trip reader: return the largest tag observed, no write-back."""

    def write_protocol(self, value: Any):
        raise NotImplementedError("readers do not write")
        yield  # pragma: no cover

    def read_protocol(self):
        acks = yield Broadcast("query")
        best_tag = BOTTOM_TAG
        best_value = None
        for ack in acks:
            tag = decode_tag(ack.payload["tag"])
            if tag > best_tag:
                best_tag = tag
                best_value = ack.payload.get("value")
        return OperationOutcome(OpKind.READ, value=best_value, tag=best_tag)


class FastReadWriteAttemptProtocol(RegisterProtocol):
    """Factory for the (non-atomic) W1R1 candidate."""

    name = "fast-rw attempt (W1R1 candidate, not atomic)"
    write_round_trips = 1
    read_round_trips = 1
    multi_writer = True
    expected_atomic = False

    def validate_configuration(self) -> None:
        if 2 * self.max_faults >= len(self.servers):
            raise ConfigurationError(
                f"need t < S/2 (got t={self.max_faults}, S={len(self.servers)})"
            )

    def make_server(self, server_id: str) -> ServerLogic:
        return TagValueServer(server_id)

    def make_writer(self, writer_id: str) -> ClientLogic:
        return LocalClockWriter(writer_id, self.servers, self.max_faults)

    def make_reader(self, reader_id: str) -> ClientLogic:
        return NaiveFastReader(reader_id, self.servers, self.max_faults)
