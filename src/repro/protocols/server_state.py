"""Server-side state machines shared by the register protocols.

Two server designs cover every protocol in this library:

* :class:`TagValueServer` -- the classic ABD server: it stores the largest
  ``(tag, value)`` pair it has seen and returns it on queries.  Used by the
  W2R2 baseline (MW-ABD), single-writer ABD, and the deliberately "too fast"
  candidate protocols.

* :class:`ValueVectorServer` -- the server of the paper's Algorithm 2: it
  keeps a *value vector* mapping every tag it knows to the value payload and
  the set of clients that have been *updated* with that value.  Reads
  piggyback the reader's ``valQueue``; the server merges it, records the
  reader in the updated set of its current value, and replies with the whole
  vector.  This is what the fast-read (W2R1) and the fast single-writer
  (DGLV-style) protocols use, because the ``updated`` sets are exactly what
  the ``admissible`` predicate inspects.

Both are plain objects operating on :class:`~repro.sim.messages.Message`
values -- no clock, no network -- so they run unchanged under the simulator,
the asyncio transport and the direct in-process driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set

from ..core.timestamps import BOTTOM_TAG, Tag
from ..messages import Message
from .base import ServerLogic
from .codec import decode_tag, encode_tag

__all__ = ["TagValueServer", "ValueVectorEntry", "ValueVectorServer"]


class TagValueServer(ServerLogic):
    """ABD-style server: stores the single largest tagged value.

    Message kinds understood:

    * ``"query"`` -- reply ``"query-ack"`` with the stored tag and value.
    * ``"update"`` -- adopt the value if its tag is larger, reply
      ``"update-ack"`` with the (possibly unchanged) stored tag.
    """

    def __init__(self, server_id: str) -> None:
        super().__init__(server_id)
        self.tag: Tag = BOTTOM_TAG
        self.value: Any = None
        self.queries_served = 0
        self.updates_served = 0

    def handle(self, message: Message) -> Optional[Message]:
        if message.kind == "query":
            self.queries_served += 1
            return message.reply(
                "query-ack",
                {"tag": encode_tag(self.tag), "value": self.value},
            )
        if message.kind == "update":
            self.updates_served += 1
            incoming = decode_tag(message.payload["tag"])
            if incoming > self.tag:
                self.tag = incoming
                self.value = message.payload.get("value")
            return message.reply(
                "update-ack",
                {"tag": encode_tag(self.tag)},
            )
        raise ValueError(f"TagValueServer cannot handle message kind {message.kind!r}")

    # -- state migration ------------------------------------------------------------

    def export_state(self) -> Dict[str, Any]:
        return {"tag": encode_tag(self.tag), "value": self.value}

    def absorb_state(self, blob: Dict[str, Any]) -> None:
        incoming = decode_tag(blob["tag"])
        if incoming > self.tag:
            self.tag = incoming
            self.value = blob.get("value")


@dataclass
class ValueVectorEntry:
    """One entry of the value vector: the payload plus its ``updated`` set."""

    value: Any = None
    updated: Set[str] = field(default_factory=set)


class ValueVectorServer(ServerLogic):
    """The server of the paper's Algorithm 2 (multi-writer DGLV extension).

    State:

    * ``current`` -- the largest tag stored (``vali`` in the pseudocode);
    * ``vector`` -- mapping tag -> :class:`ValueVectorEntry`.

    Message kinds understood:

    * ``"write"`` -- the second round-trip of a write: ``update(val, w)`` then
      reply ``WRITEACK``.
    * ``"read"`` -- a query carrying the client's ``valQueue`` (possibly
      empty): merge the queue, add the requesting client to the updated set of
      the current value, and reply ``READACK`` with the full vector.

    The write protocol's *first* round-trip is an ordinary ``"read"`` with an
    empty queue, exactly as in Algorithm 1 line 6.
    """

    def __init__(self, server_id: str, prune_to: Optional[int] = None) -> None:
        super().__init__(server_id)
        self.current: Tag = BOTTOM_TAG
        self.vector: Dict[Tag, ValueVectorEntry] = {
            BOTTOM_TAG: ValueVectorEntry(value=None, updated=set())
        }
        #: Optional bound on the number of entries kept (largest tags win).
        #: ``None`` keeps everything, which is what the proofs assume.
        self.prune_to = prune_to
        self.reads_served = 0
        self.writes_served = 0

    # -- the update(val, c) procedure of Algorithm 2 -------------------------------

    def update(self, tag: Tag, value: Any, client: str) -> None:
        entry = self.vector.get(tag)
        if entry is None:
            entry = ValueVectorEntry(value=value, updated=set())
            self.vector[tag] = entry
        if value is not None and entry.value is None:
            entry.value = value
        entry.updated.add(client)
        if tag > self.current:
            self.current = tag
        self._prune()

    def _prune(self) -> None:
        if self.prune_to is None or len(self.vector) <= self.prune_to:
            return
        keep = sorted(self.vector, reverse=True)[: self.prune_to]
        keep_set = set(keep)
        keep_set.add(self.current)
        keep_set.add(BOTTOM_TAG)
        self.vector = {tag: self.vector[tag] for tag in self.vector if tag in keep_set}

    # -- message handling -----------------------------------------------------------

    def handle(self, message: Message) -> Optional[Message]:
        if message.kind == "write":
            self.writes_served += 1
            tag = decode_tag(message.payload["tag"])
            self.update(tag, message.payload.get("value"), message.sender)
            return message.reply("WRITEACK", {"tag": encode_tag(self.current)})
        if message.kind == "read":
            self.reads_served += 1
            queue = message.payload.get("val_queue", {})
            for encoded, value in queue.items():
                self.update(decode_tag(encoded), value, message.sender)
            # Record the requesting client in the updated set of the current
            # value before replying -- the step Lemma 8's proof relies on.
            self.update(self.current, self.vector[self.current].value, message.sender)
            return message.reply("READACK", {"vector": self._encode_vector()})
        raise ValueError(
            f"ValueVectorServer cannot handle message kind {message.kind!r}"
        )

    def _encode_vector(self) -> Dict[str, Dict[str, Any]]:
        encoded: Dict[str, Dict[str, Any]] = {}
        for tag, entry in self.vector.items():
            encoded[encode_tag(tag)] = {
                "value": entry.value,
                "updated": sorted(entry.updated),
            }
        return encoded

    # -- state migration ------------------------------------------------------------

    def export_state(self) -> Dict[str, Any]:
        return {
            "current": encode_tag(self.current),
            "vector": self._encode_vector(),
        }

    def absorb_state(self, blob: Dict[str, Any]) -> None:
        for encoded, fields in blob.get("vector", {}).items():
            tag = decode_tag(encoded)
            entry = self.vector.get(tag)
            if entry is None:
                entry = ValueVectorEntry(value=None, updated=set())
                self.vector[tag] = entry
            if entry.value is None and fields.get("value") is not None:
                entry.value = fields["value"]
            entry.updated.update(fields.get("updated", ()))
        incoming = decode_tag(blob["current"])
        if incoming > self.current:
            self.current = incoming
        self._prune()
