"""A fast-write (W1R2) *candidate* protocol -- deliberately not atomic.

The paper's main theorem says no W1R2 multi-writer atomic register exists for
``W >= 2, R >= 2, t >= 1``.  This module implements the natural candidate one
would try anyway: every writer orders its own writes with a local counter and
pushes them in a single round-trip; readers use the full two-round-trip ABD
read (query + write-back).

The protocol is useful precisely because it fails: the design-space benchmark
(Table 1) and the test suite run it under concurrent multi-writer workloads
and show that the atomicity checker finds violations -- the executable
counterpart of the impossibility result.  The violations arise exactly where
the chain argument says they must: two writers assign incomparable local
timestamps, so a value written strictly *later* in real time can carry a
*smaller* tag, and readers then disagree with the real-time write order.
"""

from __future__ import annotations

from typing import Any

from ..core.errors import ConfigurationError
from ..core.operations import OpKind
from ..core.timestamps import Tag
from .abd_mwmr import AbdMwmrReader
from .base import Broadcast, ClientLogic, OperationOutcome, RegisterProtocol, ServerLogic
from .codec import encode_tag
from .server_state import TagValueServer

__all__ = ["LocalClockWriter", "FastWriteAttemptProtocol"]


class LocalClockWriter(ClientLogic):
    """A writer that skips the query phase and trusts its local counter.

    This is what "fast write" forces: with only one round-trip the writer
    cannot first learn the latest timestamp, so concurrent (or even
    non-concurrent) writes by different writers may be ordered arbitrarily.
    """

    def __init__(self, client_id: str, servers, max_faults: int) -> None:
        super().__init__(client_id, servers, max_faults)
        self._ts = 0

    def write_protocol(self, value: Any):
        self._ts += 1
        tag = Tag(self._ts, self.client_id)
        acks = yield Broadcast("update", {"tag": encode_tag(tag), "value": value})
        del acks
        return OperationOutcome(OpKind.WRITE, value=value, tag=tag)

    def read_protocol(self):
        raise NotImplementedError("writers do not read")
        yield  # pragma: no cover


class FastWriteAttemptProtocol(RegisterProtocol):
    """Factory for the (non-atomic) W1R2 candidate."""

    name = "fast-write attempt (W1R2 candidate, not atomic)"
    write_round_trips = 1
    read_round_trips = 2
    multi_writer = True
    #: Documented expectation used by tests and the Table 1 benchmark.
    expected_atomic = False

    def validate_configuration(self) -> None:
        if 2 * self.max_faults >= len(self.servers):
            raise ConfigurationError(
                f"need t < S/2 (got t={self.max_faults}, S={len(self.servers)})"
            )

    def make_server(self, server_id: str) -> ServerLogic:
        return TagValueServer(server_id)

    def make_writer(self, writer_id: str) -> ClientLogic:
        return LocalClockWriter(writer_id, self.servers, self.max_faults)

    def make_reader(self, reader_id: str) -> ClientLogic:
        return AbdMwmrReader(reader_id, self.servers, self.max_faults)
