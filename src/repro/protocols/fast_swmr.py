"""DGLV-style fast single-writer register (W1R1 in the single-writer case).

Dutta, Guerraoui, Levy and Vukolic [12] showed that in the *single-writer*
case both operations can be fast exactly when ``R < S/t - 2``.  The paper
under reproduction extends their read-side machinery to multiple writers (see
:mod:`repro.protocols.fast_read_mwmr`); this module keeps the single-writer
original as a baseline so the benchmarks can compare all three regimes
(SWMR-fast, MWMR fast-read, MWMR slow).

* ``write(v)``: one round-trip.  The single writer orders its own writes with
  a local counter, so no query phase is needed.
* ``read()``: one round-trip, using the same admissibility predicate as the
  multi-writer fast-read protocol.
"""

from __future__ import annotations

from typing import Any

from ..core.errors import ConfigurationError
from ..core.operations import OpKind
from ..core.timestamps import Tag
from .base import Broadcast, ClientLogic, OperationOutcome, RegisterProtocol, ServerLogic
from .codec import encode_tag
from .fast_read_mwmr import FastReadReader
from .server_state import ValueVectorServer

__all__ = ["FastSwmrWriter", "FastSwmrProtocol"]


class FastSwmrWriter(ClientLogic):
    """The single fast writer: one ``write`` round-trip with a local counter."""

    def __init__(self, client_id: str, servers, max_faults: int) -> None:
        super().__init__(client_id, servers, max_faults)
        self._ts = 0

    def write_protocol(self, value: Any):
        self._ts += 1
        tag = Tag(self._ts, self.client_id)
        yield Broadcast("write", {"tag": encode_tag(tag), "value": value})
        return OperationOutcome(OpKind.WRITE, value=value, tag=tag)

    def read_protocol(self):
        raise NotImplementedError("writers do not read")
        yield  # pragma: no cover


class FastSwmrProtocol(RegisterProtocol):
    """Factory for the fast single-writer register of DGLV."""

    name = "dglv fast swmr (W1R1, single writer)"
    write_round_trips = 1
    read_round_trips = 1
    multi_writer = False

    def __init__(
        self,
        servers,
        max_faults: int,
        readers: int = 2,
        writers: int = 1,
        enforce_condition: bool = True,
    ) -> None:
        self.enforce_condition = enforce_condition
        super().__init__(servers, max_faults, readers=readers, writers=writers)

    def validate_configuration(self) -> None:
        if self.writers != 1:
            raise ConfigurationError(
                "the DGLV fast register is single-writer; the paper proves the "
                "multi-writer W1R1 point impossible"
            )
        if 2 * self.max_faults >= len(self.servers):
            raise ConfigurationError(
                f"need t < S/2 (got t={self.max_faults}, S={len(self.servers)})"
            )
        if not self.enforce_condition:
            return
        if self.max_faults > 0 and self.readers >= len(self.servers) / self.max_faults - 2:
            raise ConfigurationError(
                "fast reads require R < S/t - 2 "
                f"(got R={self.readers}, S={len(self.servers)}, t={self.max_faults})"
            )

    def make_server(self, server_id: str) -> ServerLogic:
        return ValueVectorServer(server_id)

    def make_writer(self, writer_id: str) -> ClientLogic:
        return FastSwmrWriter(writer_id, self.servers, self.max_faults)

    def make_reader(self, reader_id: str) -> ClientLogic:
        return FastReadReader(
            reader_id, self.servers, self.max_faults, readers=self.readers
        )
