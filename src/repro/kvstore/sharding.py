"""Consistent-hash shard map: keys -> register-backed shards.

The key-value store splits its key space over independent *shards*.  Each
shard is a full quorum system of its own: a disjoint set of replica servers
running one :class:`~repro.protocols.base.RegisterProtocol`, hosting one
single-register emulation **per key** assigned to it.  Per-key registers are
completely independent -- exactly the workload-independence the per-object
protocols of the paper provide -- so shards scale the store horizontally
without any cross-shard coordination.

Key placement uses a consistent-hash ring (with virtual nodes) over a stable
keyed hash, so the same key maps to the same shard on every backend, in every
process, on every run -- a requirement for both history checking and for the
asyncio backend whose clients hash keys independently of the servers.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from ..core.errors import ConfigurationError
from ..protocols.base import RegisterProtocol
from ..protocols.registry import build_protocol

__all__ = ["stable_hash", "HashRing", "ShardSpec", "ShardMap"]


def stable_hash(text: str) -> int:
    """A 64-bit hash that is stable across processes and Python versions.

    ``hash()`` is salted per process (PYTHONHASHSEED), which would scatter
    the same key to different shards on client and server; blake2b is not.
    """
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A consistent-hash ring of shard ids with virtual nodes."""

    def __init__(self, shard_ids: Sequence[str], virtual_nodes: int = 64) -> None:
        if not shard_ids:
            raise ValueError("a hash ring needs at least one shard")
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be positive")
        self.virtual_nodes = virtual_nodes
        points: List[tuple] = []
        for shard_id in shard_ids:
            for replica in range(virtual_nodes):
                points.append((stable_hash(f"{shard_id}#{replica}"), shard_id))
        points.sort()
        self._hashes = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    def owner_of(self, key: str) -> str:
        """The shard owning ``key``: first ring point clockwise of its hash."""
        index = bisect.bisect_right(self._hashes, stable_hash(key))
        if index == len(self._hashes):
            index = 0
        return self._owners[index]


@dataclass
class ShardSpec:
    """One shard: its id, replica server ids, and register protocol factory."""

    shard_id: str
    protocol: RegisterProtocol
    servers: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.servers:
            self.servers = list(self.protocol.servers)

    @property
    def quorum_size(self) -> int:
        return len(self.servers) - self.protocol.max_faults


class ShardMap:
    """Assigns every key to one of ``num_shards`` register-backed shards.

    Each shard gets its own disjoint replica group ``<shard>-s1 ..`` running
    an independent instance of the chosen protocol; ``shard_for`` resolves a
    key through the consistent-hash ring.
    """

    def __init__(
        self,
        num_shards: int,
        protocol_key: str = "abd-mwmr",
        servers_per_shard: int = 3,
        max_faults: int = 1,
        readers: int = 2,
        writers: int = 2,
        virtual_nodes: int = 64,
        **protocol_kwargs,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        self.protocol_key = protocol_key
        self.servers_per_shard = servers_per_shard
        self.max_faults = max_faults
        self.shards: Dict[str, ShardSpec] = {}
        for index in range(1, num_shards + 1):
            shard_id = f"sh{index}"
            servers = [f"{shard_id}-s{i}" for i in range(1, servers_per_shard + 1)]
            protocol = build_protocol(
                protocol_key,
                servers,
                max_faults,
                readers=readers,
                writers=writers,
                **protocol_kwargs,
            )
            if writers > 1 and not protocol.multi_writer:
                raise ConfigurationError(
                    f"protocol {protocol_key!r} is single-writer; a kv store with "
                    f"{writers} writing clients needs a multi-writer register"
                )
            self.shards[shard_id] = ShardSpec(shard_id, protocol, servers)
        self.ring = HashRing(list(self.shards), virtual_nodes=virtual_nodes)

    # -- resolution ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.shards)

    def shard_for(self, key: str) -> ShardSpec:
        """The shard owning ``key``."""
        return self.shards[self.ring.owner_of(key)]

    def assignments(self, keys: Iterable[str]) -> Dict[str, List[str]]:
        """Group ``keys`` by owning shard id (shards with no keys included)."""
        grouped: Dict[str, List[str]] = {shard_id: [] for shard_id in self.shards}
        for key in keys:
            grouped[self.ring.owner_of(key)].append(key)
        return grouped

    @property
    def all_servers(self) -> List[str]:
        """Every replica server id across all shards."""
        servers: List[str] = []
        for spec in self.shards.values():
            servers.extend(spec.servers)
        return servers

    def describe(self) -> Dict[str, object]:
        return {
            "shards": len(self.shards),
            "protocol": self.protocol_key,
            "servers_per_shard": self.servers_per_shard,
            "max_faults": self.max_faults,
            "total_servers": len(self.all_servers),
        }
