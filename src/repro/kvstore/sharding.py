"""Consistent-hash shard map: keys -> shards -> replica groups.

The key-value store splits its key space over independent *shards*.  A shard
is a purely logical slice of the ring: its per-key register emulations are
hosted by a :class:`~repro.kvstore.placement.ReplicaGroup`, and a
:class:`~repro.kvstore.placement.PlacementPolicy` maps N shards onto M groups
(N >> M allowed).  Per-key registers are completely independent -- exactly
the workload-independence the per-object protocols of the paper provide --
so shards scale the store horizontally without cross-shard coordination,
and decoupling them from the replica groups lets the shard count grow (or a
shard move between groups) while the cluster stays put.

Key placement uses a consistent-hash ring (with virtual nodes) over a stable
keyed hash, so the same key maps to the same shard on every backend, in every
process, on every run -- a requirement for both history checking and for the
asyncio backend whose clients hash keys independently of the servers.

Live rebalancing is epoch-fenced: every shard carries an ``epoch`` that the
map bumps whenever the shard's ownership changes (it loses ring arcs in a
:meth:`ShardMap.resize`, or it is re-homed by :meth:`ShardMap.move_shard`).
Clients tag every batched sub-request with the (shard, epoch) they resolved;
group servers bounce stale tags so an in-flight operation can never read or
write a register that has been drained to a new owner.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, NamedTuple, Optional, Sequence

from ..core.errors import ConfigurationError
from ..protocols.base import RegisterProtocol
from ..protocols.registry import build_protocol
from .placement import PlacementPolicy, ReplicaGroup, RoundRobinPlacement

__all__ = [
    "stable_hash",
    "HashRing",
    "OwnerCacheInfo",
    "ShardSpec",
    "ShardMap",
    "ResizePlan",
    "MovePlan",
]


def stable_hash(text: str) -> int:
    """A 64-bit hash that is stable across processes and Python versions.

    ``hash()`` is salted per process (PYTHONHASHSEED), which would scatter
    the same key to different shards on client and server; blake2b is not.
    """
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class OwnerCacheInfo(NamedTuple):
    """Statistics of the memoized ``HashRing.owner_of`` lookup."""

    hits: int
    misses: int
    maxsize: int
    currsize: int


class HashRing:
    """A consistent-hash ring of shard ids with virtual nodes.

    Rings are immutable; a resize builds a *new* ring with ``epoch + 1``.
    ``owner_of`` is memoized per ring instance in a plain dict -- since the
    ring never mutates, a cached entry is valid for the ring's whole
    lifetime, so the memo is scoped to exactly one ring epoch.  The hash +
    bisect resolution sits on the hot path of every operation in both
    backends; the cache turns the repeated-key case (Zipf-popular workloads)
    into a dict hit.

    The memo deliberately avoids ``functools.lru_cache`` over a bound
    method: that wrapper closes over ``self`` and is stored *on* ``self``,
    a reference cycle that kept superseded rings (and their point arrays)
    alive past an epoch change until a full gc pass.  A dict of plain
    strings has no back-reference, so a replaced ring frees on refcount.
    """

    def __init__(
        self,
        shard_ids: Sequence[str],
        virtual_nodes: int = 64,
        epoch: int = 1,
        owner_cache_size: int = 16384,
    ) -> None:
        if not shard_ids:
            raise ValueError("a hash ring needs at least one shard")
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be positive")
        self.virtual_nodes = virtual_nodes
        self.epoch = epoch
        points: List[tuple] = []
        for shard_id in shard_ids:
            for replica in range(virtual_nodes):
                points.append((stable_hash(f"{shard_id}#{replica}"), shard_id))
        points.sort()
        self._hashes = [point for point, _ in points]
        self._owners = [owner for _, owner in points]
        self._owner_cache: Dict[str, str] = {}
        self._owner_cache_size = owner_cache_size
        self._cache_hits = 0
        self._cache_misses = 0

    def points_of(self, shard_id: str) -> List[int]:
        """The ring positions of ``shard_id``'s virtual nodes."""
        return [
            stable_hash(f"{shard_id}#{replica}")
            for replica in range(self.virtual_nodes)
        ]

    def owner_of_hash(self, point: int) -> str:
        """The shard owning ring position ``point``."""
        index = bisect.bisect_right(self._hashes, point)
        if index == len(self._hashes):
            index = 0
        return self._owners[index]

    def _resolve(self, key: str) -> str:
        return self.owner_of_hash(stable_hash(key))

    def owner_of(self, key: str) -> str:
        """The shard owning ``key``: first ring point clockwise of its hash."""
        owner = self._owner_cache.get(key)
        if owner is not None:
            self._cache_hits += 1
            return owner
        self._cache_misses += 1
        if len(self._owner_cache) >= self._owner_cache_size:
            self._owner_cache.clear()
        owner = self._resolve(key)
        self._owner_cache[key] = owner
        return owner

    def clear_owner_cache(self) -> None:
        """Drop the memo (``ShardMap`` calls this when a ring is superseded,
        so a retained old ring -- e.g. inside a :class:`ResizePlan` -- holds
        only its point arrays, not a key cache nobody will hit again)."""
        self._owner_cache.clear()

    def cache_info(self) -> OwnerCacheInfo:
        """Statistics of the memoized ``owner_of`` (for tests/benchmarks)."""
        return OwnerCacheInfo(
            hits=self._cache_hits,
            misses=self._cache_misses,
            maxsize=self._owner_cache_size,
            currsize=len(self._owner_cache),
        )


@dataclass
class ShardSpec:
    """One logical shard: its id, hosting group, and fencing epoch."""

    shard_id: str
    group: ReplicaGroup
    epoch: int = 1

    @property
    def servers(self) -> List[str]:
        return self.group.servers

    @property
    def protocol(self) -> RegisterProtocol:
        return self.group.protocol

    @property
    def quorum_size(self) -> int:
        return self.group.quorum_size


@dataclass
class ResizePlan:
    """What one :meth:`ShardMap.resize` changed (metadata only).

    The :class:`~repro.kvstore.engine.control.ControlPlaneEngine` turns this
    into an incremental key-range drain that physically moves per-key
    registers to their new owners.  ``fenced`` maps
    every pre-existing shard whose ring arcs changed to its new epoch -- the
    set of shards whose in-flight requests must bounce.
    """

    old_ring: HashRing
    new_ring: HashRing
    added: List[ShardSpec] = field(default_factory=list)
    removed: List[ShardSpec] = field(default_factory=list)
    fenced: Dict[str, int] = field(default_factory=dict)

    def moved_keys(self, keys: Iterable[str]) -> List[str]:
        """The subset of ``keys`` whose owning shard changed."""
        return [k for k in keys if self.old_ring.owner_of(k) != self.new_ring.owner_of(k)]

    def moved_fraction(self, keys: Sequence[str]) -> float:
        """Fraction of ``keys`` that changed owner (the ~1/N guarantee)."""
        if not keys:
            return 0.0
        return len(self.moved_keys(keys)) / len(keys)


@dataclass
class MovePlan:
    """What one :meth:`ShardMap.move_shard` changed (metadata only)."""

    spec: ShardSpec
    old_group: ReplicaGroup
    new_group: ReplicaGroup


class ShardMap:
    """Assigns every key to one of ``num_shards`` register-backed shards.

    Shards are placed onto ``num_groups`` replica groups ``g1 .. gM`` (each
    ``servers_per_shard`` servers running an independent instance of the
    chosen protocol) by a :class:`PlacementPolicy`; ``num_groups`` defaults
    to one group per shard, the original disjoint layout.  ``shard_for``
    resolves a key through the consistent-hash ring.

    The map is *live*: :meth:`resize` changes the shard count (bounded key
    movement, ~1/N per added shard) and :meth:`move_shard` re-homes one shard
    onto another group.  Both only rewrite metadata (ring, specs, epochs) and
    return a plan; the cluster backends apply the plan to the group servers
    -- draining per-key registers to the new owners -- inside one atomic
    control-plane step.
    """

    def __init__(
        self,
        num_shards: int,
        protocol_key: str = "abd-mwmr",
        servers_per_shard: int = 3,
        max_faults: int = 1,
        readers: int = 2,
        writers: int = 2,
        virtual_nodes: int = 64,
        num_groups: Optional[int] = None,
        placement: Optional[PlacementPolicy] = None,
        **protocol_kwargs,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        if num_groups is None:
            num_groups = num_shards
        if num_groups < 1:
            raise ValueError("num_groups must be positive")
        self.protocol_key = protocol_key
        self.servers_per_shard = servers_per_shard
        self.max_faults = max_faults
        self.virtual_nodes = virtual_nodes
        self.placement = placement or RoundRobinPlacement()

        self.groups: Dict[str, ReplicaGroup] = {}
        for index in range(1, num_groups + 1):
            group_id = f"g{index}"
            servers = [f"{group_id}-s{i}" for i in range(1, servers_per_shard + 1)]
            protocol = build_protocol(
                protocol_key, servers, max_faults,
                readers=readers, writers=writers, **protocol_kwargs,
            )
            if writers > 1 and not protocol.multi_writer:
                raise ConfigurationError(
                    f"protocol {protocol_key!r} is single-writer; a kv store with "
                    f"{writers} writing clients needs a multi-writer register"
                )
            self.groups[group_id] = ReplicaGroup(group_id, protocol, servers)

        shard_ids = [f"sh{i}" for i in range(1, num_shards + 1)]
        assignment = self.placement.place(shard_ids, list(self.groups))
        self.shards: Dict[str, ShardSpec] = {
            shard_id: ShardSpec(shard_id, self.groups[assignment[shard_id]])
            for shard_id in shard_ids
        }
        self.ring = HashRing(shard_ids, virtual_nodes=virtual_nodes, epoch=1)
        self._next_shard_index = num_shards + 1

    # -- resolution ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.shards)

    @property
    def ring_epoch(self) -> int:
        return self.ring.epoch

    def shard_for(self, key: str) -> ShardSpec:
        """The shard owning ``key``."""
        return self.shards[self.ring.owner_of(key)]

    def assignments(self, keys: Iterable[str]) -> Dict[str, List[str]]:
        """Group ``keys`` by owning shard id (shards with no keys included)."""
        grouped: Dict[str, List[str]] = {shard_id: [] for shard_id in self.shards}
        for key in keys:
            grouped[self.ring.owner_of(key)].append(key)
        return grouped

    def shards_on(self, group_id: str) -> List[ShardSpec]:
        """The shards currently hosted by ``group_id``."""
        return [
            spec for spec in self.shards.values() if spec.group.group_id == group_id
        ]

    def shard_counts(self) -> Dict[str, int]:
        """Shards hosted per group id."""
        counts = {group_id: 0 for group_id in self.groups}
        for spec in self.shards.values():
            counts[spec.group.group_id] += 1
        return counts

    @property
    def all_servers(self) -> List[str]:
        """Every replica server id across all groups."""
        servers: List[str] = []
        for group in self.groups.values():
            servers.extend(group.servers)
        return servers

    def describe(self) -> Dict[str, object]:
        return {
            "shards": len(self.shards),
            "groups": len(self.groups),
            "protocol": self.protocol_key,
            "servers_per_shard": self.servers_per_shard,
            "max_faults": self.max_faults,
            "total_servers": len(self.all_servers),
            "ring_epoch": self.ring_epoch,
        }

    def view_snapshot(self) -> Dict[str, Any]:
        """The routing state a remote view cache needs, as a JSON-safe dict.

        This is the payload of a control-plane *view push*
        (:func:`repro.sim.messages.make_view_push`): the ring's shard ids and
        epoch (enough to rebuild an identical :class:`HashRing` -- ring
        construction is deterministic) plus each shard's fencing epoch,
        hosting group and quorum size.  A
        :class:`~repro.kvstore.proxy.CachedShardView` applies it with
        :meth:`~repro.kvstore.proxy.CachedShardView.apply_push`.
        """
        return {
            "ring_epoch": self.ring.epoch,
            "virtual_nodes": self.virtual_nodes,
            "shard_ids": list(self.shards),
            "routes": {
                shard_id: self._route_entry(shard_id) for shard_id in self.shards
            },
        }

    def _route_entry(self, shard_id: str) -> Dict[str, Any]:
        spec = self.shards[shard_id]
        return {
            "epoch": spec.epoch,
            "group": spec.group.group_id,
            "servers": list(spec.group.servers),
            "quorum": spec.quorum_size,
        }

    def view_delta(self, plan: "ResizePlan | MovePlan") -> Optional[Dict[str, Any]]:
        """The routing delta of one rebalance, as a JSON-safe push payload.

        Where :meth:`view_snapshot` carries every shard's route (O(shards)
        per push), the delta carries only what ``plan`` changed: the shards
        the rebalance *fenced* (epoch bumped), *added*, *removed*, or
        *moved* -- O(moved) entries, which is what keeps the control-plane
        frame small when thousands of shards resize by a handful.  The
        payload names the ring epoch it was computed against
        (``base_ring_epoch``), so a
        :class:`~repro.kvstore.engine.routing.CachedShardView` can refuse a
        delta whose base it never adopted (a predecessor push was dropped)
        and fall back to the epoch-fence bounce.  Returns ``None`` when the
        plan changed nothing (no push needed).
        """
        if isinstance(plan, MovePlan):
            return {
                "delta": True,
                "ring_epoch": self.ring.epoch,
                "base_ring_epoch": self.ring.epoch,
                "virtual_nodes": self.virtual_nodes,
                "added": [],
                "removed": [],
                "routes": {plan.spec.shard_id: self._route_entry(plan.spec.shard_id)},
            }
        added = [spec.shard_id for spec in plan.added]
        removed = [spec.shard_id for spec in plan.removed]
        changed = set(added) | set(plan.fenced)
        if not added and not removed and not changed:
            return None
        return {
            "delta": True,
            "ring_epoch": plan.new_ring.epoch,
            "base_ring_epoch": plan.old_ring.epoch,
            "virtual_nodes": self.virtual_nodes,
            "added": added,
            "removed": removed,
            "routes": {shard_id: self._route_entry(shard_id) for shard_id in changed},
        }

    # -- live rebalancing ------------------------------------------------------

    def _rebuild_ring(self) -> HashRing:
        return HashRing(
            list(self.shards),
            virtual_nodes=self.virtual_nodes,
            epoch=self.ring.epoch + 1,
        )

    def resize(self, new_num_shards: int) -> ResizePlan:
        """Grow or shrink the ring to ``new_num_shards`` shards (metadata).

        Growth creates fresh shard ids (never reusing old ones) placed on the
        least-loaded groups; shrinkage retires the most recently added shards
        and their arcs fall back to the survivors.  Consistent hashing bounds
        key movement to ~(moved shards)/N.  Every pre-existing shard that
        loses ring arcs gets its epoch bumped (recorded in ``fenced``) so
        in-flight requests resolved against the old ring bounce instead of
        touching drained registers.
        """
        if new_num_shards < 1:
            raise ValueError("new_num_shards must be positive")
        old_ring = self.ring
        plan = ResizePlan(old_ring=old_ring, new_ring=old_ring)
        if new_num_shards == len(self.shards):
            return plan

        if new_num_shards > len(self.shards):
            counts = self.shard_counts()
            for _ in range(new_num_shards - len(self.shards)):
                shard_id = f"sh{self._next_shard_index}"
                self._next_shard_index += 1
                group_id = self.placement.place_one(
                    shard_id, list(self.groups), counts
                )
                counts[group_id] = counts.get(group_id, 0) + 1
                spec = ShardSpec(shard_id, self.groups[group_id])
                self.shards[shard_id] = spec
                plan.added.append(spec)
            new_ring = self._rebuild_ring()
            # A new virtual node at position h steals the arc ending at h
            # from the shard that owned h on the old ring; those donors are
            # exactly the shards whose in-flight traffic must be fenced.
            donors = set()
            for spec in plan.added:
                for point in new_ring.points_of(spec.shard_id):
                    donors.add(old_ring.owner_of_hash(point))
            for shard_id in sorted(donors):
                spec = self.shards[shard_id]
                spec.epoch += 1
                plan.fenced[shard_id] = spec.epoch
        else:
            victims = list(self.shards)[new_num_shards:]
            for shard_id in victims:
                plan.removed.append(self.shards.pop(shard_id))
            new_ring = self._rebuild_ring()
            # Removed arcs fall forward to survivors.  Each receiving
            # survivor must be fenced: until the incoming keys are drained
            # onto it, a request for one of them would otherwise materialize
            # a fresh empty register there and read ⊥ past live state still
            # sitting on the removed shard.  The epoch bump bounces those
            # requests until the drain hosts the keys as pending.  A removed
            # arc ending at point ``p`` falls to the new ring's owner of
            # ``p`` (no surviving point lies inside the arc, by definition).
            receivers = set()
            for spec in plan.removed:
                for point in old_ring.points_of(spec.shard_id):
                    receivers.add(new_ring.owner_of_hash(point))
            for shard_id in sorted(receivers):
                spec = self.shards[shard_id]
                spec.epoch += 1
                plan.fenced[shard_id] = spec.epoch
            # The removed shards themselves fence at one past their final
            # epoch: the drain raises their replicas there, so requests
            # resolved against the pre-shrink ring bounce instead of
            # touching registers that are mid-transfer.
            for spec in plan.removed:
                spec.epoch += 1

        old_ring.clear_owner_cache()  # the superseded epoch's memo is dead weight
        self.ring = new_ring
        plan.new_ring = new_ring
        return plan

    def move_shard(self, shard_id: str, group_id: str) -> MovePlan:
        """Re-home ``shard_id`` onto ``group_id`` (metadata).

        The ring (and therefore key->shard ownership) is unchanged; only the
        hosting group differs.  The shard's epoch is bumped so requests
        resolved against the old group bounce and re-resolve.
        """
        if shard_id not in self.shards:
            raise KeyError(f"unknown shard {shard_id!r}")
        if group_id not in self.groups:
            raise KeyError(f"unknown replica group {group_id!r}")
        spec = self.shards[shard_id]
        old_group = spec.group
        new_group = self.groups[group_id]
        if len(old_group.servers) != len(new_group.servers):
            raise ConfigurationError(
                "moving a shard requires equal-size replica groups "
                f"({len(old_group.servers)} != {len(new_group.servers)})"
            )
        spec.group = new_group
        spec.epoch += 1
        # Key->shard ownership is untouched, but drop the memo anyway so a
        # view rebuilt from this map can never pair a cached owner with a
        # pre-move route by accident.
        self.ring.clear_owner_cache()
        return MovePlan(spec=spec, old_group=old_group, new_group=new_group)
