"""The key-value store on the discrete-event simulator: the sim adapter.

All protocol behaviour -- round lifecycle, batching, stale-epoch replay,
proxy merging, failover, view-push adoption -- lives in the shared sans-I/O
engines of :mod:`repro.kvstore.engine`.  This module only *adapts* them to
the simulator runtime:

* :class:`KVClientProcess` / :class:`ProxyProcess` wrap a
  :class:`~repro.kvstore.engine.client.ClientSessionEngine` /
  :class:`~repro.kvstore.engine.proxy.ProxyEngine` in a network
  :class:`~repro.sim.process.Process`, executing emitted effects by sending
  frames through the simulated network and mapping timer effects onto the
  virtual-clock event queue.  ``Connect`` effects succeed immediately (the
  simulated network needs no dialing), and the network reports no delivery
  failures -- a crashed process's traffic is dropped *silently*, which is
  exactly why the client engine's watchdog timer
  (:data:`~repro.kvstore.engine.effects.SIM_RETRY_POLICY`) carries proxy
  failover here.

* :class:`BatchReplicaProcess` wraps a
  :class:`~repro.kvstore.engine.server.GroupServerEngine` with a simple
  queueing model of server capacity: handling a batch costs ``overhead``
  plus ``per_op`` per sub-operation of *service time*, and a busy server
  queues work.  This is what makes group count matter in virtual time.

* :class:`SimKVCluster` assembles the replica groups of a
  :class:`~repro.kvstore.sharding.ShardMap` plus clients on one virtual
  clock, with a live control plane: :meth:`SimKVCluster.resize` /
  :meth:`SimKVCluster.move_shard` rebalance the ring mid-run (pushing view
  deltas to the proxies), and :class:`KVFailureInjector` crashes replicas
  within each group's fault budget.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Mapping, Optional, Set, Tuple

from ..core.operations import OpKind
from ..messages import DEFAULT_LEASE_TTL, Message
from ..observe.events import (
    NULL_OBSERVER,
    TIMER_ARMED,
    TIMER_CANCELLED,
    TIMER_FIRED,
    EngineObserver,
    ObserverHub,
)
from ..observe.metrics import MetricsObserver, MetricsRegistry
from ..observe.trace import TraceCollector
from ..protocols.base import OperationOutcome
from ..sim.clock import EventQueue, ScheduledEvent
from ..sim.delays import ConstantDelay, DelayModel
from ..sim.failures import CrashPlan, FailureInjector
from ..sim.network import Network
from ..sim.process import Process
from ..util.rng import SeededRng
from .engine import (
    DRAIN_RANGE_SIZE,
    AutoscaleFeed,
    PROXY_FAILOVER_TIMEOUT,
    SIM_RETRY_POLICY,
    BatchStats,
    CachedShardView,
    CancelTimer,
    ClientSessionEngine,
    Connect,
    ControlPlaneEngine,
    Effect,
    GroupServerEngine,
    OpCompleted,
    OpFailed,
    ProxyEngine,
    ReadRoutingPolicy,
    SendFrame,
    StartTimer,
    TimerId,
    make_proxy_kill_trigger,
    pick_one_proxy_per_site,
)
from .migration import MigrationReport, make_resize_trigger
from .perkey import KVHistoryRecorder
from .sharding import ShardMap
from .workload import KVRunResult, KVWorkload

__all__ = [
    "BatchReplicaProcess",
    "KVClientProcess",
    "ProxyProcess",
    "ControlPlaneProcess",
    "KVFailureInjector",
    "SimKVCluster",
    "run_sim_kv_workload",
    "SIM_DRAIN_RETRY_DELAY",
    "SIM_AUTOSCALE_INTERVAL",
]

#: Control-plane timing on the virtual clock: how long the drain waits for
#: a replica's ack before resending (hops are ~1 unit, service tenths), and
#: how often the autoscaler folds its served-op window.
SIM_DRAIN_RETRY_DELAY = 40.0
SIM_AUTOSCALE_INTERVAL = 150.0


class BatchReplicaProcess(Process):
    """A group replica with service-time queueing on the virtual clock.

    Effect-driven: the engine's sends (batch-acks, lease grants and
    invalidations, drain acks) are what the modeled service time delays,
    while its lease timers go straight onto the virtual-clock event queue
    -- a lease's deadline is wall time from the grant, not from whenever
    the replica's queue drains.
    """

    def __init__(
        self,
        server_id: str,
        logic: GroupServerEngine,
        events: EventQueue,
        overhead: float = 0.2,
        per_op: float = 0.1,
    ) -> None:
        super().__init__(server_id)
        self.logic = logic
        self.events = events
        self.overhead = overhead
        self.per_op = per_op
        self.busy_until = 0.0
        self._timers: Dict[TimerId, ScheduledEvent] = {}

    def on_message(self, message: Message) -> None:
        # State transitions apply at delivery (preserving arrival order);
        # only the *replies* are held back by the modeled service time.
        # Drain frames charge per key exactly like batches charge per
        # sub-op, so the pause a migration imposes on a replica grows with
        # the range size -- the knob the incremental drain exists to bound.
        payload = message.payload
        batch_size = len(payload.get("ops", ()) or payload.get("keys", ())) or 1
        effects = self.logic.on_frame(message)
        service = self.overhead + self.per_op * batch_size
        now = self.events.clock.now
        finish = max(now, self.busy_until) + service
        self.busy_until = finish
        self.run_effects(effects, send_delay=finish - now)

    def run_effects(self, effects: List[Effect], send_delay: float = 0.0) -> None:
        observer = self.logic.observer
        for effect in effects:
            if isinstance(effect, SendFrame):
                if send_delay <= 0:
                    self.send(effect.frame)
                else:
                    self.events.schedule(
                        send_delay,
                        lambda frame=effect.frame: self.send(frame),
                        label=f"service:{self.process_id}",
                    )
            elif isinstance(effect, StartTimer):
                stale = self._timers.pop(effect.timer_id, None)
                if stale is not None:
                    stale.cancel()
                    observer.emit(
                        TIMER_CANCELLED, timer=effect.timer_id[0], reason="rearm"
                    )
                self._timers[effect.timer_id] = self.events.schedule(
                    effect.delay,
                    lambda tid=effect.timer_id: self._fire(tid),
                    label=f"{self.process_id}:{effect.timer_id[0]}",
                )
                observer.emit(TIMER_ARMED, timer=effect.timer_id[0])
            elif isinstance(effect, CancelTimer):
                timer = self._timers.pop(effect.timer_id, None)
                if timer is not None:
                    timer.cancel()
                    observer.emit(
                        TIMER_CANCELLED, timer=effect.timer_id[0], reason="cancel"
                    )
            else:  # pragma: no cover - future effect kinds
                raise TypeError(f"unknown effect {effect!r}")

    def _fire(self, timer_id: TimerId) -> None:
        self._timers.pop(timer_id, None)
        self.logic.observer.emit(TIMER_FIRED, timer=timer_id[0])
        self.run_effects(self.logic.on_timer(timer_id))


class _EngineProcess(Process):
    """A process that feeds a sans-I/O engine and executes its effects.

    Effects map onto the simulator runtime: ``SendFrame`` goes through the
    simulated network, ``StartTimer``/``CancelTimer`` onto the virtual-clock
    event queue, and ``Connect`` succeeds immediately (there is nothing to
    dial -- the network routes by process id).
    """

    def __init__(
        self,
        process_id: str,
        events: EventQueue,
        observer: Optional[EngineObserver] = None,
    ) -> None:
        super().__init__(process_id)
        self.events = events
        self.observer = observer if observer is not None else NULL_OBSERVER
        self._timers: Dict[TimerId, ScheduledEvent] = {}

    @property
    def engine(self):
        raise NotImplementedError

    def on_message(self, message: Message) -> None:
        self.run_effects(self.engine.on_frame(message))

    def run_effects(self, effects: List[Effect]) -> None:
        queue: Deque[Effect] = deque(effects)
        while queue:
            effect = queue.popleft()
            if isinstance(effect, SendFrame):
                self.send(effect.frame)
            elif isinstance(effect, StartTimer):
                stale = self._timers.pop(effect.timer_id, None)
                if stale is not None:
                    stale.cancel()
                    self.observer.emit(
                        TIMER_CANCELLED, timer=effect.timer_id[0], reason="rearm"
                    )
                self._timers[effect.timer_id] = self.events.schedule(
                    effect.delay,
                    lambda tid=effect.timer_id: self._fire(tid),
                    label=f"{self.process_id}:{effect.timer_id[0]}",
                )
                self.observer.emit(TIMER_ARMED, timer=effect.timer_id[0])
            elif isinstance(effect, CancelTimer):
                timer = self._timers.pop(effect.timer_id, None)
                if timer is not None:
                    timer.cancel()
                    self.observer.emit(
                        TIMER_CANCELLED, timer=effect.timer_id[0], reason="cancel"
                    )
            elif isinstance(effect, Connect):
                queue.extend(self.engine.on_connected(effect.target))
            elif isinstance(effect, (OpCompleted, OpFailed)):
                self._on_operation(effect)
            else:  # pragma: no cover - future effect kinds
                raise TypeError(f"unknown effect {effect!r}")

    def _fire(self, timer_id: TimerId) -> None:
        self._timers.pop(timer_id, None)
        self.observer.emit(TIMER_FIRED, timer=timer_id[0])
        self.run_effects(self.engine.on_timer(timer_id))

    def _on_operation(self, effect) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class KVClientProcess(_EngineProcess):
    """A store client on the virtual clock: one client-session engine.

    The engine multiplexes per-key operations into group batches (or one
    ``"proxy"`` frame per flush through the client's ingress proxy) and owns
    proxy failover: ``proxy_candidates`` is the full proxy list of the
    client's site, and the engine's watchdog timer detects a proxy that
    stops answering -- a crashed sim process drops traffic silently, so
    there is no connection reset to observe.
    """

    def __init__(
        self,
        client_id: str,
        shard_map: ShardMap,
        recorder: KVHistoryRecorder,
        events: EventQueue,
        max_batch: int = 8,
        flush_delay: float = 0.0,
        completion_hook: Optional[Callable[[], None]] = None,
        proxy_id: Optional[str] = None,
        proxy_candidates: Optional[List[str]] = None,
        proxy_timeout: float = PROXY_FAILOVER_TIMEOUT,
        observer: Optional[EngineObserver] = None,
    ) -> None:
        super().__init__(client_id, events, observer=observer)
        if proxy_timeout <= 0:
            raise ValueError("proxy_timeout must be positive")
        if proxy_candidates:
            candidates = list(proxy_candidates)
            if proxy_id is not None and proxy_id != candidates[0]:
                raise ValueError("proxy_id must head proxy_candidates")
        else:
            candidates = [proxy_id] if proxy_id is not None else []
        self.completion_hook = completion_hook
        self._engine = ClientSessionEngine(
            client_id,
            shard_map,
            recorder,
            policy=SIM_RETRY_POLICY.with_failover_timeout(proxy_timeout),
            max_batch=max_batch,
            flush_delay=flush_delay,
            proxy_candidates=candidates,
            observer=self.observer,
        )
        self._callbacks: Dict[str, Callable[[OperationOutcome], None]] = {}
        if self._engine.proxy_id is not None:
            # The simulated network needs no dialing: confirm the ingress.
            self.run_effects(self._engine.on_connected(self._engine.proxy_id))

    @property
    def engine(self) -> ClientSessionEngine:
        return self._engine

    # -- invoking operations ----------------------------------------------------

    def put(
        self,
        key: str,
        value,
        on_complete: Optional[Callable[[OperationOutcome], None]] = None,
    ) -> str:
        """Invoke ``put(key, value)``; returns the operation id."""
        return self._invoke(OpKind.WRITE, key, value, on_complete)

    def get(
        self, key: str, on_complete: Optional[Callable[[OperationOutcome], None]] = None
    ) -> str:
        """Invoke ``get(key)``; returns the operation id."""
        return self._invoke(OpKind.READ, key, None, on_complete)

    def _invoke(self, kind: OpKind, key: str, value, on_complete) -> str:
        op_id, effects = self._engine.invoke(kind, key, value)
        if on_complete is not None:
            self._callbacks[op_id] = on_complete
        self.run_effects(effects)
        return op_id

    def _on_operation(self, effect) -> None:
        if isinstance(effect, OpFailed):
            self._callbacks.pop(effect.op_id, None)
            raise effect.error
        callback = self._callbacks.pop(effect.op_id, None)
        if callback is not None:
            callback(effect.outcome)
        if self.completion_hook is not None:
            self.completion_hook()

    # -- introspection (the engine owns the state) ------------------------------

    @property
    def proxy_id(self) -> Optional[str]:
        return self._engine.proxy_id

    @property
    def proxy_failovers(self) -> int:
        return self._engine.proxy_failovers

    @property
    def stale_replays(self) -> int:
        return self._engine.stale_replays

    @property
    def batch_stats(self) -> BatchStats:
        return self._engine.stats

    @property
    def completed_operations(self) -> int:
        return self._engine.completed_operations


class ProxyProcess(_EngineProcess):
    """A site-local ingress proxy on the virtual clock: one proxy engine."""

    def __init__(
        self,
        proxy_id: str,
        shard_map: ShardMap,
        events: EventQueue,
        read_policy: Optional[ReadRoutingPolicy] = None,
        max_batch: int = 64,
        flush_delay: float = 0.0,
        observer: Optional[EngineObserver] = None,
        read_cache: int = 0,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        bounded_staleness: bool = False,
        read_round_trips: int = 2,
    ) -> None:
        super().__init__(proxy_id, events, observer=observer)
        self.view = CachedShardView(shard_map)
        self._engine = ProxyEngine(
            proxy_id,
            self.view,
            read_policy=read_policy,
            policy=SIM_RETRY_POLICY,
            max_batch=max_batch,
            flush_delay=flush_delay,
            observer=self.observer,
            read_cache=read_cache,
            lease_ttl=lease_ttl,
            bounded_staleness=bounded_staleness,
            read_round_trips=read_round_trips,
        )

    @property
    def engine(self) -> ProxyEngine:
        return self._engine

    @property
    def read_policy(self) -> ReadRoutingPolicy:
        return self._engine.read_policy

    @property
    def stats(self) -> BatchStats:
        return self._engine.stats

    @property
    def stale_replays(self) -> int:
        return self._engine.stale_replays


class ControlPlaneProcess(_EngineProcess):
    """The cluster control plane on the virtual clock: one control engine.

    Registered on the network as ``"control-plane"``, it receives the
    replicas' drain acks and the proxies' view-push acks, and executes the
    engine's effects -- drain frames through the simulated network, retry
    and autoscale timers on the virtual-clock event queue.
    """

    def __init__(
        self,
        engine: ControlPlaneEngine,
        events: EventQueue,
        observer: Optional[EngineObserver] = None,
    ) -> None:
        super().__init__(engine.control_id, events, observer=observer)
        self._engine = engine

    @property
    def engine(self) -> ControlPlaneEngine:
        return self._engine


class KVFailureInjector:
    """Crash injection for a kv cluster, enforcing per-group fault budgets.

    Wraps one :class:`~repro.sim.failures.FailureInjector` per replica group
    so an experiment can crash up to ``t`` replicas *of each group* -- the
    failure model every group's register protocol claims to tolerate --
    without ever exceeding a budget by accident.
    """

    def __init__(self, cluster: "SimKVCluster") -> None:
        self.cluster = cluster
        self._by_group: Dict[str, FailureInjector] = {}
        self._group_of: Dict[str, str] = {}
        for group_id, group in cluster.shard_map.groups.items():
            self._by_group[group_id] = FailureInjector(
                cluster.events, cluster.network, group.servers, group.max_faults
            )
            for server_id in group.servers:
                self._group_of[server_id] = group_id

    def schedule_crash(self, server_id: str, time: float) -> CrashPlan:
        """Crash one replica at ``time`` (within its group's budget)."""
        return self._by_group[self._group_of[server_id]].schedule_crash(
            server_id, time
        )

    def schedule_proxy_crash(self, proxy_id: str, time: float) -> CrashPlan:
        """Crash an ingress proxy at ``time``.

        Proxies are stateless relays outside every group's ``t`` budget --
        killing one loses no register state and no quorum member, which is
        exactly why clients can ride it out by failing over.
        """
        self.cluster.schedule_proxy_crash(proxy_id, time)
        return CrashPlan(proxy_id, time)

    def schedule_random_crashes(
        self, per_group: int, horizon: float, rng: SeededRng
    ) -> List[CrashPlan]:
        """Crash up to ``per_group`` random replicas of every group within
        ``horizon``, never exceeding what remains of a group's budget."""
        plans: List[CrashPlan] = []
        for injector in self._by_group.values():
            doomed = {
                plan.process_id
                for plan in injector.plans
                if plan.process_id in injector.server_ids
            } | injector.crashed_servers
            count = min(per_group, injector.max_server_faults - len(doomed))
            candidates = [s for s in injector.server_ids if s not in doomed]
            if count <= 0 or not candidates:
                continue
            for victim in rng.sample(candidates, min(count, len(candidates))):
                plans.append(injector.schedule_crash(victim, rng.uniform(0, horizon)))
        return plans

    @property
    def crashed_servers(self) -> Set[str]:
        crashed: Set[str] = set()
        for injector in self._by_group.values():
            crashed |= injector.crashed_servers
        return crashed


class SimKVCluster:
    """All replica groups of a :class:`ShardMap` plus clients on one clock.

    ``sites`` (optional, the process->site shape ``GeoDelay`` takes) makes
    the ingress tier site-aware: each client is assigned a proxy of its own
    site when one exists, and its failover candidate list is restricted to
    that site's proxies -- exhausting them drops the client to direct
    replica connections.  Without sites, all proxies form one site.

    ``push_views`` has the control plane push the fresh shard-map view to
    every live proxy at each :meth:`resize`/:meth:`move_shard` (one
    ``view-push`` frame per proxy through the simulated network), so in the
    steady state a rebalance costs the proxies zero stale-epoch replays;
    the epoch-fence bounce remains as the safety net for rounds already in
    flight and for pushes racing them.  ``delta_views`` (the default) sends
    each push as a per-rebalance *delta* -- only the fenced/added/removed
    entries, O(moved) instead of O(shards) -- rather than a full snapshot.
    """

    def __init__(
        self,
        shard_map: ShardMap,
        client_ids: List[str],
        delay_model: Optional[DelayModel] = None,
        max_batch: int = 8,
        flush_delay: float = 0.0,
        server_overhead: float = 0.2,
        server_per_op: float = 0.1,
        num_proxies: int = 0,
        read_policy: Optional[ReadRoutingPolicy] = None,
        proxy_max_batch: int = 64,
        proxy_flush_delay: float = 0.0,
        sites: Optional[Mapping[str, str]] = None,
        push_views: bool = True,
        delta_views: bool = True,
        proxy_timeout: float = PROXY_FAILOVER_TIMEOUT,
        trace_collector: Optional[TraceCollector] = None,
        drain_range_size: int = DRAIN_RANGE_SIZE,
        autoscale_interval: float = SIM_AUTOSCALE_INTERVAL,
        read_cache: int = 0,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        bounded_staleness: bool = False,
    ) -> None:
        self.shard_map = shard_map
        self.read_cache = read_cache
        self.lease_ttl = lease_ttl
        self.bounded_staleness = bounded_staleness
        self.events = EventQueue()
        self.network = Network(self.events, delay_model or ConstantDelay())
        self.recorder = KVHistoryRecorder(lambda: self.events.clock.now)
        # The observability hub runs on the virtual clock; the metrics sink
        # is always on (it is cheap and gives every run a snapshot), the
        # trace collector only when a caller wants span trees.
        self.hub = ObserverHub(clock=lambda: self.events.clock.now)
        self.metrics = MetricsRegistry()
        self.hub.add_sink(MetricsObserver(self.metrics))
        if trace_collector is not None:
            self.hub.add_sink(trace_collector)
        self.migrations: List[MigrationReport] = []
        self.sites = dict(sites) if sites else {}
        self._push_views = push_views
        self.delta_views = delta_views
        self.crashed_proxies: Set[str] = set()
        self._completion_watchers: List[Callable[[], None]] = []
        self.replicas: Dict[str, BatchReplicaProcess] = {}
        for group in shard_map.groups.values():
            hosted = {
                spec.shard_id: spec.epoch
                for spec in shard_map.shards_on(group.group_id)
            }
            for server_id in group.servers:
                replica = BatchReplicaProcess(
                    server_id,
                    GroupServerEngine(
                        server_id, group.protocol, dict(hosted),
                        observer=self.hub.scoped("replica", server_id),
                        lease_ttl=lease_ttl,
                    ),
                    self.events,
                    overhead=server_overhead,
                    per_op=server_per_op,
                )
                replica.attach(self.network)
                self.replicas[server_id] = replica
        read_round_trips = max(
            (group.protocol.read_round_trips
             for group in shard_map.groups.values()),
            default=2,
        )
        self.proxies: Dict[str, ProxyProcess] = {}
        for index in range(1, num_proxies + 1):
            proxy = ProxyProcess(
                f"p{index}",
                shard_map,
                self.events,
                read_policy=read_policy,
                max_batch=proxy_max_batch,
                flush_delay=proxy_flush_delay,
                observer=self.hub.scoped("proxy", f"p{index}"),
                read_cache=read_cache,
                lease_ttl=lease_ttl,
                bounded_staleness=bounded_staleness,
                read_round_trips=read_round_trips,
            )
            proxy.attach(self.network)
            self.proxies[proxy.process_id] = proxy
        control_engine = ControlPlaneEngine(
            shard_map,
            proxy_ids=list(self.proxies) if push_views else [],
            delta_views=delta_views,
            drain_range_size=drain_range_size,
            retry_delay=SIM_DRAIN_RETRY_DELAY,
            autoscale_interval=autoscale_interval,
            observer=self.hub.scoped("control", "control-plane"),
        )
        self.control = ControlPlaneProcess(
            control_engine,
            self.events,
            observer=self.hub.scoped("control", "control-plane"),
        )
        self.control.attach(self.network)
        # The autoscaler's signal is the existing metrics stream: every
        # sub.served event feeds a per-shard counter the control engine
        # folds at each tick.
        self.hub.add_sink(AutoscaleFeed(control_engine))
        self.clients: Dict[str, KVClientProcess] = {}
        for index, client_id in enumerate(client_ids):
            client = KVClientProcess(
                client_id,
                shard_map,
                self.recorder,
                self.events,
                max_batch=max_batch,
                flush_delay=flush_delay,
                completion_hook=self._notify_completion,
                proxy_candidates=self._candidates_for(client_id, index),
                proxy_timeout=proxy_timeout,
                observer=self.hub.scoped("client", client_id),
            )
            client.attach(self.network)
            self.clients[client_id] = client

    @property
    def push_views(self) -> bool:
        """Whether rebalances push fresh views to the proxies.

        Togglable mid-run (tests drop a delta this way): the setter swaps
        the control engine's live proxy set, which is what pushes route to.
        """
        return self._push_views

    @push_views.setter
    def push_views(self, value: bool) -> None:
        self._push_views = bool(value)
        ids = self.control.engine.proxy_ids
        ids.clear()
        if self._push_views:
            ids.extend(self.proxies)

    def _candidates_for(self, client_id: str, index: int) -> List[str]:
        """The client's proxy failover list: its site's proxies, rotated.

        Rotation by client index both spreads the initial assignment
        (round-robin, as before) and staggers failover targets so one proxy
        death does not stampede every orphaned client onto the same sibling.
        """
        proxy_ids = list(self.proxies)
        if not proxy_ids:
            return []
        site = self.sites.get(client_id)
        if site is not None:
            same_site = [p for p in proxy_ids if self.sites.get(p) == site]
            if same_site:
                proxy_ids = same_site
        start = index % len(proxy_ids)
        return proxy_ids[start:] + proxy_ids[:start]

    # -- live control plane -----------------------------------------------------

    @property
    def server_logics(self) -> Dict[str, GroupServerEngine]:
        return {sid: replica.logic for sid, replica in self.replicas.items()}

    def resize(self, new_num_shards: int) -> MigrationReport:
        """Resize the ring *now*: metadata flips, the drain runs as frames.

        The shard map and view pushes update synchronously; the register
        drain proceeds over ``drain-*`` frames on the virtual clock.  Called
        from quiescence (no :meth:`run` on the stack) this pumps the event
        queue until the drain completes, so the returned report's counters
        are final -- the old synchronous contract.  Called mid-run (e.g.
        from a workload trigger) it returns immediately and the drain
        interleaves with client traffic; ``report.on_done`` fires when the
        last range installs.
        """
        report, effects = self.control.engine.start_resize(new_num_shards)
        self.migrations.append(report)
        self.control.run_effects(effects)
        self._settle(report)
        return report

    def schedule_resize(self, new_num_shards: int, at: float) -> None:
        """Resize the ring at virtual time ``at`` (mid-run, under load)."""
        self.events.schedule_at(
            at, lambda: self.resize(new_num_shards), label=f"kv-resize:{new_num_shards}"
        )

    def move_shard(self, shard_id: str, group_id: str) -> MigrationReport:
        """Re-home one shard onto another group *now*."""
        report, effects = self.control.engine.start_move(shard_id, group_id)
        self.migrations.append(report)
        self.control.run_effects(effects)
        self._settle(report)
        return report

    def _settle(self, report: MigrationReport) -> None:
        """Pump the queue to drain completion -- only from quiescence.

        Inside :meth:`run` the already-running loop delivers the drain
        frames; pumping here too would double-execute events.
        """
        if self.events.running:
            return
        while not report.done:
            event = self.events.pop()
            if event is None:
                break
            event.action()

    # -- the autoscaler ---------------------------------------------------------

    def start_autoscaler(self) -> None:
        """Arm the control plane's recurring autoscale tick."""
        self.control.run_effects(self.control.engine.start_autoscaler())

    def stop_autoscaler(self) -> None:
        """Disarm the tick so the event queue can drain to quiescence."""
        self.control.run_effects(self.control.engine.stop_autoscaler())

    def crash_proxy(self, proxy_id: str) -> None:
        """Crash an ingress proxy *now*: the network drops its traffic.

        Proxies hold no register state, so no drain is needed; clients
        behind it detect the silence via their failover watchdog, re-dial a
        sibling of the site (or go direct), and replay in-flight rounds.
        """
        if proxy_id not in self.proxies:
            raise KeyError(f"unknown proxy {proxy_id!r}")
        self.network.crash(proxy_id)
        self.crashed_proxies.add(proxy_id)

    def schedule_proxy_crash(self, proxy_id: str, at: float) -> None:
        """Crash ``proxy_id`` at virtual time ``at`` (mid-run, under load)."""
        if proxy_id not in self.proxies:
            raise KeyError(f"unknown proxy {proxy_id!r}")
        self.events.schedule_at(
            at, lambda: self.crash_proxy(proxy_id), label=f"crash:{proxy_id}"
        )

    def schedule_move(self, shard_id: str, group_id: str, at: float) -> None:
        self.events.schedule_at(
            at,
            lambda: self.move_shard(shard_id, group_id),
            label=f"kv-move:{shard_id}->{group_id}",
        )

    def failure_injector(self) -> KVFailureInjector:
        """A crash injector enforcing each group's fault budget."""
        return KVFailureInjector(self)

    def add_completion_watcher(self, watcher: Callable[[], None]) -> None:
        """Call ``watcher`` after every completed operation (e.g. to trigger
        a resize once a threshold of the workload has run)."""
        self._completion_watchers.append(watcher)

    def _notify_completion(self) -> None:
        for watcher in self._completion_watchers:
            watcher()

    # -- running ----------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: int = 5_000_000) -> None:
        """Run the virtual clock to quiescence (or a deadline)."""
        self.events.run(until=until, max_events=max_events)

    def batch_stats(self) -> BatchStats:
        merged = BatchStats()
        for client in self.clients.values():
            merged.merge(client.batch_stats)
        return merged

    def proxy_stats(self) -> BatchStats:
        """The proxies' merging/frame statistics (empty when direct)."""
        merged = BatchStats()
        for proxy in self.proxies.values():
            merged.merge(proxy.stats)
        return merged

    def replica_request_frames(self) -> int:
        """Request frames the replica servers served (the cost proxies cut)."""
        return sum(replica.logic.batches_served for replica in self.replicas.values())

    def replica_sub_ops(self) -> int:
        """Sub-operations the replica servers processed (the replica work
        read routing cuts)."""
        return sum(replica.logic.sub_ops_served for replica in self.replicas.values())

    def stale_replays(self) -> int:
        return sum(client.stale_replays for client in self.clients.values()) + sum(
            proxy.stale_replays for proxy in self.proxies.values()
        )

    def stale_bounces(self) -> int:
        """Sub-ops the replica tier fenced on a stale (shard, epoch) tag."""
        return sum(replica.logic.stale_bounces for replica in self.replicas.values())

    def proxy_failovers(self) -> int:
        return sum(client.proxy_failovers for client in self.clients.values())

    def proxy_drain_backoffs(self) -> int:
        """Rounds the proxies parked behind a draining key range."""
        return sum(p.engine.drain_backoffs for p in self.proxies.values())

    def replica_read_subs(self) -> int:
        """Replica-bound read sub-requests the proxies sent (the traffic the
        read cache removes; counted with the cache off too, for the
        baseline side of the comparison)."""
        return sum(p.engine.read_subs_sent for p in self.proxies.values())

    def cache_counters(self) -> Dict[str, int]:
        """Aggregated read-cache/lease counters across both tiers."""
        proxies = list(self.proxies.values())
        replicas = list(self.replicas.values())
        return {
            "hits": sum(p.engine.cache_hits for p in proxies),
            "misses": sum(p.engine.cache_misses for p in proxies),
            "invalidations": sum(p.engine.cache_invalidations for p in proxies),
            "proxy_lease_expiries": sum(p.engine.leases_expired for p in proxies),
            "leases_granted": sum(r.logic.leases_granted for r in replicas),
            "lease_expiries": sum(r.logic.leases_expired for r in replicas),
            "write_deferrals": sum(r.logic.write_deferrals for r in replicas),
        }

    def view_pushes_applied(self) -> int:
        return sum(proxy.view.pushes_applied for proxy in self.proxies.values())

    @property
    def view_pushes_sent(self) -> int:
        return self.control.engine.view_pushes_sent

    @property
    def view_push_acks(self) -> int:
        return self.control.engine.view_push_acks


def run_sim_kv_workload(
    workload: KVWorkload,
    num_shards: int = 4,
    protocol_key: str = "abd-mwmr",
    servers_per_shard: int = 3,
    max_faults: int = 1,
    max_batch: int = 8,
    delay_model: Optional[DelayModel] = None,
    flush_delay: float = 0.0,
    server_overhead: float = 0.2,
    server_per_op: float = 0.1,
    shard_map: Optional[ShardMap] = None,
    num_groups: Optional[int] = None,
    resize_to: Optional[int] = None,
    resize_after_ops: Optional[int] = None,
    move_to: Optional[Tuple[str, str]] = None,
    move_after_ops: Optional[int] = None,
    crashes_per_group: int = 0,
    crash_horizon: float = 20.0,
    crash_seed: int = 0,
    use_proxy: bool = False,
    num_proxies: int = 1,
    read_policy: Optional[ReadRoutingPolicy] = None,
    proxy_max_batch: int = 64,
    proxy_flush_delay: float = 0.0,
    sites: Optional[Mapping[str, str]] = None,
    push_views: bool = True,
    delta_views: bool = True,
    kill_proxy_after_ops: Optional[int] = None,
    proxy_timeout: float = PROXY_FAILOVER_TIMEOUT,
    trace_collector: Optional[TraceCollector] = None,
    autoscale: bool = False,
    drain_range_size: int = DRAIN_RANGE_SIZE,
    autoscale_interval: float = SIM_AUTOSCALE_INTERVAL,
    read_cache: int = 0,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    bounded_staleness: bool = False,
) -> KVRunResult:
    """Run a closed-loop kv workload on the simulator and collect results.

    ``resize_to`` triggers a *live* :meth:`SimKVCluster.resize` once
    ``resize_after_ops`` operations have completed (default: half the
    workload), while the remaining operations are still in flight.
    ``move_to=(shard_id, group_id)`` instead triggers a live
    :meth:`SimKVCluster.move_shard` of one shard under the same
    half-the-workload (or ``move_after_ops``) trigger.
    ``crashes_per_group`` crashes that many random replicas of every group
    (capped at each group's fault budget) within ``crash_horizon``.
    ``use_proxy`` routes every client through one of ``num_proxies``
    site-local ingress proxies (assigned round-robin) which merge rounds
    across clients and route reads per ``read_policy``; with crash
    injection, keep the default broadcast policy (or a ``spare`` >= the
    fault budget) so read rounds stay live.  ``push_views`` pushes the
    shard-map view to every proxy at each live rebalance (off: bounce-only
    refresh) -- as O(moved) deltas unless ``delta_views`` is off;
    ``kill_proxy_after_ops`` crashes one proxy per site once that many
    operations completed, exercising the clients' failover path --
    operations keep completing with no client-visible errors.
    ``autoscale`` arms the control plane's metrics-driven autoscaler for
    the duration of the run: every ``autoscale_interval`` virtual time
    units it folds the served-op counts per group and moves the hottest
    group's hottest shard to the coldest group when the imbalance exceeds
    the ratio threshold; ``drain_range_size`` bounds the per-range cutover
    pause of every migration (autoscaler-launched or explicit).
    ``read_cache`` (with ``use_proxy``) gives every proxy a lease-backed
    hot-key read cache of that many entries; ``lease_ttl`` is the
    server-side lease duration in virtual time units, and
    ``bounded_staleness`` opts into serving expired-but-recent entries
    (staleness bounded by ``lease_ttl``).
    """
    clients = workload.clients
    if shard_map is None:
        shard_map = ShardMap(
            num_shards,
            protocol_key=protocol_key,
            servers_per_shard=servers_per_shard,
            max_faults=max_faults,
            readers=len(clients),
            writers=len(clients),
            num_groups=num_groups,
        )
    cluster = SimKVCluster(
        shard_map,
        clients,
        delay_model=delay_model,
        max_batch=max_batch,
        flush_delay=flush_delay,
        server_overhead=server_overhead,
        server_per_op=server_per_op,
        num_proxies=num_proxies if use_proxy else 0,
        read_policy=read_policy,
        proxy_max_batch=proxy_max_batch,
        proxy_flush_delay=proxy_flush_delay,
        sites=sites,
        push_views=push_views,
        delta_views=delta_views,
        proxy_timeout=proxy_timeout,
        trace_collector=trace_collector,
        drain_range_size=drain_range_size,
        autoscale_interval=autoscale_interval,
        read_cache=read_cache,
        lease_ttl=lease_ttl,
        bounded_staleness=bounded_staleness,
    )

    if autoscale:
        cluster.start_autoscaler()
        # The tick rearms itself forever; disarm it once the workload is
        # done so the event queue can drain to quiescence (any migration
        # the last tick launched still completes -- its frames and retry
        # timers are ordinary events).
        total_ops = workload.total_operations()

        def stop_when_done() -> None:
            if (
                cluster.control.engine.autoscaling
                and cluster.recorder.completed_operations >= total_ops
            ):
                cluster.stop_autoscaler()

        cluster.add_completion_watcher(stop_when_done)

    kill_record: Dict[str, object] = {}
    if kill_proxy_after_ops is not None and use_proxy:
        kill_hook, kill_record = make_proxy_kill_trigger(
            lambda: cluster.recorder.completed_operations,
            kill_proxy_after_ops,
            lambda: pick_one_proxy_per_site(
                [(pid, cluster.sites.get(pid), pid not in cluster.crashed_proxies)
                 for pid in cluster.proxies]
            ),
            cluster.crash_proxy,
        )
        cluster.add_completion_watcher(kill_hook)

    resize_info: Optional[Dict[str, object]] = None
    if resize_to is not None:
        hook, resize_info = make_resize_trigger(
            cluster.resize,
            lambda: cluster.recorder.completed_operations,
            resize_to,
            resize_after_ops
            if resize_after_ops is not None
            else max(1, workload.total_operations() // 2),
            now=lambda: cluster.events.clock.now,
        )
        cluster.add_completion_watcher(hook)

    if move_to is not None:
        move_shard_id, move_group_id = move_to
        # The resize trigger is just "call this once past the threshold";
        # reuse it for a single-shard move.  The record's ``to`` field
        # carries the moved shard instead of a shard count.
        hook, move_info = make_resize_trigger(
            lambda _target: cluster.move_shard(move_shard_id, move_group_id),
            lambda: cluster.recorder.completed_operations,
            move_shard_id,
            move_after_ops
            if move_after_ops is not None
            else max(1, workload.total_operations() // 2),
            now=lambda: cluster.events.clock.now,
        )
        cluster.add_completion_watcher(hook)
        if resize_info is None:
            resize_info = move_info

    if crashes_per_group > 0:
        injector = cluster.failure_injector()
        injector.schedule_random_crashes(
            crashes_per_group, crash_horizon, SeededRng(crash_seed)
        )

    def make_issuer(client: KVClientProcess, remaining: Deque) -> Callable:
        # A factory so each client's chain closes over its own issuer; a
        # loop-local closure would resolve to the last client's at call time.
        def issue_next(_outcome=None) -> None:
            if not remaining:
                return
            op = remaining.popleft()
            if op.kind == "put":
                client.put(op.key, op.value, on_complete=issue_next)
            else:
                client.get(op.key, on_complete=issue_next)

        return issue_next

    depth = max(1, workload.pipeline_depth)
    for client_id in clients:
        issue_next = make_issuer(
            cluster.clients[client_id], deque(workload.sequences[client_id])
        )
        for _ in range(depth):
            cluster.events.schedule(0.0, issue_next, label=f"kv-start:{client_id}")

    cluster.run()
    histories = cluster.recorder.histories()
    result = KVRunResult(
        backend="sim",
        num_shards=len(shard_map),
        max_batch=max_batch,
        histories=histories,
        duration=cluster.events.clock.now,
        completed_ops=cluster.recorder.completed_operations,
        messages_sent=cluster.network.sent_count,
        batch_stats=cluster.batch_stats(),
        num_groups=len(shard_map.groups),
        stale_replays=cluster.stale_replays(),
        stale_bounces=cluster.stale_bounces(),
        resize=resize_info,
        num_proxies=len(cluster.proxies),
        proxy_stats=cluster.proxy_stats() if cluster.proxies else None,
        replica_frames=cluster.replica_request_frames(),
        replica_sub_ops=cluster.replica_sub_ops(),
        replica_read_subs=cluster.replica_read_subs(),
        proxy_failovers=cluster.proxy_failovers(),
        drain_backoffs=cluster.proxy_drain_backoffs(),
        view_pushes=cluster.view_pushes_applied(),
        cache=cluster.cache_counters() if read_cache else None,
        proxy_kill=kill_record or None,
        metrics=cluster.metrics.snapshot(),
        autoscale=(
            {
                "actions": [
                    {k: v for k, v in action.items() if k != "report"}
                    for action in cluster.control.engine.autoscale_actions
                ],
                "drains_completed": cluster.control.engine.drains_completed,
                "ranges_drained": cluster.control.engine.ranges_drained,
            }
            if autoscale
            else None
        ),
    )
    for history in histories.values():
        result.read_latencies.extend(
            op.latency for op in history.reads if op.latency is not None
        )
        result.write_latencies.extend(
            op.latency for op in history.writes if op.latency is not None
        )
    return result
