"""The key-value store on the discrete-event simulator.

Everything the single-register simulator does -- virtual clock, delay
models, deterministic event ordering -- carries over; this module adds the
two kv-specific process types:

* :class:`BatchReplicaProcess` -- a shard replica with a simple queueing
  model of server capacity: handling a batch costs ``overhead`` plus
  ``per_op`` per sub-operation of *service time*, and a busy server queues
  work.  This is what makes shard count matter in virtual time: a single
  shard's replicas saturate under load that many shards absorb in parallel,
  and batching amortizes the per-frame ``overhead``.

* :class:`KVClientProcess` -- one logical store client.  It may have many
  operations (on distinct keys) in flight at once; each operation drives the
  ordinary single-register client generator for its key, but instead of
  sending one frame per sub-request the client coalesces every sub-request
  bound for the same shard into one batch frame per replica
  (:func:`~repro.sim.messages.make_batch`).  Operations on the *same* key by
  the same client are serialized through a per-key backlog so every per-key
  sub-history stays well-formed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Set

from ..core.errors import ProtocolError
from ..core.operations import OpKind, new_op_id
from ..protocols.base import Broadcast, ClientLogic, OperationOutcome
from ..sim.clock import EventQueue
from ..sim.delays import ConstantDelay, DelayModel
from ..sim.messages import (
    BATCH_ACK_KIND,
    Message,
    make_batch,
    unpack_batch_ack,
)
from ..sim.network import Network
from ..sim.process import Process
from .batching import BatchShardServer, BatchStats
from .perkey import KVHistoryRecorder
from .sharding import ShardMap, ShardSpec
from .workload import KVRunResult, KVWorkload

__all__ = ["BatchReplicaProcess", "KVClientProcess", "SimKVCluster", "run_sim_kv_workload"]


class BatchReplicaProcess(Process):
    """A shard replica with service-time queueing on the virtual clock."""

    def __init__(
        self,
        server_id: str,
        logic: BatchShardServer,
        events: EventQueue,
        overhead: float = 0.2,
        per_op: float = 0.1,
    ) -> None:
        super().__init__(server_id)
        self.logic = logic
        self.events = events
        self.overhead = overhead
        self.per_op = per_op
        self.busy_until = 0.0

    def on_message(self, message: Message) -> None:
        # State transitions apply at delivery (preserving arrival order);
        # only the *reply* is held back by the modeled service time.
        batch_size = len(message.payload.get("ops", [])) or 1
        reply = self.logic.handle(message)
        if reply is None:
            return
        service = self.overhead + self.per_op * batch_size
        now = self.events.clock.now
        finish = max(now, self.busy_until) + service
        self.busy_until = finish
        if finish <= now:
            self.send(reply)
        else:
            self.events.schedule(
                finish - now, lambda: self.send(reply), label=f"service:{self.process_id}"
            )


@dataclass
class _PendingKVOp:
    """One in-flight kv operation driving a per-key register generator."""

    op_id: str
    key: str
    kind: OpKind
    shard: ShardSpec
    generator: Any
    round_trip: int = 0
    wait_for: int = 0
    request: Optional[Broadcast] = None
    replies: List[Message] = field(default_factory=list)
    on_complete: Optional[Callable[[OperationOutcome], None]] = None


class KVClientProcess(Process):
    """A store client multiplexing per-key operations into shard batches."""

    def __init__(
        self,
        client_id: str,
        shard_map: ShardMap,
        recorder: KVHistoryRecorder,
        events: EventQueue,
        max_batch: int = 8,
        flush_delay: float = 0.0,
    ) -> None:
        super().__init__(client_id)
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.shard_map = shard_map
        self.recorder = recorder
        self.events = events
        self.max_batch = max_batch
        self.flush_delay = flush_delay
        self.batch_stats = BatchStats()
        self.completed_operations = 0
        self._readers: Dict[str, ClientLogic] = {}
        self._writers: Dict[str, ClientLogic] = {}
        self._active: Dict[str, _PendingKVOp] = {}
        self._key_inflight: Set[str] = set()
        self._key_backlog: Dict[str, Deque[tuple]] = {}
        self._shard_queue: Dict[str, List[_PendingKVOp]] = {}
        self._flush_scheduled: Set[str] = set()

    # -- per-key client logic --------------------------------------------------

    def _writer_logic(self, key: str, shard: ShardSpec) -> ClientLogic:
        logic = self._writers.get(key)
        if logic is None:
            logic = shard.protocol.make_writer(self.process_id)
            self._writers[key] = logic
        return logic

    def _reader_logic(self, key: str, shard: ShardSpec) -> ClientLogic:
        logic = self._readers.get(key)
        if logic is None:
            logic = shard.protocol.make_reader(self.process_id)
            self._readers[key] = logic
        return logic

    # -- invoking operations ---------------------------------------------------

    def put(
        self,
        key: str,
        value: Any,
        on_complete: Optional[Callable[[OperationOutcome], None]] = None,
    ) -> str:
        """Invoke ``put(key, value)``; returns the operation id."""
        return self._invoke(OpKind.WRITE, key, value, on_complete)

    def get(
        self, key: str, on_complete: Optional[Callable[[OperationOutcome], None]] = None
    ) -> str:
        """Invoke ``get(key)``; returns the operation id."""
        return self._invoke(OpKind.READ, key, None, on_complete)

    def _invoke(self, kind: OpKind, key: str, value: Any, on_complete) -> str:
        op_id = new_op_id(f"{self.process_id}-{kind.value}")
        if key in self._key_inflight:
            # Same client, same key: queue behind the in-flight operation so
            # the key's sub-history stays sequential for this client.
            self._key_backlog.setdefault(key, deque()).append(
                (op_id, kind, value, on_complete)
            )
            return op_id
        self._start(op_id, kind, key, value, on_complete)
        return op_id

    def _start(self, op_id: str, kind: OpKind, key: str, value: Any, on_complete) -> None:
        shard = self.shard_map.shard_for(key)
        if kind is OpKind.WRITE:
            generator = self._writer_logic(key, shard).write_protocol(value)
        else:
            generator = self._reader_logic(key, shard).read_protocol()
        self._key_inflight.add(key)
        self.recorder.record_invocation(key, op_id, self.process_id, kind, value=value)
        pending = _PendingKVOp(
            op_id=op_id,
            key=key,
            kind=kind,
            shard=shard,
            generator=generator,
            on_complete=on_complete,
        )
        self._active[op_id] = pending
        self._advance(pending, first=True)

    # -- driving the generators ------------------------------------------------

    def _advance(self, pending: _PendingKVOp, first: bool = False) -> None:
        try:
            if first:
                request = next(pending.generator)
            else:
                request = pending.generator.send(list(pending.replies[: pending.wait_for]))
        except StopIteration as stop:
            self._complete(pending, stop.value)
            return
        if not isinstance(request, Broadcast):
            raise ProtocolError("client generators must yield Broadcast objects")
        pending.round_trip += 1
        pending.request = request
        pending.replies = []
        quorum = len(pending.shard.servers) - pending.shard.protocol.max_faults
        pending.wait_for = request.wait_for if request.wait_for is not None else quorum
        self._enqueue(pending)

    def _complete(self, pending: _PendingKVOp, outcome: OperationOutcome) -> None:
        if not isinstance(outcome, OperationOutcome):
            raise ProtocolError("operation generator must return an OperationOutcome")
        self.recorder.record_response(
            pending.op_id,
            value=outcome.value,
            tag=outcome.tag,
            round_trips=pending.round_trip,
        )
        del self._active[pending.op_id]
        self._key_inflight.discard(pending.key)
        self.completed_operations += 1
        backlog = self._key_backlog.get(pending.key)
        if backlog:
            op_id, kind, value, next_cb = backlog.popleft()
            self._start(op_id, kind, pending.key, value, next_cb)
        if pending.on_complete is not None:
            pending.on_complete(outcome)

    # -- shard batching --------------------------------------------------------

    def _enqueue(self, pending: _PendingKVOp) -> None:
        shard_id = pending.shard.shard_id
        self._shard_queue.setdefault(shard_id, []).append(pending)
        if shard_id not in self._flush_scheduled:
            self._flush_scheduled.add(shard_id)
            self.events.schedule(
                self.flush_delay,
                lambda: self._flush(shard_id),
                label=f"kv-flush:{self.process_id}:{shard_id}",
            )

    def _flush(self, shard_id: str) -> None:
        self._flush_scheduled.discard(shard_id)
        queue = self._shard_queue.get(shard_id, [])
        if not queue:
            return
        batch, rest = queue[: self.max_batch], queue[self.max_batch :]
        self._shard_queue[shard_id] = rest
        if rest:
            # More coalesced work than one frame carries: flush again at once.
            self._flush_scheduled.add(shard_id)
            self.events.schedule(0.0, lambda: self._flush(shard_id), label="kv-flush")
        shard = batch[0].shard
        self.batch_stats.record(len(batch))
        for server_id in shard.servers:
            subs = [
                (
                    op.key,
                    Message(
                        sender=self.process_id,
                        receiver=server_id,
                        kind=op.request.kind,
                        payload=op.request.payload_for(server_id),
                        op_id=op.op_id,
                        round_trip=op.round_trip,
                    ),
                )
                for op in batch
            ]
            self.send(make_batch(self.process_id, server_id, subs))

    # -- network events --------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if message.kind != BATCH_ACK_KIND:
            return
        for _key, sub in unpack_batch_ack(message):
            if sub is None:
                continue
            pending = self._active.get(sub.op_id)
            if pending is None or sub.round_trip != pending.round_trip:
                continue  # straggler from an earlier round-trip or operation
            pending.replies.append(sub)
            if len(pending.replies) == pending.wait_for:
                self._advance(pending)


class SimKVCluster:
    """All shards of a :class:`ShardMap` plus clients on one virtual clock."""

    def __init__(
        self,
        shard_map: ShardMap,
        client_ids: List[str],
        delay_model: Optional[DelayModel] = None,
        max_batch: int = 8,
        flush_delay: float = 0.0,
        server_overhead: float = 0.2,
        server_per_op: float = 0.1,
    ) -> None:
        self.shard_map = shard_map
        self.events = EventQueue()
        self.network = Network(self.events, delay_model or ConstantDelay())
        self.recorder = KVHistoryRecorder(lambda: self.events.clock.now)
        self.replicas: Dict[str, BatchReplicaProcess] = {}
        for spec in shard_map.shards.values():
            for server_id in spec.servers:
                replica = BatchReplicaProcess(
                    server_id,
                    BatchShardServer(server_id, spec.protocol),
                    self.events,
                    overhead=server_overhead,
                    per_op=server_per_op,
                )
                replica.attach(self.network)
                self.replicas[server_id] = replica
        self.clients: Dict[str, KVClientProcess] = {}
        for client_id in client_ids:
            client = KVClientProcess(
                client_id,
                shard_map,
                self.recorder,
                self.events,
                max_batch=max_batch,
                flush_delay=flush_delay,
            )
            client.attach(self.network)
            self.clients[client_id] = client

    def run(self, until: Optional[float] = None, max_events: int = 5_000_000) -> None:
        """Run the virtual clock to quiescence (or a deadline)."""
        self.events.run(until=until, max_events=max_events)

    def batch_stats(self) -> BatchStats:
        merged = BatchStats()
        for client in self.clients.values():
            merged.merge(client.batch_stats)
        return merged


def run_sim_kv_workload(
    workload: KVWorkload,
    num_shards: int = 4,
    protocol_key: str = "abd-mwmr",
    servers_per_shard: int = 3,
    max_faults: int = 1,
    max_batch: int = 8,
    delay_model: Optional[DelayModel] = None,
    flush_delay: float = 0.0,
    server_overhead: float = 0.2,
    server_per_op: float = 0.1,
    shard_map: Optional[ShardMap] = None,
) -> KVRunResult:
    """Run a closed-loop kv workload on the simulator and collect results."""
    clients = workload.clients
    if shard_map is None:
        shard_map = ShardMap(
            num_shards,
            protocol_key=protocol_key,
            servers_per_shard=servers_per_shard,
            max_faults=max_faults,
            readers=len(clients),
            writers=len(clients),
        )
    cluster = SimKVCluster(
        shard_map,
        clients,
        delay_model=delay_model,
        max_batch=max_batch,
        flush_delay=flush_delay,
        server_overhead=server_overhead,
        server_per_op=server_per_op,
    )

    def make_issuer(client: KVClientProcess, remaining: Deque) -> Callable:
        # A factory so each client's chain closes over its own issuer; a
        # loop-local closure would resolve to the last client's at call time.
        def issue_next(_outcome=None) -> None:
            if not remaining:
                return
            op = remaining.popleft()
            if op.kind == "put":
                client.put(op.key, op.value, on_complete=issue_next)
            else:
                client.get(op.key, on_complete=issue_next)

        return issue_next

    depth = max(1, workload.pipeline_depth)
    for client_id in clients:
        issue_next = make_issuer(
            cluster.clients[client_id], deque(workload.sequences[client_id])
        )
        for _ in range(depth):
            cluster.events.schedule(0.0, issue_next, label=f"kv-start:{client_id}")

    cluster.run()
    histories = cluster.recorder.histories()
    result = KVRunResult(
        backend="sim",
        num_shards=len(shard_map),
        max_batch=max_batch,
        histories=histories,
        duration=cluster.events.clock.now,
        completed_ops=cluster.recorder.completed_operations,
        messages_sent=cluster.network.sent_count,
        batch_stats=cluster.batch_stats(),
    )
    for history in histories.values():
        result.read_latencies.extend(
            op.latency for op in history.reads if op.latency is not None
        )
        result.write_latencies.extend(
            op.latency for op in history.writes if op.latency is not None
        )
    return result
