"""The key-value store on the discrete-event simulator.

Everything the single-register simulator does -- virtual clock, delay
models, deterministic event ordering -- carries over; this module adds the
kv-specific pieces:

* :class:`BatchReplicaProcess` -- a replica-group server with a simple
  queueing model of server capacity: handling a batch costs ``overhead``
  plus ``per_op`` per sub-operation of *service time*, and a busy server
  queues work.  This is what makes group count matter in virtual time: one
  group's replicas saturate under load that many groups absorb in parallel,
  and batching amortizes the per-frame ``overhead``.

* :class:`KVClientProcess` -- one logical store client.  It may have many
  operations (on distinct keys) in flight at once; each operation drives the
  ordinary single-register client generator for its key, but instead of
  sending one frame per sub-request the client coalesces every sub-request
  bound for the same *replica group* into one batch frame per replica
  (:func:`~repro.sim.messages.make_batch`) -- operations on different shards
  hosted by the same group share rounds.  Every sub-request carries the
  (shard, epoch) tag the client resolved; when a live resize or shard move
  fences that epoch, the bounced round is replayed against the new owner
  (round-trips are idempotent, so the per-key generator never notices).

* :class:`ProxyProcess` -- one site-local ingress proxy
  (:mod:`repro.kvstore.proxy`).  Clients constructed with a ``proxy_id``
  send one ``"proxy"`` frame per flush instead of one batch frame per
  replica; the proxy merges forwarded rounds *across clients* into shared
  replica frames per replica group, routes reads through its
  :class:`~repro.kvstore.proxy.ReadRoutingPolicy`, and absorbs stale-epoch
  bounces (cached-view refresh + replay) so live rebalancing is invisible
  end-to-end.

* :class:`SimKVCluster` -- the replica groups of a
  :class:`~repro.kvstore.sharding.ShardMap` plus clients on one virtual
  clock, with a live control plane: :meth:`SimKVCluster.resize` /
  :meth:`SimKVCluster.move_shard` rebalance the ring mid-run, and
  :class:`KVFailureInjector` crashes replicas within each group's fault
  budget (usable during a resize -- migration models state surviving on the
  replica, and quorums of ``S - t`` keep every key available).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional, Set, Tuple

from ..core.errors import ProtocolError
from ..core.operations import OpKind, new_op_id
from ..protocols.base import Broadcast, ClientLogic, OperationOutcome
from ..sim.clock import EventQueue, ScheduledEvent
from ..sim.delays import ConstantDelay, DelayModel
from ..sim.failures import CrashPlan, FailureInjector
from ..sim.messages import (
    BATCH_ACK_KIND,
    PROXY_ACK_KIND,
    PROXY_KIND,
    VIEW_PUSH_KIND,
    Message,
    ProxySubReply,
    ProxySubRequest,
    SubRequest,
    make_batch,
    make_proxy_ack,
    make_proxy_request,
    make_view_push,
    unpack_batch_ack,
    unpack_proxy_ack,
    unpack_proxy_request,
    unpack_view_push,
)
from ..sim.network import Network
from ..sim.process import Process
from ..util.rng import SeededRng
from .batching import (
    MAX_STALE_RETRIES,
    BatchGroupServer,
    BatchStats,
    is_stale_reply,
)
from .proxy import (
    BroadcastReads,
    CachedShardView,
    ProxyRoute,
    ReadRoutingPolicy,
    attempt_scoped_id,
    make_proxy_kill_trigger,
    pick_one_proxy_per_site,
    plan_round,
)
from .migration import (
    MigrationReport,
    apply_move_plan,
    apply_resize_plan,
    make_resize_trigger,
)
from .perkey import KVHistoryRecorder
from .sharding import ShardMap, ShardSpec
from .workload import KVRunResult, KVWorkload

__all__ = [
    "BatchReplicaProcess",
    "KVClientProcess",
    "ProxyProcess",
    "KVFailureInjector",
    "SimKVCluster",
    "run_sim_kv_workload",
]


class BatchReplicaProcess(Process):
    """A group replica with service-time queueing on the virtual clock."""

    def __init__(
        self,
        server_id: str,
        logic: BatchGroupServer,
        events: EventQueue,
        overhead: float = 0.2,
        per_op: float = 0.1,
    ) -> None:
        super().__init__(server_id)
        self.logic = logic
        self.events = events
        self.overhead = overhead
        self.per_op = per_op
        self.busy_until = 0.0

    def on_message(self, message: Message) -> None:
        # State transitions apply at delivery (preserving arrival order);
        # only the *reply* is held back by the modeled service time.
        batch_size = len(message.payload.get("ops", [])) or 1
        reply = self.logic.handle(message)
        if reply is None:
            return
        service = self.overhead + self.per_op * batch_size
        now = self.events.clock.now
        finish = max(now, self.busy_until) + service
        self.busy_until = finish
        if finish <= now:
            self.send(reply)
        else:
            self.events.schedule(
                finish - now, lambda: self.send(reply), label=f"service:{self.process_id}"
            )


@dataclass
class _ProxyPending:
    """One forwarded round the proxy is driving against a replica group."""

    client: str
    sub: ProxySubRequest
    route: Optional[ProxyRoute] = None
    scoped_id: str = ""
    targets: tuple = ()
    wait_for: int = 0
    replies: List[Message] = field(default_factory=list)
    stale_retries: int = 0


class ProxyProcess(Process):
    """A site-local ingress proxy on the virtual clock.

    Holds no register state: every pending entry is one in-flight quorum
    round, so a proxy can be added or removed per site without any data
    migration.  Rounds forwarded by *different clients* that resolve to the
    same replica group coalesce into one shared batch frame per targeted
    replica -- the cross-client merge the per-client batching layer cannot
    do.  Replica-bound sub-messages keep the **originating client** as
    their sender (the protocols' crucial-info bookkeeping is per client),
    while their op ids are attempt-scoped so a replayed round can never mix
    replies from the pre- and post-rebalance owner groups.
    """

    def __init__(
        self,
        proxy_id: str,
        shard_map: ShardMap,
        events: EventQueue,
        read_policy: Optional[ReadRoutingPolicy] = None,
        max_batch: int = 64,
        flush_delay: float = 0.0,
    ) -> None:
        super().__init__(proxy_id)
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.view = CachedShardView(shard_map)
        self.read_policy = read_policy or BroadcastReads()
        self.events = events
        self.max_batch = max_batch
        self.flush_delay = flush_delay
        self.stats = BatchStats()
        self.stale_replays = 0
        self._attempts = 0
        self._pending: Dict[tuple, _ProxyPending] = {}
        self._group_queue: Dict[str, List[_ProxyPending]] = {}
        self._flush_scheduled: Set[str] = set()

    # -- admission and routing -------------------------------------------------

    def on_message(self, message: Message) -> None:
        if message.kind == PROXY_KIND:
            for sub in unpack_proxy_request(message):
                self._dispatch(_ProxyPending(client=message.sender, sub=sub))
        elif message.kind == BATCH_ACK_KIND:
            self._on_replica_ack(message)
        elif message.kind == VIEW_PUSH_KIND:
            # Control-plane push at a live rebalance: adopt the fresh view
            # so subsequent rounds route correctly on the first attempt
            # instead of paying a stale-epoch bounce each.
            self.view.apply_push(unpack_view_push(message))

    def _dispatch(self, pending: _ProxyPending) -> None:
        """Route one round (fresh or replayed) through the current view."""
        sub = pending.sub
        plan = plan_round(self.view, self.read_policy, self.process_id, sub)
        self._attempts += 1
        pending.route = plan.route
        pending.targets = plan.targets
        pending.wait_for = plan.wait_for
        pending.scoped_id = attempt_scoped_id(sub.op_id, self._attempts)
        pending.replies = []
        self._pending[(pending.scoped_id, sub.round_trip)] = pending
        group_id = plan.route.group_id
        self._group_queue.setdefault(group_id, []).append(pending)
        if group_id not in self._flush_scheduled:
            self._flush_scheduled.add(group_id)
            self.events.schedule(
                self.flush_delay,
                lambda: self._flush(group_id),
                label=f"proxy-flush:{self.process_id}:{group_id}",
            )

    # -- the shared replica rounds ----------------------------------------------

    def _flush(self, group_id: str) -> None:
        self._flush_scheduled.discard(group_id)
        queue = self._group_queue.get(group_id, [])
        if not queue:
            return
        batch, rest = queue[: self.max_batch], queue[self.max_batch :]
        self._group_queue[group_id] = rest
        if rest:
            self._flush_scheduled.add(group_id)
            self.events.schedule(0.0, lambda: self._flush(group_id), label="proxy-flush")
        self.stats.record(len(batch))
        # One frame per replica targeted by at least one round of the batch;
        # reads restricted by the routing policy simply skip the far replicas.
        servers: List[str] = []
        seen: Set[str] = set()
        for pending in batch:
            for server in pending.targets:
                if server not in seen:
                    seen.add(server)
                    servers.append(server)
        for server_id in servers:
            subs = [
                SubRequest(
                    key=p.sub.key,
                    message=Message(
                        sender=p.client,
                        receiver=server_id,
                        kind=p.sub.kind,
                        payload=p.sub.payload_for(server_id),
                        op_id=p.scoped_id,
                        round_trip=p.sub.round_trip,
                    ),
                    shard=p.route.shard_id,
                    epoch=p.route.epoch,
                )
                for p in batch
                if server_id in p.targets
            ]
            self.stats.record_frames(sent=1)
            self.send(make_batch(self.process_id, server_id, subs))

    # -- replica replies ---------------------------------------------------------

    def _on_replica_ack(self, message: Message) -> None:
        self.stats.record_frames(received=1)
        for _key, reply in unpack_batch_ack(message):
            if reply is None or reply.op_id is None:
                continue
            pending = self._pending.get((reply.op_id, reply.round_trip))
            if pending is None:
                continue  # straggler from a completed or replayed attempt
            if is_stale_reply(reply):
                self._replay(pending)
                continue
            pending.replies.append(reply)
            if len(pending.replies) == pending.wait_for:
                self._finish(pending)

    def _replay(self, pending: _ProxyPending) -> None:
        """A replica fenced this round: refresh the view and re-route it."""
        self._pending.pop((pending.scoped_id, pending.sub.round_trip), None)
        pending.stale_retries += 1
        self.stale_replays += 1
        if pending.stale_retries > MAX_STALE_RETRIES:
            self._finish(
                pending,
                error=(
                    f"shard map never converged after {pending.stale_retries} "
                    "stale replays"
                ),
            )
            return
        self.view.refresh()
        self._dispatch(pending)

    def _finish(self, pending: _ProxyPending, error: Optional[str] = None) -> None:
        self._pending.pop((pending.scoped_id, pending.sub.round_trip), None)
        sub_reply = ProxySubReply(
            op_id=pending.sub.op_id,
            round_trip=pending.sub.round_trip,
            replies=tuple(pending.replies),
            error=error,
        )
        self.send(make_proxy_ack(self.process_id, pending.client, [sub_reply]))


@dataclass
class _PendingKVOp:
    """One in-flight kv operation driving a per-key register generator."""

    op_id: str
    key: str
    kind: OpKind
    spec: ShardSpec
    epoch: int
    generator: Any
    round_trip: int = 0
    wait_for: int = 0
    stale_retries: int = 0
    request: Optional[Broadcast] = None
    replies: List[Message] = field(default_factory=list)
    on_complete: Optional[Callable[[OperationOutcome], None]] = None
    #: The failover-generation-scoped op id this round was last forwarded
    #: under (proxy mode only); the key into the proxy-rounds table.
    proxy_op_id: Optional[str] = None


#: How long (virtual time) a client waits with proxy rounds outstanding and
#: no proxy ack arriving before it declares the proxy dead and fails over.
#: Generous by design: a merely *slow* proxy (e.g. WAN replica legs under a
#: geo delay model) resets the watchdog with every ack it does deliver, so
#: only a silent proxy -- crashed, its traffic dropped -- trips it.
PROXY_FAILOVER_TIMEOUT = 200.0


class KVClientProcess(Process):
    """A store client multiplexing per-key operations into group batches.

    With a ``proxy_id`` the client routes *every* round through that ingress
    proxy instead of broadcasting to replicas itself: its in-flight rounds
    (for any shard, any group) coalesce into one ``"proxy"`` frame per
    flush, the proxy owns shard resolution and stale-epoch replay, and each
    round comes back as one ``"proxy-ack"`` carrying the whole quorum.

    The proxy leg is fault-tolerant: ``proxy_candidates`` is the full proxy
    list of the client's site, and a watchdog on the virtual clock detects a
    proxy that stops answering (crashed via the failure injector -- the
    simulated network drops its traffic silently, so there is no connection
    reset to observe).  On failover the client advances to the next
    candidate -- or to **direct replica connections** when the site's list
    is exhausted -- and replays every in-flight round.  Replayed rounds are
    forwarded under a fresh failover *generation* scope
    (:func:`~repro.kvstore.proxy.attempt_scoped_id`), so an ack relayed by
    the previous proxy can never complete a round re-issued through the
    next one.
    """

    def __init__(
        self,
        client_id: str,
        shard_map: ShardMap,
        recorder: KVHistoryRecorder,
        events: EventQueue,
        max_batch: int = 8,
        flush_delay: float = 0.0,
        completion_hook: Optional[Callable[[], None]] = None,
        proxy_id: Optional[str] = None,
        proxy_candidates: Optional[List[str]] = None,
        proxy_timeout: float = PROXY_FAILOVER_TIMEOUT,
    ) -> None:
        super().__init__(client_id)
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if proxy_timeout <= 0:
            raise ValueError("proxy_timeout must be positive")
        self.shard_map = shard_map
        self.recorder = recorder
        self.events = events
        self.max_batch = max_batch
        self.flush_delay = flush_delay
        self.completion_hook = completion_hook
        if proxy_candidates:
            self._proxy_candidates = list(proxy_candidates)
            self.proxy_id: Optional[str] = self._proxy_candidates[0]
            if proxy_id is not None and proxy_id != self.proxy_id:
                raise ValueError("proxy_id must head proxy_candidates")
        else:
            self._proxy_candidates = [proxy_id] if proxy_id is not None else []
            self.proxy_id = proxy_id
        self.proxy_timeout = proxy_timeout
        self.proxy_failovers = 0
        self.batch_stats = BatchStats()
        self.completed_operations = 0
        self.stale_replays = 0
        self._proxy_cursor = 0
        self._proxy_generation = 0
        self._proxy_rounds: Dict[Tuple[str, int], _PendingKVOp] = {}
        self._proxy_acks_seen = 0
        self._watchdog: Optional[ScheduledEvent] = None
        self._readers: Dict[str, ClientLogic] = {}
        self._writers: Dict[str, ClientLogic] = {}
        self._logic_homes: Dict[str, str] = {}
        self._active: Dict[str, _PendingKVOp] = {}
        self._key_inflight: Set[str] = set()
        self._key_backlog: Dict[str, Deque[tuple]] = {}
        self._group_queue: Dict[str, List[_PendingKVOp]] = {}
        self._flush_scheduled: Set[str] = set()

    # -- per-key client logic --------------------------------------------------

    def _refresh_home(self, key: str, spec: ShardSpec) -> None:
        # Cached per-key client logic was built against a specific group's
        # server list; when a move re-homes the shard, rebuild it (a fresh
        # reader/writer joining is always safe for every protocol here).
        if self._logic_homes.get(key) != spec.group.group_id:
            self._logic_homes[key] = spec.group.group_id
            self._readers.pop(key, None)
            self._writers.pop(key, None)

    def _writer_logic(self, key: str, spec: ShardSpec) -> ClientLogic:
        logic = self._writers.get(key)
        if logic is None:
            logic = spec.protocol.make_writer(self.process_id)
            self._writers[key] = logic
        return logic

    def _reader_logic(self, key: str, spec: ShardSpec) -> ClientLogic:
        logic = self._readers.get(key)
        if logic is None:
            logic = spec.protocol.make_reader(self.process_id)
            self._readers[key] = logic
        return logic

    # -- invoking operations ---------------------------------------------------

    def put(
        self,
        key: str,
        value: Any,
        on_complete: Optional[Callable[[OperationOutcome], None]] = None,
    ) -> str:
        """Invoke ``put(key, value)``; returns the operation id."""
        return self._invoke(OpKind.WRITE, key, value, on_complete)

    def get(
        self, key: str, on_complete: Optional[Callable[[OperationOutcome], None]] = None
    ) -> str:
        """Invoke ``get(key)``; returns the operation id."""
        return self._invoke(OpKind.READ, key, None, on_complete)

    def _invoke(self, kind: OpKind, key: str, value: Any, on_complete) -> str:
        op_id = new_op_id(f"{self.process_id}-{kind.value}")
        if key in self._key_inflight:
            # Same client, same key: queue behind the in-flight operation so
            # the key's sub-history stays sequential for this client.
            self._key_backlog.setdefault(key, deque()).append(
                (op_id, kind, value, on_complete)
            )
            return op_id
        self._start(op_id, kind, key, value, on_complete)
        return op_id

    def _start(self, op_id: str, kind: OpKind, key: str, value: Any, on_complete) -> None:
        spec = self.shard_map.shard_for(key)
        self._refresh_home(key, spec)
        if kind is OpKind.WRITE:
            generator = self._writer_logic(key, spec).write_protocol(value)
        else:
            generator = self._reader_logic(key, spec).read_protocol()
        self._key_inflight.add(key)
        self.recorder.record_invocation(key, op_id, self.process_id, kind, value=value)
        pending = _PendingKVOp(
            op_id=op_id,
            key=key,
            kind=kind,
            spec=spec,
            epoch=spec.epoch,
            generator=generator,
            on_complete=on_complete,
        )
        self._active[op_id] = pending
        self._advance(pending, first=True)

    # -- driving the generators ------------------------------------------------

    def _advance(self, pending: _PendingKVOp, first: bool = False) -> None:
        try:
            if first:
                request = next(pending.generator)
            else:
                request = pending.generator.send(list(pending.replies[: pending.wait_for]))
        except StopIteration as stop:
            self._complete(pending, stop.value)
            return
        if not isinstance(request, Broadcast):
            raise ProtocolError("client generators must yield Broadcast objects")
        pending.request = request
        self._dispatch_round(pending)

    def _dispatch_round(self, pending: _PendingKVOp) -> None:
        """Send the current round (fresh or replayed) to the owner group."""
        pending.round_trip += 1
        pending.replies = []
        spec = self.shard_map.shard_for(pending.key)
        pending.spec = spec
        pending.epoch = spec.epoch
        quorum = spec.quorum_size
        request = pending.request
        pending.wait_for = request.wait_for if request.wait_for is not None else quorum
        self._enqueue(pending)

    def _replay_round(self, pending: _PendingKVOp) -> None:
        """Re-send the in-flight round after a stale-shard bounce.

        Round-trips are idempotent (queries trivially; updates because
        servers only adopt larger tags), so replaying the same broadcast
        against the re-resolved owner group is always safe -- the per-key
        generator never observes the bounce.  Bumping ``round_trip`` makes
        any straggler replies from the stale attempt ignorable.
        """
        pending.stale_retries += 1
        self.stale_replays += 1
        if pending.stale_retries > MAX_STALE_RETRIES:
            raise ProtocolError(
                f"operation {pending.op_id} bounced {pending.stale_retries} times; "
                "shard map never converged"
            )
        self._refresh_home(pending.key, self.shard_map.shard_for(pending.key))
        self._dispatch_round(pending)

    def _complete(self, pending: _PendingKVOp, outcome: OperationOutcome) -> None:
        if not isinstance(outcome, OperationOutcome):
            raise ProtocolError("operation generator must return an OperationOutcome")
        self.recorder.record_response(
            pending.op_id,
            value=outcome.value,
            tag=outcome.tag,
            round_trips=pending.round_trip,
        )
        del self._active[pending.op_id]
        self._key_inflight.discard(pending.key)
        self.completed_operations += 1
        backlog = self._key_backlog.get(pending.key)
        if backlog:
            op_id, kind, value, next_cb = backlog.popleft()
            self._start(op_id, kind, pending.key, value, next_cb)
        if pending.on_complete is not None:
            pending.on_complete(outcome)
        if self.completion_hook is not None:
            self.completion_hook()

    # -- group batching --------------------------------------------------------

    def _enqueue(self, pending: _PendingKVOp) -> None:
        # Through a proxy every round shares one queue (the proxy does the
        # per-group split), so rounds for different groups coalesce too.
        queue_key = (
            "@proxy" if self.proxy_id is not None else pending.spec.group.group_id
        )
        self._group_queue.setdefault(queue_key, []).append(pending)
        if queue_key not in self._flush_scheduled:
            self._flush_scheduled.add(queue_key)
            self.events.schedule(
                self.flush_delay,
                lambda: self._flush(queue_key),
                label=f"kv-flush:{self.process_id}:{queue_key}",
            )

    def _flush(self, queue_key: str) -> None:
        self._flush_scheduled.discard(queue_key)
        queue = self._group_queue.get(queue_key, [])
        if not queue:
            return
        batch, rest = queue[: self.max_batch], queue[self.max_batch :]
        self._group_queue[queue_key] = rest
        if rest:
            # More coalesced work than one frame carries: flush again at once.
            self._flush_scheduled.add(queue_key)
            self.events.schedule(0.0, lambda: self._flush(queue_key), label="kv-flush")
        self.batch_stats.record(len(batch))
        if self.proxy_id is not None:
            subs = []
            for op in batch:
                # Scope the forwarded id by the failover generation: should
                # this round be replayed through a different proxy, replies
                # relayed by the old one miss the new key and are dropped.
                op.proxy_op_id = attempt_scoped_id(op.op_id, self._proxy_generation)
                self._proxy_rounds[(op.proxy_op_id, op.round_trip)] = op
                subs.append(
                    ProxySubRequest(
                        key=op.key,
                        op_kind=op.kind.value,
                        kind=op.request.kind,
                        payload=op.request.payload,
                        op_id=op.proxy_op_id,
                        round_trip=op.round_trip,
                        wait_for=op.request.wait_for,
                        per_server=op.request.per_server_payload or None,
                    )
                )
            self.batch_stats.record_frames(sent=1)
            self.send(make_proxy_request(self.process_id, self.proxy_id, subs))
            self._arm_watchdog()
            return
        group = batch[0].spec.group
        for server_id in group.servers:
            subs = [
                SubRequest(
                    key=op.key,
                    message=Message(
                        sender=self.process_id,
                        receiver=server_id,
                        kind=op.request.kind,
                        payload=op.request.payload_for(server_id),
                        op_id=op.op_id,
                        round_trip=op.round_trip,
                    ),
                    shard=op.spec.shard_id,
                    epoch=op.epoch,
                )
                for op in batch
            ]
            self.batch_stats.record_frames(sent=1)
            self.send(make_batch(self.process_id, server_id, subs))

    # -- proxy failover ----------------------------------------------------------

    def _arm_watchdog(self) -> None:
        """Watch for a proxy that stops answering while rounds are out.

        The simulated network drops a crashed process's traffic *silently*,
        so proxy death has no connection-reset edge to observe; instead, a
        single cancellable event fires ``proxy_timeout`` after the last arm.
        Progress (any proxy ack) re-arms it; rounds all completing cancels
        it (so an idle client schedules nothing and quiescence-driven runs
        terminate at the workload's natural end).  Only a proxy that is
        silent for the whole window -- with rounds still outstanding --
        trips failover, and a spurious trip is merely wasteful, never
        unsafe: rounds are idempotent and replays are generation-scoped.
        """
        if self._watchdog is not None or self.proxy_id is None or not self._proxy_rounds:
            return
        acks_at_arm = self._proxy_acks_seen

        def check() -> None:
            self._watchdog = None
            if self.proxy_id is None or not self._proxy_rounds:
                return
            if self._proxy_acks_seen > acks_at_arm:
                self._arm_watchdog()  # alive, just slow: watch another window
                return
            self._failover_proxy()

        self._watchdog = self.events.schedule(
            self.proxy_timeout, check, label=f"proxy-watchdog:{self.process_id}"
        )

    def _disarm_watchdog(self) -> None:
        if self._watchdog is not None:
            self._watchdog.cancel()
            self._watchdog = None

    def _failover_proxy(self) -> None:
        """The current proxy is dead: advance the ingress path and replay.

        The next candidate of the site takes over; with the list exhausted,
        ``proxy_id`` drops to ``None`` and the client broadcasts to replica
        groups directly (the pre-proxy data path, always available because
        proxies hold no register state).  Every in-flight round is
        re-dispatched -- re-resolved against the live shard map, re-batched,
        and forwarded under the bumped generation scope.
        """
        self.proxy_failovers += 1
        self._proxy_generation += 1
        self._disarm_watchdog()
        self._proxy_cursor += 1
        if self._proxy_cursor < len(self._proxy_candidates):
            self.proxy_id = self._proxy_candidates[self._proxy_cursor]
        else:
            self.proxy_id = None
        inflight = list(self._proxy_rounds.values())
        self._proxy_rounds.clear()
        queued = self._group_queue.pop("@proxy", [])
        self._flush_scheduled.discard("@proxy")
        for pending in inflight:
            pending.proxy_op_id = None
            self._dispatch_round(pending)
        for pending in queued:
            # Never sent: no fresh attempt needed, just requeue at the new
            # ingress (or the owner group, when falling back to direct).
            pending.proxy_op_id = None
            self._enqueue(pending)

    # -- network events --------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if message.kind == PROXY_ACK_KIND:
            self.batch_stats.record_frames(received=1)
            self._proxy_acks_seen += 1
            for sub_reply in unpack_proxy_ack(message):
                pending = self._proxy_rounds.pop(
                    (sub_reply.op_id, sub_reply.round_trip), None
                )
                if pending is None:
                    continue  # straggler from a completed or replayed attempt
                if sub_reply.error is not None:
                    raise ProtocolError(
                        f"proxy failed operation {sub_reply.op_id}: {sub_reply.error}"
                    )
                # The proxy delivers the whole quorum at once (it already
                # waited for wait_for distinct replicas and absorbed any
                # stale-epoch replays).
                pending.replies = list(sub_reply.replies)
                pending.wait_for = len(pending.replies)
                self._advance(pending)
            if not self._proxy_rounds:
                self._disarm_watchdog()
            return
        if message.kind != BATCH_ACK_KIND:
            return
        self.batch_stats.record_frames(received=1)
        for _key, sub in unpack_batch_ack(message):
            if sub is None:
                continue
            pending = self._active.get(sub.op_id)
            if pending is None or sub.round_trip != pending.round_trip:
                continue  # straggler from an earlier round-trip or operation
            if is_stale_reply(sub):
                # The shard was resized or moved while this round was in
                # flight; re-resolve and replay the round.  Bouncing bumps
                # round_trip, so the group's other (equally stale) replies
                # to this attempt are ignored.
                self._replay_round(pending)
                continue
            pending.replies.append(sub)
            if len(pending.replies) == pending.wait_for:
                self._advance(pending)


class KVFailureInjector:
    """Crash injection for a kv cluster, enforcing per-group fault budgets.

    Wraps one :class:`~repro.sim.failures.FailureInjector` per replica group
    so an experiment can crash up to ``t`` replicas *of each group* -- the
    failure model every group's register protocol claims to tolerate --
    without ever exceeding a budget by accident.
    """

    def __init__(self, cluster: "SimKVCluster") -> None:
        self.cluster = cluster
        self._by_group: Dict[str, FailureInjector] = {}
        self._group_of: Dict[str, str] = {}
        for group_id, group in cluster.shard_map.groups.items():
            self._by_group[group_id] = FailureInjector(
                cluster.events, cluster.network, group.servers, group.max_faults
            )
            for server_id in group.servers:
                self._group_of[server_id] = group_id

    def schedule_crash(self, server_id: str, time: float) -> CrashPlan:
        """Crash one replica at ``time`` (within its group's budget)."""
        return self._by_group[self._group_of[server_id]].schedule_crash(
            server_id, time
        )

    def schedule_proxy_crash(self, proxy_id: str, time: float) -> CrashPlan:
        """Crash an ingress proxy at ``time``.

        Proxies are stateless relays outside every group's ``t`` budget --
        killing one loses no register state and no quorum member, which is
        exactly why clients can ride it out by failing over.
        """
        self.cluster.schedule_proxy_crash(proxy_id, time)
        return CrashPlan(proxy_id, time)

    def schedule_random_crashes(
        self, per_group: int, horizon: float, rng: SeededRng
    ) -> List[CrashPlan]:
        """Crash up to ``per_group`` random replicas of every group within
        ``horizon``, never exceeding what remains of a group's budget."""
        plans: List[CrashPlan] = []
        for injector in self._by_group.values():
            doomed = {
                plan.process_id
                for plan in injector.plans
                if plan.process_id in injector.server_ids
            } | injector.crashed_servers
            count = min(per_group, injector.max_server_faults - len(doomed))
            candidates = [s for s in injector.server_ids if s not in doomed]
            if count <= 0 or not candidates:
                continue
            for victim in rng.sample(candidates, min(count, len(candidates))):
                plans.append(injector.schedule_crash(victim, rng.uniform(0, horizon)))
        return plans

    @property
    def crashed_servers(self) -> Set[str]:
        crashed: Set[str] = set()
        for injector in self._by_group.values():
            crashed |= injector.crashed_servers
        return crashed


class SimKVCluster:
    """All replica groups of a :class:`ShardMap` plus clients on one clock.

    ``sites`` (optional, the process->site shape ``GeoDelay`` takes) makes
    the ingress tier site-aware: each client is assigned a proxy of its own
    site when one exists, and its failover candidate list is restricted to
    that site's proxies -- exhausting them drops the client to direct
    replica connections.  Without sites, all proxies form one site.

    ``push_views`` has the control plane push the fresh shard-map view to
    every live proxy at each :meth:`resize`/:meth:`move_shard` (one
    ``view-push`` frame per proxy through the simulated network), so in the
    steady state a rebalance costs the proxies zero stale-epoch replays;
    the epoch-fence bounce remains as the safety net for rounds already in
    flight and for pushes racing them.
    """

    def __init__(
        self,
        shard_map: ShardMap,
        client_ids: List[str],
        delay_model: Optional[DelayModel] = None,
        max_batch: int = 8,
        flush_delay: float = 0.0,
        server_overhead: float = 0.2,
        server_per_op: float = 0.1,
        num_proxies: int = 0,
        read_policy: Optional[ReadRoutingPolicy] = None,
        proxy_max_batch: int = 64,
        proxy_flush_delay: float = 0.0,
        sites: Optional[Mapping[str, str]] = None,
        push_views: bool = True,
        proxy_timeout: float = PROXY_FAILOVER_TIMEOUT,
    ) -> None:
        self.shard_map = shard_map
        self.events = EventQueue()
        self.network = Network(self.events, delay_model or ConstantDelay())
        self.recorder = KVHistoryRecorder(lambda: self.events.clock.now)
        self.migrations: List[MigrationReport] = []
        self.sites = dict(sites) if sites else {}
        self.push_views = push_views
        self.view_pushes_sent = 0
        self.crashed_proxies: Set[str] = set()
        self._completion_watchers: List[Callable[[], None]] = []
        self.replicas: Dict[str, BatchReplicaProcess] = {}
        for group in shard_map.groups.values():
            hosted = {
                spec.shard_id: spec.epoch
                for spec in shard_map.shards_on(group.group_id)
            }
            for server_id in group.servers:
                replica = BatchReplicaProcess(
                    server_id,
                    BatchGroupServer(server_id, group.protocol, dict(hosted)),
                    self.events,
                    overhead=server_overhead,
                    per_op=server_per_op,
                )
                replica.attach(self.network)
                self.replicas[server_id] = replica
        self.proxies: Dict[str, ProxyProcess] = {}
        for index in range(1, num_proxies + 1):
            proxy = ProxyProcess(
                f"p{index}",
                shard_map,
                self.events,
                read_policy=read_policy,
                max_batch=proxy_max_batch,
                flush_delay=proxy_flush_delay,
            )
            proxy.attach(self.network)
            self.proxies[proxy.process_id] = proxy
        self.clients: Dict[str, KVClientProcess] = {}
        for index, client_id in enumerate(client_ids):
            client = KVClientProcess(
                client_id,
                shard_map,
                self.recorder,
                self.events,
                max_batch=max_batch,
                flush_delay=flush_delay,
                completion_hook=self._notify_completion,
                proxy_candidates=self._candidates_for(client_id, index),
                proxy_timeout=proxy_timeout,
            )
            client.attach(self.network)
            self.clients[client_id] = client

    def _candidates_for(self, client_id: str, index: int) -> List[str]:
        """The client's proxy failover list: its site's proxies, rotated.

        Rotation by client index both spreads the initial assignment
        (round-robin, as before) and staggers failover targets so one proxy
        death does not stampede every orphaned client onto the same sibling.
        """
        proxy_ids = list(self.proxies)
        if not proxy_ids:
            return []
        site = self.sites.get(client_id)
        if site is not None:
            same_site = [p for p in proxy_ids if self.sites.get(p) == site]
            if same_site:
                proxy_ids = same_site
        start = index % len(proxy_ids)
        return proxy_ids[start:] + proxy_ids[:start]

    # -- live control plane ----------------------------------------------------

    @property
    def server_logics(self) -> Dict[str, BatchGroupServer]:
        return {sid: replica.logic for sid, replica in self.replicas.items()}

    def resize(self, new_num_shards: int) -> MigrationReport:
        """Resize the ring *now*: metadata + register drain in one step."""
        plan = self.shard_map.resize(new_num_shards)
        report = apply_resize_plan(plan, self.shard_map, self.server_logics)
        self.migrations.append(report)
        self._push_view_update()
        return report

    def schedule_resize(self, new_num_shards: int, at: float) -> None:
        """Resize the ring at virtual time ``at`` (mid-run, under load)."""
        self.events.schedule_at(
            at, lambda: self.resize(new_num_shards), label=f"kv-resize:{new_num_shards}"
        )

    def move_shard(self, shard_id: str, group_id: str) -> MigrationReport:
        """Re-home one shard onto another group *now*."""
        plan = self.shard_map.move_shard(shard_id, group_id)
        report = apply_move_plan(plan, self.server_logics)
        self.migrations.append(report)
        self._push_view_update()
        return report

    def _push_view_update(self) -> None:
        """One ``view-push`` frame per proxy through the simulated network.

        Sent at the cutover, delivered per the delay model: pushes scheduled
        *before* any post-cutover client round at the same timestamp are
        processed first (the event queue is FIFO among simultaneous events),
        so steady-state traffic after a rebalance routes fresh on its first
        attempt.  Crashed proxies' pushes are dropped by the network like
        all their traffic.
        """
        if not self.push_views or not self.proxies:
            return
        view = self.shard_map.view_snapshot()
        for proxy_id in self.proxies:
            self.view_pushes_sent += 1
            self.network.send(make_view_push("control-plane", proxy_id, view))

    def crash_proxy(self, proxy_id: str) -> None:
        """Crash an ingress proxy *now*: the network drops its traffic.

        Proxies hold no register state, so no drain is needed; clients
        behind it detect the silence via their failover watchdog, re-dial a
        sibling of the site (or go direct), and replay in-flight rounds.
        """
        if proxy_id not in self.proxies:
            raise KeyError(f"unknown proxy {proxy_id!r}")
        self.network.crash(proxy_id)
        self.crashed_proxies.add(proxy_id)

    def schedule_proxy_crash(self, proxy_id: str, at: float) -> None:
        """Crash ``proxy_id`` at virtual time ``at`` (mid-run, under load)."""
        if proxy_id not in self.proxies:
            raise KeyError(f"unknown proxy {proxy_id!r}")
        self.events.schedule_at(
            at, lambda: self.crash_proxy(proxy_id), label=f"crash:{proxy_id}"
        )

    def schedule_move(self, shard_id: str, group_id: str, at: float) -> None:
        self.events.schedule_at(
            at,
            lambda: self.move_shard(shard_id, group_id),
            label=f"kv-move:{shard_id}->{group_id}",
        )

    def failure_injector(self) -> KVFailureInjector:
        """A crash injector enforcing each group's fault budget."""
        return KVFailureInjector(self)

    def add_completion_watcher(self, watcher: Callable[[], None]) -> None:
        """Call ``watcher`` after every completed operation (e.g. to trigger
        a resize once a threshold of the workload has run)."""
        self._completion_watchers.append(watcher)

    def _notify_completion(self) -> None:
        for watcher in self._completion_watchers:
            watcher()

    # -- running ---------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: int = 5_000_000) -> None:
        """Run the virtual clock to quiescence (or a deadline)."""
        self.events.run(until=until, max_events=max_events)

    def batch_stats(self) -> BatchStats:
        merged = BatchStats()
        for client in self.clients.values():
            merged.merge(client.batch_stats)
        return merged

    def proxy_stats(self) -> BatchStats:
        """The proxies' merging/frame statistics (empty when direct)."""
        merged = BatchStats()
        for proxy in self.proxies.values():
            merged.merge(proxy.stats)
        return merged

    def replica_request_frames(self) -> int:
        """Request frames the replica servers served (the cost proxies cut)."""
        return sum(replica.logic.batches_served for replica in self.replicas.values())

    def replica_sub_ops(self) -> int:
        """Sub-operations the replica servers processed (the replica work
        read routing cuts)."""
        return sum(replica.logic.sub_ops_served for replica in self.replicas.values())

    def stale_replays(self) -> int:
        return sum(client.stale_replays for client in self.clients.values()) + sum(
            proxy.stale_replays for proxy in self.proxies.values()
        )

    def proxy_failovers(self) -> int:
        return sum(client.proxy_failovers for client in self.clients.values())

    def view_pushes_applied(self) -> int:
        return sum(proxy.view.pushes_applied for proxy in self.proxies.values())


def run_sim_kv_workload(
    workload: KVWorkload,
    num_shards: int = 4,
    protocol_key: str = "abd-mwmr",
    servers_per_shard: int = 3,
    max_faults: int = 1,
    max_batch: int = 8,
    delay_model: Optional[DelayModel] = None,
    flush_delay: float = 0.0,
    server_overhead: float = 0.2,
    server_per_op: float = 0.1,
    shard_map: Optional[ShardMap] = None,
    num_groups: Optional[int] = None,
    resize_to: Optional[int] = None,
    resize_after_ops: Optional[int] = None,
    crashes_per_group: int = 0,
    crash_horizon: float = 20.0,
    crash_seed: int = 0,
    use_proxy: bool = False,
    num_proxies: int = 1,
    read_policy: Optional[ReadRoutingPolicy] = None,
    proxy_max_batch: int = 64,
    proxy_flush_delay: float = 0.0,
    sites: Optional[Mapping[str, str]] = None,
    push_views: bool = True,
    kill_proxy_after_ops: Optional[int] = None,
    proxy_timeout: float = PROXY_FAILOVER_TIMEOUT,
) -> KVRunResult:
    """Run a closed-loop kv workload on the simulator and collect results.

    ``resize_to`` triggers a *live* :meth:`SimKVCluster.resize` once
    ``resize_after_ops`` operations have completed (default: half the
    workload), while the remaining operations are still in flight.
    ``crashes_per_group`` crashes that many random replicas of every group
    (capped at each group's fault budget) within ``crash_horizon``.
    ``use_proxy`` routes every client through one of ``num_proxies``
    site-local ingress proxies (assigned round-robin) which merge rounds
    across clients and route reads per ``read_policy``; with crash
    injection, keep the default broadcast policy (or a ``spare`` >= the
    fault budget) so read rounds stay live.  ``push_views`` pushes the
    shard-map view to every proxy at each live rebalance (off: bounce-only
    refresh); ``kill_proxy_after_ops`` crashes one proxy per site once that
    many operations completed, exercising the clients' failover path --
    operations keep completing with no client-visible errors.
    """
    clients = workload.clients
    if shard_map is None:
        shard_map = ShardMap(
            num_shards,
            protocol_key=protocol_key,
            servers_per_shard=servers_per_shard,
            max_faults=max_faults,
            readers=len(clients),
            writers=len(clients),
            num_groups=num_groups,
        )
    cluster = SimKVCluster(
        shard_map,
        clients,
        delay_model=delay_model,
        max_batch=max_batch,
        flush_delay=flush_delay,
        server_overhead=server_overhead,
        server_per_op=server_per_op,
        num_proxies=num_proxies if use_proxy else 0,
        read_policy=read_policy,
        proxy_max_batch=proxy_max_batch,
        proxy_flush_delay=proxy_flush_delay,
        sites=sites,
        push_views=push_views,
        proxy_timeout=proxy_timeout,
    )

    kill_record: Dict[str, object] = {}
    if kill_proxy_after_ops is not None and use_proxy:
        kill_hook, kill_record = make_proxy_kill_trigger(
            lambda: cluster.recorder.completed_operations,
            kill_proxy_after_ops,
            lambda: pick_one_proxy_per_site(
                [(pid, cluster.sites.get(pid), pid not in cluster.crashed_proxies)
                 for pid in cluster.proxies]
            ),
            cluster.crash_proxy,
        )
        cluster.add_completion_watcher(kill_hook)

    resize_info: Optional[Dict[str, object]] = None
    if resize_to is not None:
        hook, resize_info = make_resize_trigger(
            cluster.resize,
            lambda: cluster.recorder.completed_operations,
            resize_to,
            resize_after_ops
            if resize_after_ops is not None
            else max(1, workload.total_operations() // 2),
            now=lambda: cluster.events.clock.now,
        )
        cluster.add_completion_watcher(hook)

    if crashes_per_group > 0:
        injector = cluster.failure_injector()
        injector.schedule_random_crashes(
            crashes_per_group, crash_horizon, SeededRng(crash_seed)
        )

    def make_issuer(client: KVClientProcess, remaining: Deque) -> Callable:
        # A factory so each client's chain closes over its own issuer; a
        # loop-local closure would resolve to the last client's at call time.
        def issue_next(_outcome=None) -> None:
            if not remaining:
                return
            op = remaining.popleft()
            if op.kind == "put":
                client.put(op.key, op.value, on_complete=issue_next)
            else:
                client.get(op.key, on_complete=issue_next)

        return issue_next

    depth = max(1, workload.pipeline_depth)
    for client_id in clients:
        issue_next = make_issuer(
            cluster.clients[client_id], deque(workload.sequences[client_id])
        )
        for _ in range(depth):
            cluster.events.schedule(0.0, issue_next, label=f"kv-start:{client_id}")

    cluster.run()
    histories = cluster.recorder.histories()
    result = KVRunResult(
        backend="sim",
        num_shards=len(shard_map),
        max_batch=max_batch,
        histories=histories,
        duration=cluster.events.clock.now,
        completed_ops=cluster.recorder.completed_operations,
        messages_sent=cluster.network.sent_count,
        batch_stats=cluster.batch_stats(),
        num_groups=len(shard_map.groups),
        stale_replays=cluster.stale_replays(),
        resize=resize_info,
        num_proxies=len(cluster.proxies),
        proxy_stats=cluster.proxy_stats() if cluster.proxies else None,
        replica_frames=cluster.replica_request_frames(),
        replica_sub_ops=cluster.replica_sub_ops(),
        proxy_failovers=cluster.proxy_failovers(),
        view_pushes=cluster.view_pushes_applied(),
        proxy_kill=kill_record or None,
    )
    for history in histories.values():
        result.read_latencies.extend(
            op.latency for op in history.reads if op.latency is not None
        )
        result.write_latencies.extend(
            op.latency for op in history.writes if op.latency is not None
        )
    return result
