"""Key-value workloads and the result type shared by both backends.

A :class:`KVWorkload` is backend-agnostic: per-client sequences of get/put
operations over a key space, issued closed-loop with a configurable number of
operations in flight per client (``pipeline_depth``).  Pipelining is what
feeds the batching layer -- operations of one client that are in flight
together and hash to the same shard share a batch round.

Key popularity follows a Zipf-like distribution (via
:meth:`~repro.util.rng.SeededRng.zipf_index`), the shape seen by real
key-value front ends; ``key_skew=0`` gives uniform keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..consistency.history import History
from ..util.rng import SeededRng
from ..util.stats import LatencyStats, summarize
from .batching import BatchStats
from .perkey import PerKeyAtomicity, check_per_key_atomicity

__all__ = ["KVOp", "KVWorkload", "generate_workload", "KVRunResult"]


@dataclass(frozen=True)
class KVOp:
    """One key-value operation: ``get(key)`` or ``put(key, value)``."""

    kind: str  # "get" | "put"
    key: str
    value: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("get", "put"):
            raise ValueError(f"unknown kv operation kind {self.kind!r}")
        if self.kind == "put" and self.value is None:
            raise ValueError("put requires a value")


@dataclass
class KVWorkload:
    """Per-client closed-loop operation sequences."""

    sequences: Dict[str, List[KVOp]] = field(default_factory=dict)
    pipeline_depth: int = 4

    @property
    def clients(self) -> List[str]:
        return sorted(self.sequences)

    @property
    def keys(self) -> Set[str]:
        return {op.key for ops in self.sequences.values() for op in ops}

    def total_operations(self) -> int:
        return sum(len(ops) for ops in self.sequences.values())


def generate_workload(
    num_clients: int = 4,
    ops_per_client: int = 20,
    num_keys: int = 16,
    read_fraction: float = 0.7,
    key_skew: float = 0.8,
    pipeline_depth: int = 4,
    seed: int = 0,
) -> KVWorkload:
    """A random read-heavy workload over ``num_keys`` Zipf-popular keys."""
    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError("read_fraction must be within [0, 1]")
    rng = SeededRng(seed)
    keys = [f"k{i}" for i in range(1, num_keys + 1)]
    sequences: Dict[str, List[KVOp]] = {}
    for c in range(1, num_clients + 1):
        client = f"c{c}"
        ops: List[KVOp] = []
        for index in range(ops_per_client):
            if key_skew > 0:
                key = keys[rng.zipf_index(len(keys), skew=key_skew)]
            else:
                key = rng.choice(keys)
            if rng.random() < read_fraction and index > 0:
                ops.append(KVOp("get", key))
            else:
                ops.append(KVOp("put", key, f"v-{client}-{index}"))
        sequences[client] = ops
    return KVWorkload(sequences=sequences, pipeline_depth=pipeline_depth)


@dataclass
class KVRunResult:
    """What one kv-store run produces, on either backend.

    ``duration`` is virtual time on the simulator and wall-clock seconds on
    the asyncio backend; throughput is therefore comparable only within one
    backend, which is all the scaling benchmark needs.  ``messages_sent``
    counts frames in both directions (requests and acks) on both backends.
    """

    backend: str
    num_shards: int
    max_batch: int
    histories: Dict[str, History] = field(default_factory=dict)
    duration: float = 0.0
    completed_ops: int = 0
    messages_sent: int = 0
    batch_stats: BatchStats = field(default_factory=BatchStats)
    read_latencies: List[float] = field(default_factory=list)
    write_latencies: List[float] = field(default_factory=list)
    #: Replica groups hosting the shards (None for pre-placement results).
    num_groups: Optional[int] = None
    #: Rounds replayed after a stale-epoch bounce (live rebalancing churn).
    stale_replays: int = 0
    #: Live-resize record ({"to", "at_ops", "keys_moved", ...}) when one ran.
    resize: Optional[Dict[str, object]] = None
    #: Ingress proxies the clients were routed through (0 = direct).
    num_proxies: int = 0
    #: The proxies' own merging/frame statistics (None when direct).
    proxy_stats: Optional[BatchStats] = None
    #: Request frames the replica servers actually served -- the replica-side
    #: message cost the proxy tier exists to shrink (both backends count it
    #: the same way, off the group servers' ``batches_served``).
    replica_frames: int = 0
    #: Sub-operations the replica servers processed across all frames -- the
    #: replica-side *work*; nearest-quorum read routing shrinks this even
    #: when merge-window dynamics keep frame counts comparable.
    replica_sub_ops: int = 0
    #: Proxy failovers the clients performed (a dead proxy re-dialed to a
    #: sibling of its site, or a fall-back to direct replica connections).
    proxy_failovers: int = 0
    #: Control-plane view pushes the proxies applied (live rebalances made
    #: visible proactively instead of via stale-epoch bounces).
    view_pushes: int = 0
    #: Record of an injected proxy kill ({"killed": [...], "at_ops": N})
    #: when the run was asked to kill one proxy per site mid-run.
    proxy_kill: Optional[Dict[str, object]] = None
    #: Sub-operations the replica tier fenced on a stale (shard, epoch) tag
    #: and bounced for replay -- the replica-side face of ``stale_replays``.
    stale_bounces: int = 0
    #: Rounds the proxies parked on a backoff timer after bouncing off a
    #: *draining* key range (distinct from stale replays, which re-route).
    drain_backoffs: int = 0
    #: Replica-bound sub-requests belonging to read operations that the
    #: proxies sent -- the traffic the read cache removes.  Counted with the
    #: cache off too (0 when clients connect direct), so a cache on/off pair
    #: of runs compares like for like.
    replica_read_subs: int = 0
    #: Read-cache / lease counters ({"hits", "misses", "invalidations",
    #: "proxy_lease_expiries", "leases_granted", "lease_expiries",
    #: "write_deferrals"}) when the run enabled the proxy read cache.
    cache: Optional[Dict[str, int]] = None
    #: Per-tier metrics snapshot (``MetricsRegistry.snapshot()``): counters,
    #: gauges, and latency/batch-size histograms keyed by tier.
    metrics: Optional[Dict[str, object]] = None
    #: Autoscaler record ({"actions": [...], "drains_completed": N,
    #: "ranges_drained": N}) when the run armed the autoscaler.
    autoscale: Optional[Dict[str, object]] = None

    def throughput(self) -> float:
        """Completed operations per time unit."""
        return self.completed_ops / self.duration if self.duration > 0 else 0.0

    @property
    def frames_sent(self) -> int:
        """Request frames sent by the client tier plus the proxy tier."""
        sent = self.batch_stats.frames_sent
        if self.proxy_stats is not None:
            sent += self.proxy_stats.frames_sent
        return sent

    @property
    def frames_total(self) -> int:
        """Every frame on the wire, counted once (requests at their sender,
        acks at their receiver -- see :class:`BatchStats`)."""
        total = self.batch_stats.frames_total
        if self.proxy_stats is not None:
            total += self.proxy_stats.frames_total
        return total

    def replica_frames_per_op(self) -> float:
        """Replica-served request frames per completed operation."""
        if self.completed_ops == 0:
            return 0.0
        return self.replica_frames / self.completed_ops

    def read_subs_per_op(self) -> float:
        """Replica-bound read sub-requests per completed operation -- the
        benchmark metric the read cache is judged on."""
        if self.completed_ops == 0:
            return 0.0
        return self.replica_read_subs / self.completed_ops

    def cache_hit_rate(self) -> float:
        """Cache hits / (hits + misses), 0.0 when the cache was off."""
        if not self.cache:
            return 0.0
        looked_up = self.cache["hits"] + self.cache["misses"]
        return self.cache["hits"] / looked_up if looked_up else 0.0

    def read_stats(self) -> LatencyStats:
        return summarize(self.read_latencies)

    def write_stats(self) -> LatencyStats:
        return summarize(self.write_latencies)

    def check(self) -> PerKeyAtomicity:
        """Verify each key's sub-history independently."""
        return check_per_key_atomicity(self.histories)

    def as_row(self) -> Dict[str, object]:
        verdict = self.check()
        return {
            "backend": self.backend,
            "shards": self.num_shards,
            "groups": self.num_groups if self.num_groups is not None else self.num_shards,
            "batch": self.max_batch,
            "ops": self.completed_ops,
            "throughput": self.throughput(),
            "mean_batch": self.batch_stats.mean_batch_size,
            "messages": self.messages_sent,
            "read_p50": self.read_stats().p50,
            "atomic": verdict.all_atomic,
            "proxies": self.num_proxies,
            "rep_frames": self.replica_frames,
            "rep_frames/op": round(self.replica_frames_per_op(), 2),
        }
