"""Per-key histories and per-key atomicity checking.

Atomicity of the key-value store decomposes by key: registers for different
keys share nothing, so the store is linearizable iff each key's sub-history
is an atomic single-register history (locality of linearizability).  The
recorder therefore keeps one history per key and
:func:`check_per_key_atomicity` runs the library's
:func:`~repro.consistency.atomicity.check_atomicity` on each sub-history
independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..consistency.atomicity import AtomicityResult, check_atomicity
from ..consistency.history import History
from ..core.operations import Operation, OpKind
from ..core.timestamps import Tag

__all__ = ["KVHistoryRecorder", "PerKeyAtomicity", "check_per_key_atomicity"]


class KVHistoryRecorder:
    """Collects one operation history per key.

    ``time_fn`` abstracts the clock: the simulator passes its virtual clock,
    the asyncio backend a monotonic wall clock, so the same recorder (and the
    same checker) serves both.
    """

    def __init__(self, time_fn: Callable[[], float]) -> None:
        self._time_fn = time_fn
        self._operations: Dict[str, Operation] = {}
        self._per_key: Dict[str, List[str]] = {}
        self._key_of: Dict[str, str] = {}

    def record_invocation(
        self,
        key: str,
        op_id: str,
        client: str,
        kind: OpKind,
        value: Any = None,
    ) -> Operation:
        operation = Operation(
            op_id=op_id, client=client, kind=kind, start=self._time_fn(), value=value
        )
        self._operations[op_id] = operation
        self._per_key.setdefault(key, []).append(op_id)
        self._key_of[op_id] = key
        return operation

    def record_response(
        self,
        op_id: str,
        value: Any = None,
        tag: Optional[Tag] = None,
        round_trips: int = 0,
    ) -> Operation:
        operation = self._operations[op_id]
        operation.finish = self._time_fn()
        operation.round_trips = round_trips
        if operation.is_read:
            operation.value = value
            operation.tag = tag
        elif tag is not None:
            operation.tag = tag
        return operation

    def key_of(self, op_id: str) -> str:
        return self._key_of[op_id]

    @property
    def total_operations(self) -> int:
        return len(self._operations)

    @property
    def completed_operations(self) -> int:
        return sum(1 for op in self._operations.values() if op.is_complete)

    def histories(self) -> Dict[str, History]:
        """One history per key, operations in invocation order."""
        return {
            key: History([self._operations[op_id] for op_id in op_ids])
            for key, op_ids in self._per_key.items()
        }


@dataclass
class PerKeyAtomicity:
    """The per-key verdicts of one kv-store run."""

    results: Dict[str, AtomicityResult] = field(default_factory=dict)

    @property
    def all_atomic(self) -> bool:
        return all(result.atomic for result in self.results.values())

    @property
    def violating_keys(self) -> List[str]:
        return sorted(k for k, result in self.results.items() if not result.atomic)

    def summary(self) -> str:
        if self.all_atomic:
            return f"ATOMIC on all {len(self.results)} keys"
        bad = self.violating_keys
        return f"NOT ATOMIC on {len(bad)}/{len(self.results)} keys: {', '.join(bad[:5])}"


def check_per_key_atomicity(histories: Dict[str, History]) -> PerKeyAtomicity:
    """Check each key's sub-history independently (locality)."""
    return PerKeyAtomicity(
        results={key: check_atomicity(history) for key, history in histories.items()}
    )
