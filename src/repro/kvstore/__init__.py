"""repro.kvstore: a sharded, batched key-value store over atomic registers.

The paper's protocols emulate one atomic register; this package scales them
to a multi-key store:

* **The sans-I/O engine** (:mod:`~repro.kvstore.engine`): every piece of
  protocol behaviour -- round lifecycle, batching, stale-epoch replay,
  cross-client merging, read routing, proxy failover, view-push adoption,
  epoch fencing -- lives in three pure state machines
  (:class:`ClientSessionEngine`, :class:`ProxyEngine`,
  :class:`GroupServerEngine`) that consume decoded frames and emit
  ``(destination, frame)`` effects plus timer requests.  Both backends are
  thin adapters around them, so they cannot drift apart by construction.
* **Placement** (:mod:`~repro.kvstore.placement`): shards are decoupled from
  replica groups -- a :class:`PlacementPolicy` maps N logical shards onto M
  :class:`ReplicaGroup`\\ s (N >> M allowed), so small clusters host many
  shards and groups can be placed per site.
* **Sharding** (:mod:`~repro.kvstore.sharding`): a consistent-hash
  :class:`ShardMap` assigns each key to a shard; every key gets its own
  register emulation, so correctness decomposes key by key.  The map is
  *live*: :meth:`ShardMap.resize` and :meth:`ShardMap.move_shard` rebalance
  under load with bounded key movement (~1/N per added shard), fenced by
  per-shard epochs carried in every batch frame, and announced to the
  ingress tier with O(moved) **delta view pushes**.
* **Migration**: when the ring changes, the
  :class:`~repro.kvstore.engine.control.ControlPlaneEngine` drains per-key
  register state to the new owners *incrementally* -- fence, transfer, and
  install one key range at a time over ``drain-*`` frames -- so the cutover
  pause is bounded by the range size, not the shard size
  (:mod:`~repro.kvstore.migration` keeps the shared
  :class:`MigrationReport` and workload triggers).
* **Ingress proxies**: an optional site-local tier between clients and
  replica groups.  A proxy merges quorum rounds *across client connections*
  into shared replica frames (replica-side frames drop toward 1/K under
  K-client fan-in), routes reads through a pluggable
  :class:`ReadRoutingPolicy` (:class:`NearestQuorum` picks the closest
  quorum from site metadata), and hides live rebalancing behind a
  :class:`CachedShardView` fed by view pushes and stale-epoch bounces.
* **Two backends**: the discrete-event simulator
  (:func:`run_sim_kv_workload`) and real asyncio TCP
  (:class:`KVStore` / :class:`SyncKVStore`, :func:`run_asyncio_kv_workload`).
* **Per-key checking** (:mod:`~repro.kvstore.perkey`): every run's history is
  split per key and each sub-history is verified with the library's
  atomicity checker.

Exports resolve lazily (PEP 562): importing :mod:`repro.kvstore.engine`
never drags in a transport, which is what lets a unit test *prove* the
engine imports neither :mod:`asyncio` nor :mod:`repro.sim`.
"""

from __future__ import annotations

from importlib import import_module
from typing import TYPE_CHECKING

#: Public name -> defining submodule; attribute access imports on demand.
_EXPORTS = {
    # batching (compat shims over the engine)
    "BatchGroupServer": ".batching",
    "BatchShardServer": ".batching",
    "BatchStats": ".batching",
    "StaleShardError": ".batching",
    # the sans-I/O engine
    "ClientSessionEngine": ".engine",
    "ControlPlaneEngine": ".engine",
    "GroupServerEngine": ".engine",
    "ProxyEngine": ".engine",
    "view_push_frames": ".engine",
    # migration
    "MigrationReport": ".migration",
    "make_resize_trigger": ".migration",
    # asyncio backend
    "AsyncGroupClient": ".net_backend",
    "AsyncKVCluster": ".net_backend",
    "AsyncProxyClient": ".net_backend",
    "AsyncShardClient": ".net_backend",
    "KVStore": ".net_backend",
    "ProxyConnectionLost": ".net_backend",
    "ProxyServer": ".net_backend",
    "RetryPolicy": ".net_backend",
    "SyncKVStore": ".net_backend",
    "run_asyncio_kv_workload": ".net_backend",
    # per-key checking
    "KVHistoryRecorder": ".perkey",
    "PerKeyAtomicity": ".perkey",
    "check_per_key_atomicity": ".perkey",
    # placement
    "PlacementPolicy": ".placement",
    "ReplicaGroup": ".placement",
    "RoundRobinPlacement": ".placement",
    # proxy routing (compat shims over the engine)
    "BroadcastReads": ".proxy",
    "CachedShardView": ".proxy",
    "NearestQuorum": ".proxy",
    "ProxyRoute": ".proxy",
    "ReadRoutingPolicy": ".proxy",
    "attempt_scoped_id": ".proxy",
    "parse_attempt_scoped_id": ".proxy",
    # sharding
    "HashRing": ".sharding",
    "MovePlan": ".sharding",
    "ResizePlan": ".sharding",
    "ShardMap": ".sharding",
    "ShardSpec": ".sharding",
    "stable_hash": ".sharding",
    # simulator backend
    "KVClientProcess": ".sim_backend",
    "KVFailureInjector": ".sim_backend",
    "ProxyProcess": ".sim_backend",
    "SimKVCluster": ".sim_backend",
    "run_sim_kv_workload": ".sim_backend",
    # workloads
    "KVOp": ".workload",
    "KVRunResult": ".workload",
    "KVWorkload": ".workload",
    "generate_workload": ".workload",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is not None:
        value = getattr(import_module(module_name, __name__), name)
        globals()[name] = value  # cache: later lookups skip __getattr__
        return value
    # Submodule access (``import repro.kvstore; repro.kvstore.sharding...``):
    # the eager imports used to bind these as a side effect, so keep them
    # reachable lazily.
    try:
        return import_module(f".{name}", __name__)
    except ModuleNotFoundError as exc:
        if exc.name != f"{__name__}.{name}":
            raise  # the submodule exists but one of *its* imports is missing
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from .batching import (  # noqa: F401
        BatchGroupServer,
        BatchShardServer,
        BatchStats,
        StaleShardError,
    )
    from .engine import (  # noqa: F401
        ClientSessionEngine,
        ControlPlaneEngine,
        GroupServerEngine,
        ProxyEngine,
        view_push_frames,
    )
    from .migration import (  # noqa: F401
        MigrationReport,
        make_resize_trigger,
    )
    from .net_backend import (  # noqa: F401
        AsyncGroupClient,
        AsyncKVCluster,
        AsyncProxyClient,
        AsyncShardClient,
        KVStore,
        ProxyConnectionLost,
        ProxyServer,
        RetryPolicy,
        SyncKVStore,
        run_asyncio_kv_workload,
    )
    from .perkey import (  # noqa: F401
        KVHistoryRecorder,
        PerKeyAtomicity,
        check_per_key_atomicity,
    )
    from .placement import (  # noqa: F401
        PlacementPolicy,
        ReplicaGroup,
        RoundRobinPlacement,
    )
    from .proxy import (  # noqa: F401
        BroadcastReads,
        CachedShardView,
        NearestQuorum,
        ProxyRoute,
        ReadRoutingPolicy,
        attempt_scoped_id,
        parse_attempt_scoped_id,
    )
    from .sharding import (  # noqa: F401
        HashRing,
        MovePlan,
        ResizePlan,
        ShardMap,
        ShardSpec,
        stable_hash,
    )
    from .sim_backend import (  # noqa: F401
        KVClientProcess,
        KVFailureInjector,
        ProxyProcess,
        SimKVCluster,
        run_sim_kv_workload,
    )
    from .workload import (  # noqa: F401
        KVOp,
        KVRunResult,
        KVWorkload,
        generate_workload,
    )
