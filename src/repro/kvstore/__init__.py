"""repro.kvstore: a sharded, batched key-value store over atomic registers.

The paper's protocols emulate one atomic register; this package scales them
to a multi-key store:

* **Sharding** (:mod:`~repro.kvstore.sharding`): a consistent-hash
  :class:`ShardMap` assigns each key to an independent replica group running
  any registered protocol; every key gets its own register emulation, so
  correctness decomposes key by key.
* **Batching** (:mod:`~repro.kvstore.batching`): concurrent operations bound
  for the same shard share one framed message round per replica, amortizing
  quorum round-trips.
* **Two backends**: the discrete-event simulator
  (:func:`run_sim_kv_workload`) and real asyncio TCP
  (:class:`KVStore` / :class:`SyncKVStore`, :func:`run_asyncio_kv_workload`).
* **Per-key checking** (:mod:`~repro.kvstore.perkey`): every run's history is
  split per key and each sub-history is verified with the library's
  atomicity checker.
"""

from __future__ import annotations

from .batching import BatchShardServer, BatchStats
from .net_backend import (
    AsyncKVCluster,
    AsyncShardClient,
    KVStore,
    SyncKVStore,
    run_asyncio_kv_workload,
)
from .perkey import KVHistoryRecorder, PerKeyAtomicity, check_per_key_atomicity
from .sharding import HashRing, ShardMap, ShardSpec, stable_hash
from .sim_backend import KVClientProcess, SimKVCluster, run_sim_kv_workload
from .workload import KVOp, KVRunResult, KVWorkload, generate_workload

__all__ = [
    "BatchShardServer",
    "BatchStats",
    "AsyncKVCluster",
    "AsyncShardClient",
    "KVStore",
    "SyncKVStore",
    "run_asyncio_kv_workload",
    "KVHistoryRecorder",
    "PerKeyAtomicity",
    "check_per_key_atomicity",
    "HashRing",
    "ShardMap",
    "ShardSpec",
    "stable_hash",
    "KVClientProcess",
    "SimKVCluster",
    "run_sim_kv_workload",
    "KVOp",
    "KVRunResult",
    "KVWorkload",
    "generate_workload",
]
