"""repro.kvstore: a sharded, batched key-value store over atomic registers.

The paper's protocols emulate one atomic register; this package scales them
to a multi-key store:

* **Placement** (:mod:`~repro.kvstore.placement`): shards are decoupled from
  replica groups -- a :class:`PlacementPolicy` maps N logical shards onto M
  :class:`ReplicaGroup`\\ s (N >> M allowed), so small clusters host many
  shards and groups can be placed per site.
* **Sharding** (:mod:`~repro.kvstore.sharding`): a consistent-hash
  :class:`ShardMap` assigns each key to a shard; every key gets its own
  register emulation, so correctness decomposes key by key.  The map is
  *live*: :meth:`ShardMap.resize` and :meth:`ShardMap.move_shard` rebalance
  under load with bounded key movement (~1/N per added shard), fenced by
  per-shard epochs carried in every batch frame.
* **Batching** (:mod:`~repro.kvstore.batching`): concurrent operations bound
  for the same replica group share one framed message round per replica; the
  multiplexed :class:`BatchGroupServer` demultiplexes shard-tagged
  sub-requests to per-key registers and bounces stale epochs.
* **Migration** (:mod:`~repro.kvstore.migration`): the control-plane step
  that drains per-key registers to their new owners when the ring changes.
* **Ingress proxies** (:mod:`~repro.kvstore.proxy`): an optional site-local
  tier between clients and replica groups.  A proxy merges quorum rounds
  *across client connections* into shared replica frames (replica-side
  frames drop toward 1/K under K-client fan-in), routes reads through a
  pluggable :class:`ReadRoutingPolicy` (:class:`NearestQuorum` picks the
  closest quorum from site metadata), and hides live rebalancing behind a
  :class:`CachedShardView` that refreshes on stale-epoch bounces.
* **Two backends**: the discrete-event simulator
  (:func:`run_sim_kv_workload`) and real asyncio TCP
  (:class:`KVStore` / :class:`SyncKVStore`, :func:`run_asyncio_kv_workload`).
* **Per-key checking** (:mod:`~repro.kvstore.perkey`): every run's history is
  split per key and each sub-history is verified with the library's
  atomicity checker.
"""

from __future__ import annotations

from .batching import (
    BatchGroupServer,
    BatchShardServer,
    BatchStats,
    StaleShardError,
)
from .migration import MigrationReport, apply_move_plan, apply_resize_plan
from .net_backend import (
    AsyncGroupClient,
    AsyncKVCluster,
    AsyncProxyClient,
    AsyncShardClient,
    KVStore,
    ProxyConnectionLost,
    ProxyServer,
    RetryPolicy,
    SyncKVStore,
    run_asyncio_kv_workload,
)
from .perkey import KVHistoryRecorder, PerKeyAtomicity, check_per_key_atomicity
from .placement import PlacementPolicy, ReplicaGroup, RoundRobinPlacement
from .proxy import (
    BroadcastReads,
    CachedShardView,
    NearestQuorum,
    ProxyRoute,
    ReadRoutingPolicy,
    attempt_scoped_id,
    parse_attempt_scoped_id,
)
from .sharding import (
    HashRing,
    MovePlan,
    ResizePlan,
    ShardMap,
    ShardSpec,
    stable_hash,
)
from .sim_backend import (
    KVClientProcess,
    KVFailureInjector,
    ProxyProcess,
    SimKVCluster,
    run_sim_kv_workload,
)
from .workload import KVOp, KVRunResult, KVWorkload, generate_workload

__all__ = [
    "BatchGroupServer",
    "BatchShardServer",
    "BatchStats",
    "StaleShardError",
    "MigrationReport",
    "apply_move_plan",
    "apply_resize_plan",
    "AsyncGroupClient",
    "AsyncKVCluster",
    "AsyncProxyClient",
    "AsyncShardClient",
    "KVStore",
    "ProxyConnectionLost",
    "ProxyServer",
    "RetryPolicy",
    "SyncKVStore",
    "run_asyncio_kv_workload",
    "KVHistoryRecorder",
    "PerKeyAtomicity",
    "check_per_key_atomicity",
    "PlacementPolicy",
    "ReplicaGroup",
    "RoundRobinPlacement",
    "BroadcastReads",
    "CachedShardView",
    "NearestQuorum",
    "ProxyRoute",
    "ReadRoutingPolicy",
    "attempt_scoped_id",
    "parse_attempt_scoped_id",
    "HashRing",
    "MovePlan",
    "ResizePlan",
    "ShardMap",
    "ShardSpec",
    "stable_hash",
    "KVClientProcess",
    "KVFailureInjector",
    "ProxyProcess",
    "SimKVCluster",
    "run_sim_kv_workload",
    "KVOp",
    "KVRunResult",
    "KVWorkload",
    "generate_workload",
]
