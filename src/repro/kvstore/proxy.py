"""Compatibility shim: the proxy routing brain moved into the sans-I/O engine.

The cached shard view, read-routing policies, round planning, attempt
scoping and the proxy-kill trigger live in
:mod:`repro.kvstore.engine.routing`; the proxy *state machine* (cross-client
merging, stale-epoch replay, view-push adoption) is
:class:`repro.kvstore.engine.proxy.ProxyEngine`.  The transport halves are
the backends' adapters (:class:`~repro.kvstore.sim_backend.ProxyProcess` on
the simulator, :class:`~repro.kvstore.net_backend.ProxyServer` on asyncio
TCP).
"""

from __future__ import annotations

from .engine.routing import (
    BroadcastReads,
    CachedShardView,
    NearestQuorum,
    ProxyRoute,
    ReadRoutingPolicy,
    RoundPlan,
    attempt_scoped_id,
    make_proxy_kill_trigger,
    parse_attempt_scoped_id,
    pick_one_proxy_per_site,
    plan_round,
)

__all__ = [
    "ProxyRoute",
    "RoundPlan",
    "CachedShardView",
    "ReadRoutingPolicy",
    "BroadcastReads",
    "NearestQuorum",
    "plan_round",
    "attempt_scoped_id",
    "parse_attempt_scoped_id",
    "pick_one_proxy_per_site",
    "make_proxy_kill_trigger",
]
