"""Bridging the async kv-store API into synchronous code.

Two bridges are provided:

* :func:`run_sync` -- run one coroutine to completion from synchronous code
  (refusing to be called from inside a running event loop, where it would
  deadlock).  Used for one-shot helpers like
  :func:`~repro.kvstore.net_backend.run_asyncio_kv_workload`.

* :class:`LoopThread` -- a private event loop running on a daemon thread,
  used by :class:`~repro.kvstore.net_backend.SyncKVStore` so that one store
  (with its live TCP connections) can serve many synchronous calls; a fresh
  ``asyncio.run`` per call would tear the connections down each time.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Coroutine

__all__ = ["run_sync", "LoopThread"]


def run_sync(coro: Coroutine) -> Any:
    """Run ``coro`` to completion and return its result.

    Must be called from synchronous code; inside a running event loop it
    raises instead of deadlocking.
    """
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return asyncio.run(coro)
    coro.close()
    raise RuntimeError(
        "run_sync cannot be called from a running event loop; await the "
        "coroutine instead"
    )


class LoopThread:
    """An event loop on a background daemon thread, driven synchronously."""

    def __init__(self, name: str = "kvstore-loop") -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name=name, daemon=True
        )
        self._thread.start()

    @property
    def running(self) -> bool:
        return self._thread.is_alive()

    def call(self, coro: Coroutine, timeout: float = 60.0) -> Any:
        """Run ``coro`` on the loop thread and wait for its result."""
        if not self.running:
            coro.close()
            raise RuntimeError("loop thread is not running")
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout)

    def stop(self) -> None:
        """Stop the loop and join the thread (idempotent)."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
        if not self._loop.is_closed():
            self._loop.close()
