"""Request batching: multi-key servers and batch accounting.

The batching layer amortizes quorum round-trips: operations that are in
flight *concurrently* and address the same shard share one framed message
round per server instead of one frame each.  The wire format is the batch
frame of :mod:`repro.sim.messages`; this module supplies the two pieces both
backends share:

* :class:`BatchShardServer` -- the server side.  One instance runs per
  replica of a shard and demultiplexes each batch frame to per-key
  single-register server logic (created on demand from the shard's
  protocol), then packs the sub-replies into one ``batch-ack``.  Because the
  per-key logic objects are the unmodified ones the single-register
  emulations use, every correctness property (and every proof obligation)
  carries over key by key.

* :class:`BatchStats` -- client-side accounting of how well coalescing is
  working (rounds sent, sub-operations carried, mean batch size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..protocols.base import RegisterProtocol, ServerLogic
from ..sim.messages import BATCH_KIND, Message, make_batch_ack, unpack_batch

__all__ = ["BatchShardServer", "BatchStats"]


class BatchShardServer(ServerLogic):
    """One replica of a shard, serving many keys through batch frames.

    The only message kind it accepts is ``"batch"``; the kv-store client
    drivers wrap even solitary sub-requests in a batch of one, so the wire
    protocol stays uniform.
    """

    def __init__(self, server_id: str, protocol: RegisterProtocol) -> None:
        super().__init__(server_id)
        self.protocol = protocol
        self._registers: Dict[str, ServerLogic] = {}
        self.batches_served = 0
        self.sub_ops_served = 0
        self.largest_batch = 0

    def register_for(self, key: str) -> ServerLogic:
        """The per-key single-register server logic, created on first use."""
        logic = self._registers.get(key)
        if logic is None:
            logic = self.protocol.make_server(self.server_id)
            self._registers[key] = logic
        return logic

    @property
    def keys_hosted(self) -> int:
        return len(self._registers)

    def handle(self, message: Message) -> Optional[Message]:
        if message.kind != BATCH_KIND:
            raise ValueError(
                f"BatchShardServer only handles batch frames, got {message.kind!r}"
            )
        subs = unpack_batch(message)
        self.batches_served += 1
        self.sub_ops_served += len(subs)
        self.largest_batch = max(self.largest_batch, len(subs))
        replies: List[Tuple[str, Optional[Message]]] = []
        for key, sub in subs:
            replies.append((key, self.register_for(key).handle(sub)))
        return make_batch_ack(message, replies)


@dataclass
class BatchStats:
    """Client-side coalescing statistics for one run."""

    rounds: int = 0
    sub_operations: int = 0
    largest: int = 0

    def record(self, batch_size: int) -> None:
        self.rounds += 1
        self.sub_operations += batch_size
        self.largest = max(self.largest, batch_size)

    @property
    def mean_batch_size(self) -> float:
        return self.sub_operations / self.rounds if self.rounds else 0.0

    def merge(self, other: "BatchStats") -> None:
        self.rounds += other.rounds
        self.sub_operations += other.sub_operations
        self.largest = max(self.largest, other.largest)

    def summary(self) -> str:
        return (
            f"{self.rounds} batch rounds, {self.sub_operations} sub-ops, "
            f"mean batch {self.mean_batch_size:.2f}, largest {self.largest}"
        )
