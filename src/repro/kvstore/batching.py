"""Request batching: multiplexed group servers and batch accounting.

The batching layer amortizes quorum round-trips: operations that are in
flight *concurrently* and address the same replica group share one framed
message round per server instead of one frame each.  The wire format is the
batch frame of :mod:`repro.sim.messages`; this module supplies the pieces
both backends share:

* :class:`BatchGroupServer` -- the server side.  One instance runs per
  replica of a *replica group* and hosts the per-key registers of every
  shard placed on that group, demultiplexing each shard-tagged sub-request
  to per-key single-register server logic (created on demand from the
  group's protocol), then packing the sub-replies into one ``batch-ack``.
  Because the per-key logic objects are the unmodified ones the
  single-register emulations use, every correctness property (and every
  proof obligation) carries over key by key.

  The server also enforces the **epoch fence** that makes live rebalancing
  safe: a sub-request whose (shard, epoch) tag does not match a hosted shard
  is answered with a ``"stale-shard"`` bounce instead of touching any
  register, and the client re-resolves its ring and replays the round.  The
  hosting table is a control-plane surface (``host_shard`` / ``evict_shard``
  / ``extract_keys`` / ``install_keys``) driven by the migration module.

* :class:`BatchStats` -- client-side accounting of how well coalescing is
  working (rounds sent, sub-operations carried, mean batch size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.errors import ProtocolError
from ..protocols.base import RegisterProtocol, ServerLogic
from ..sim.messages import (
    BATCH_KIND,
    Message,
    SubRequest,
    make_batch_ack,
    unpack_batch,
)

__all__ = [
    "STALE_SHARD_KIND",
    "MAX_STALE_RETRIES",
    "StaleShardError",
    "make_stale_reply",
    "is_stale_reply",
    "BatchGroupServer",
    "BatchShardServer",
    "BatchStats",
]

#: Reply kind bouncing a sub-request whose (shard, epoch) tag is stale.
STALE_SHARD_KIND = "stale-shard"

#: Stale-epoch bounces one operation may absorb (re-resolving and replaying
#: its round each time) before the driver gives up -- shared by both
#: backends so they tolerate the same amount of rebalancing churn.
MAX_STALE_RETRIES = 16


class StaleShardError(ProtocolError):
    """A round-trip hit a server that no longer serves the shard at that epoch.

    Raised client-side so drivers re-resolve the ring and replay the round
    against the shard's current owner group.
    """

    def __init__(self, shard: Optional[str], sent_epoch: int,
                 current_epoch: Optional[int]) -> None:
        super().__init__(
            f"shard {shard!r} epoch {sent_epoch} is stale "
            f"(server hosts epoch {current_epoch})"
        )
        self.shard = shard
        self.sent_epoch = sent_epoch
        self.current_epoch = current_epoch


def make_stale_reply(sub: SubRequest, current_epoch: Optional[int]) -> Message:
    """The bounce for one stale sub-request, echoing its routing tag."""
    return sub.message.reply(
        STALE_SHARD_KIND,
        {"shard": sub.shard, "sent_epoch": sub.epoch, "epoch": current_epoch},
    )


def is_stale_reply(message: Optional[Message]) -> bool:
    return message is not None and message.kind == STALE_SHARD_KIND


@dataclass
class _HostedShard:
    """One shard's slice of a group server: its epoch and per-key registers."""

    epoch: int
    registers: Dict[str, ServerLogic] = field(default_factory=dict)


class BatchGroupServer(ServerLogic):
    """One replica of a replica group, serving many shards' keys.

    The only message kind it accepts is ``"batch"``; the kv-store client
    drivers wrap even solitary sub-requests in a batch of one, so the wire
    protocol stays uniform.  Sub-requests of different shards hosted by the
    same group coalesce into the same frame.
    """

    def __init__(
        self,
        server_id: str,
        protocol: RegisterProtocol,
        shard_epochs: Optional[Dict[str, int]] = None,
    ) -> None:
        super().__init__(server_id)
        self.protocol = protocol
        self._shards: Dict[str, _HostedShard] = {}
        for shard_id, epoch in (shard_epochs or {}).items():
            self.host_shard(shard_id, epoch)
        self.batches_served = 0
        self.sub_ops_served = 0
        self.largest_batch = 0
        self.stale_bounces = 0

    # -- control plane (hosting table) -----------------------------------------

    def host_shard(
        self,
        shard_id: str,
        epoch: int,
        registers: Optional[Dict[str, ServerLogic]] = None,
    ) -> None:
        """Start serving ``shard_id`` at ``epoch`` (with migrated registers)."""
        hosted = _HostedShard(epoch=epoch)
        if registers:
            for logic in registers.values():
                logic.server_id = self.server_id
            hosted.registers.update(registers)
        self._shards[shard_id] = hosted

    def evict_shard(self, shard_id: str) -> Dict[str, ServerLogic]:
        """Stop serving ``shard_id``; returns its registers for migration."""
        hosted = self._shards.pop(shard_id, None)
        return hosted.registers if hosted is not None else {}

    def set_epoch(self, shard_id: str, epoch: int) -> None:
        """Fence ``shard_id`` at a new epoch (older tags bounce from now on)."""
        self._shards[shard_id].epoch = epoch

    def hosted_epoch(self, shard_id: str) -> Optional[int]:
        hosted = self._shards.get(shard_id)
        return hosted.epoch if hosted is not None else None

    def hosted_shards(self) -> List[str]:
        return list(self._shards)

    def keys_for(self, shard_id: str) -> List[str]:
        """The keys with materialized registers under ``shard_id`` here."""
        hosted = self._shards.get(shard_id)
        return list(hosted.registers) if hosted is not None else []

    def extract_keys(
        self, shard_id: str, keys: Iterable[str]
    ) -> Dict[str, ServerLogic]:
        """Remove and return the registers of ``keys`` (for migration)."""
        hosted = self._shards[shard_id]
        extracted: Dict[str, ServerLogic] = {}
        for key in keys:
            logic = hosted.registers.pop(key, None)
            if logic is not None:
                extracted[key] = logic
        return extracted

    def install_keys(self, shard_id: str, registers: Dict[str, ServerLogic]) -> None:
        """Adopt migrated registers under ``shard_id`` (which must be hosted)."""
        hosted = self._shards[shard_id]
        for key, logic in registers.items():
            logic.server_id = self.server_id
            hosted.registers[key] = logic

    # -- data plane -------------------------------------------------------------

    def register_for(self, shard_id: str, key: str) -> ServerLogic:
        """The per-key single-register server logic, created on first use."""
        hosted = self._shards[shard_id]
        logic = hosted.registers.get(key)
        if logic is None:
            logic = self.protocol.make_server(self.server_id)
            hosted.registers[key] = logic
        return logic

    @property
    def keys_hosted(self) -> int:
        return sum(len(hosted.registers) for hosted in self._shards.values())

    def handle(self, message: Message) -> Optional[Message]:
        if message.kind != BATCH_KIND:
            raise ValueError(
                f"BatchGroupServer only handles batch frames, got {message.kind!r}"
            )
        subs = unpack_batch(message)
        self.batches_served += 1
        self.sub_ops_served += len(subs)
        self.largest_batch = max(self.largest_batch, len(subs))
        replies: List[Tuple[str, Optional[Message]]] = []
        for sub in subs:
            hosted = self._shards.get(sub.shard) if sub.shard is not None else None
            if hosted is None or sub.epoch != hosted.epoch:
                self.stale_bounces += 1
                current = hosted.epoch if hosted is not None else None
                replies.append((sub.key, make_stale_reply(sub, current)))
                continue
            replies.append(
                (sub.key, self.register_for(sub.shard, sub.key).handle(sub.message))
            )
        return make_batch_ack(message, replies)


#: Historical name for :class:`BatchGroupServer`, from before placement was
#: its own layer.  Note the semantics moved with the name: the server now
#: only serves shard-tagged sub-requests for shards it has been told to host
#: (``host_shard``/``shard_epochs``) -- untagged legacy frames bounce as
#: stale instead of being served, by design of the epoch fence.
BatchShardServer = BatchGroupServer


@dataclass
class BatchStats:
    """Coalescing and frame statistics for one component of one run.

    One instance belongs to one *component* -- a client driver or a proxy --
    and the frame counters follow a convention that makes merging safe
    across any set of components: every frame on the wire is counted
    **exactly once**, request frames by the component that *sent* them
    (``frames_sent``) and reply frames by the component that *received* them
    (``frames_received``).  A client behind a proxy counts its client->proxy
    requests and proxy->client acks; the proxy counts its proxy->replica
    requests and replica->proxy acks; summing the four numbers is the exact
    frame total of the deployment, with nothing counted twice.  (The
    previous scheme kept frame counts as ad-hoc attributes on the asyncio
    group client only, which both undercounted the simulator and would have
    double-counted any merge that included an intermediary tier.)

    ``rounds``/``sub_operations`` describe this component's own coalescing
    (how many framed rounds it cut, carrying how many sub-operations), so
    merging client stats with proxy stats would conflate two different
    meanings -- keep tiers in separate instances and merge within a tier.
    """

    rounds: int = 0
    sub_operations: int = 0
    largest: int = 0
    frames_sent: int = 0
    frames_received: int = 0

    def record(self, batch_size: int) -> None:
        self.rounds += 1
        self.sub_operations += batch_size
        self.largest = max(self.largest, batch_size)

    def record_frames(self, sent: int = 0, received: int = 0) -> None:
        self.frames_sent += sent
        self.frames_received += received

    @property
    def mean_batch_size(self) -> float:
        return self.sub_operations / self.rounds if self.rounds else 0.0

    @property
    def frames_total(self) -> int:
        """Frames this component put on or took off the wire."""
        return self.frames_sent + self.frames_received

    def merge(self, other: "BatchStats") -> None:
        self.rounds += other.rounds
        self.sub_operations += other.sub_operations
        self.largest = max(self.largest, other.largest)
        self.frames_sent += other.frames_sent
        self.frames_received += other.frames_received

    def summary(self) -> str:
        return (
            f"{self.rounds} batch rounds, {self.sub_operations} sub-ops, "
            f"mean batch {self.mean_batch_size:.2f}, largest {self.largest}, "
            f"{self.frames_sent} frames sent"
        )
