"""Compatibility shim: the batching layer moved into the sans-I/O engine.

The multiplexed group server is
:class:`repro.kvstore.engine.server.GroupServerEngine` (the historical
names :class:`BatchGroupServer` / :class:`BatchShardServer` are kept as
aliases), and the accounting is
:class:`repro.kvstore.engine.stats.BatchStats`.  Note the semantics that
moved with the old ``BatchShardServer`` name remain: the server only serves
shard-tagged sub-requests for shards it has been told to host
(``host_shard``/``shard_epochs``) -- untagged legacy frames bounce as stale
instead of being served, by design of the epoch fence.
"""

from __future__ import annotations

from .engine.server import (
    MAX_STALE_RETRIES,
    STALE_SHARD_KIND,
    GroupServerEngine,
    StaleShardError,
    is_stale_reply,
    make_stale_reply,
)
from .engine.stats import BatchStats

__all__ = [
    "STALE_SHARD_KIND",
    "MAX_STALE_RETRIES",
    "StaleShardError",
    "make_stale_reply",
    "is_stale_reply",
    "BatchGroupServer",
    "BatchShardServer",
    "BatchStats",
]

BatchGroupServer = GroupServerEngine
BatchShardServer = GroupServerEngine
