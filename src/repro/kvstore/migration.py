"""Control-plane migration: applying resize/move plans to group servers.

:meth:`~repro.kvstore.sharding.ShardMap.resize` and
:meth:`~repro.kvstore.sharding.ShardMap.move_shard` only rewrite metadata
(ring, placements, epochs).  This module performs the matching *data* step:
draining per-key register objects out of the shards that lost ownership and
installing them on the new owners, replica by replica.

Both backends keep every group server's logic object in the coordinating
process (the simulator by construction; the asyncio cluster because it owns
the listening replicas), so a whole plan is applied in **one synchronous
critical section** -- fence, drain, install, with no event or await in
between.  That atomicity is what makes the cutover linearizable: a frame is
either processed entirely before the migration (old epochs valid, old owners
serve it) or entirely after (stale tags bounce, the client re-resolves and
replays the round against the new owner).  In a multi-process deployment
the same sequence would be a fence-then-transfer handshake; the epoch tags
carried on every sub-request are exactly the fence such a handshake needs.

Registers move replica-by-replica in index order: source replica ``i``'s
state lands on destination replica ``i``.  Groups are uniform in size, so a
value stored on ``>= S - t`` source replicas is stored on ``>= S - t``
destination replicas after the move -- quorum intersection, and with it
per-key atomicity, survives migration (even when some replicas hold stale
state because they were crashed or missed updates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Set, Tuple

from .batching import BatchGroupServer
from .sharding import MovePlan, ResizePlan, ShardMap

__all__ = [
    "MigrationReport",
    "apply_resize_plan",
    "apply_move_plan",
    "make_resize_trigger",
]


@dataclass
class MigrationReport:
    """What one applied plan physically moved."""

    keys_moved: int = 0
    registers_moved: int = 0
    shards_added: List[str] = field(default_factory=list)
    shards_removed: List[str] = field(default_factory=list)
    shards_fenced: List[str] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"moved {self.keys_moved} keys ({self.registers_moved} replica "
            f"registers), +{len(self.shards_added)}/-{len(self.shards_removed)} "
            f"shards, fenced {len(self.shards_fenced)}"
        )


def _drain_shard(
    shard_map: ShardMap,
    spec,
    logics: Mapping[str, BatchGroupServer],
    report: MigrationReport,
    moved_keys: Set[str],
) -> None:
    """Move every key of ``spec`` whose ring owner changed to its new home."""
    for index, server_id in enumerate(spec.group.servers):
        source = logics[server_id]
        relocations: Dict[str, List[str]] = {}
        for key in source.keys_for(spec.shard_id):
            owner = shard_map.ring.owner_of(key)
            if owner != spec.shard_id:
                relocations.setdefault(owner, []).append(key)
        for owner, keys in relocations.items():
            dest_spec = shard_map.shards[owner]
            registers = source.extract_keys(spec.shard_id, keys)
            logics[dest_spec.group.servers[index]].install_keys(owner, registers)
            report.registers_moved += len(registers)
            moved_keys.update(registers)


def apply_resize_plan(
    plan: ResizePlan,
    shard_map: ShardMap,
    logics: Mapping[str, BatchGroupServer],
) -> MigrationReport:
    """Apply one resize to the group servers: host, fence, drain, evict.

    Must be called immediately after ``shard_map.resize(...)`` produced
    ``plan``, with no intervening event processing (both cluster backends
    wrap the two calls in one synchronous step).
    """
    report = MigrationReport(
        shards_added=[spec.shard_id for spec in plan.added],
        shards_removed=[spec.shard_id for spec in plan.removed],
        shards_fenced=sorted(plan.fenced),
    )
    moved_keys: Set[str] = set()

    # 1. Host the new shards (empty) on their groups' servers.
    for spec in plan.added:
        for server_id in spec.group.servers:
            logics[server_id].host_shard(spec.shard_id, spec.epoch)

    # 2. Fence every surviving shard that lost arcs: older epochs bounce.
    for shard_id, epoch in plan.fenced.items():
        spec = shard_map.shards[shard_id]
        for server_id in spec.group.servers:
            logics[server_id].set_epoch(shard_id, epoch)

    # 3. Drain moved keys out of the donors (fenced survivors) and out of
    #    every removed shard, into the new owners' hosting tables.
    for shard_id in plan.fenced:
        _drain_shard(shard_map, shard_map.shards[shard_id], logics, report, moved_keys)
    for spec in plan.removed:
        _drain_shard(shard_map, spec, logics, report, moved_keys)

    # 4. Retire removed shards entirely; anything still addressed to them
    #    now bounces as "not hosted".
    for spec in plan.removed:
        for server_id in spec.group.servers:
            logics[server_id].evict_shard(spec.shard_id)

    report.keys_moved = len(moved_keys)
    return report


def make_resize_trigger(
    resize: Callable[[int], MigrationReport],
    completed_ops: Callable[[], int],
    resize_to: int,
    threshold: int,
    now: Optional[Callable[[], float]] = None,
) -> Tuple[Callable[[], None], Dict[str, object]]:
    """A fire-once completion hook that live-resizes mid-workload.

    Both backend workload runners install the returned hook after every
    completed operation; once ``completed_ops()`` reaches ``threshold`` it
    calls ``resize(resize_to)`` exactly once and fills the returned record
    with what happened (``to``, ``at_ops``, ``keys_moved``, ``report``, and
    ``at_time`` when a clock is supplied).
    """
    record: Dict[str, object] = {}
    state = {"fired": False}

    def hook() -> None:
        if state["fired"] or completed_ops() < threshold:
            return
        state["fired"] = True
        report = resize(resize_to)
        record.update(
            {
                "to": resize_to,
                "at_ops": completed_ops(),
                "keys_moved": report.keys_moved,
                "report": report.summary(),
            }
        )
        if now is not None:
            record["at_time"] = now()

    return hook, record


def apply_move_plan(
    plan: MovePlan, logics: Mapping[str, BatchGroupServer]
) -> MigrationReport:
    """Apply one shard move: evict from the old group, host on the new one.

    Must be called immediately after ``shard_map.move_shard(...)``; the
    spec's epoch is already bumped, so frames routed to the old group (or to
    the new group with the old epoch) bounce.
    """
    report = MigrationReport(shards_fenced=[plan.spec.shard_id])
    moved_keys: Set[str] = set()
    for index, server_id in enumerate(plan.old_group.servers):
        registers = logics[server_id].evict_shard(plan.spec.shard_id)
        logics[plan.new_group.servers[index]].host_shard(
            plan.spec.shard_id, plan.spec.epoch, registers
        )
        report.registers_moved += len(registers)
        moved_keys.update(registers)
    report.keys_moved = len(moved_keys)
    return report
