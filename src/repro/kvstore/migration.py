"""Control-plane migration reporting and workload triggers.

The data-plane side of a rebalance -- fencing donors, transferring per-key
register state, installing it on the new owners -- is the frame-based
incremental drain run by
:class:`~repro.kvstore.engine.control.ControlPlaneEngine`.  Earlier versions
applied a whole plan in one synchronous critical section (every group
server's logic object was reachable in the coordinating process); that
single-process assumption is gone, and with it the shard-sized cutover
pause: the engine drains one key *range* at a time, so client ops on keys
outside the range in flight keep completing throughout.

This module keeps the two pieces both backends still share:

* :class:`MigrationReport` -- what one rebalance moved.  Because the drain
  is now asynchronous, a report is returned *before* the data has moved;
  ``done`` flips (and ``on_done`` callbacks fire) when the drain completes
  and the counters are final.
* :func:`make_resize_trigger` -- the fire-once completion hook the workload
  runners install to live-resize mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "MigrationReport",
    "make_resize_trigger",
]


@dataclass
class MigrationReport:
    """What one applied plan physically moved.

    The shard-set fields (``shards_added``/``shards_removed``/
    ``shards_fenced``) are metadata and are final as soon as the report is
    returned -- the shard map flips synchronously.  The data counters
    (``keys_moved``, ``registers_moved``) are filled when the incremental
    drain finishes; watch ``done`` or register an ``on_done`` callback.
    """

    keys_moved: int = 0
    registers_moved: int = 0
    shards_added: List[str] = field(default_factory=list)
    shards_removed: List[str] = field(default_factory=list)
    shards_fenced: List[str] = field(default_factory=list)
    done: bool = False
    _done_callbacks: List[Callable[["MigrationReport"], None]] = field(
        default_factory=list, repr=False
    )

    def summary(self) -> str:
        return (
            f"moved {self.keys_moved} keys ({self.registers_moved} replica "
            f"registers), +{len(self.shards_added)}/-{len(self.shards_removed)} "
            f"shards, fenced {len(self.shards_fenced)}"
        )

    def on_done(self, callback: Callable[["MigrationReport"], None]) -> None:
        """Run ``callback(report)`` once the drain completes.

        Fires immediately when the report is already complete, so callers
        need not care whether the backend drained synchronously (the
        simulator pumping its own event queue) or in the background (the
        asyncio cluster).
        """
        if self.done:
            callback(self)
        else:
            self._done_callbacks.append(callback)

    def _complete(self) -> None:
        """Mark the drain finished and fire the completion callbacks."""
        if self.done:
            return
        self.done = True
        callbacks, self._done_callbacks = self._done_callbacks, []
        for callback in callbacks:
            callback(self)


def make_resize_trigger(
    resize: Callable[[int], MigrationReport],
    completed_ops: Callable[[], int],
    resize_to: int,
    threshold: int,
    now: Optional[Callable[[], float]] = None,
) -> Tuple[Callable[[], None], Dict[str, object]]:
    """A fire-once completion hook that live-resizes mid-workload.

    Both backend workload runners install the returned hook after every
    completed operation; once ``completed_ops()`` reaches ``threshold`` it
    calls ``resize(resize_to)`` exactly once and fills the returned record
    with what happened (``to``, ``at_ops``, ``keys_moved``, ``report``, and
    ``at_time`` when a clock is supplied).  The data counters are refreshed
    when the report's drain completes, so a record read after the run ended
    always shows the final numbers even on a backend that drains in the
    background.
    """
    record: Dict[str, object] = {}
    state = {"fired": False}

    def hook() -> None:
        if state["fired"] or completed_ops() < threshold:
            return
        state["fired"] = True
        report = resize(resize_to)
        record.update(
            {
                "to": resize_to,
                "at_ops": completed_ops(),
                "keys_moved": report.keys_moved,
                "report": report.summary(),
            }
        )
        if now is not None:
            record["at_time"] = now()

        def refresh(final: MigrationReport) -> None:
            record["keys_moved"] = final.keys_moved
            record["report"] = final.summary()

        report.on_done(refresh)

    return hook, record
