"""Placement layer: replica groups and shard-to-group placement policies.

The first version of the store welded every shard to its own disjoint set of
replica servers, so shard count was capped by server count and fixed at
construction.  This module makes *placement* its own layer:

* a :class:`ReplicaGroup` is the unit of replication -- a named set of
  servers running one register protocol instance.  One group hosts the
  per-key registers of **many** shards (a multiplexed
  :class:`~repro.kvstore.batching.BatchGroupServer` runs on each of its
  servers), so a small cluster can carry a large shard count (N shards on
  M groups, N >> M) and groups can be placed per site.

* a :class:`PlacementPolicy` decides which group hosts which shard -- both
  at construction (``place``) and when ``ShardMap.resize`` adds shards later
  (``place_one``).  :class:`RoundRobinPlacement` spreads shards evenly and
  sends new shards to the least-loaded group, which keeps per-group register
  counts balanced as the ring grows.

Groups are deliberately uniform in size (one ``servers_per_group`` setting):
live migration pairs source and destination replicas index-by-index, which
preserves "value present on >= S-t replicas" across a move and therefore
preserves every quorum-intersection argument the register protocols rely on.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Collection, Dict, List, Mapping, Optional, Sequence

from ..protocols.base import RegisterProtocol

__all__ = [
    "ReplicaGroup",
    "PlacementPolicy",
    "RoundRobinPlacement",
    "pick_coldest_group",
]


@dataclass
class ReplicaGroup:
    """One replica group: its id, server ids, and register protocol instance.

    Every shard placed on this group runs its per-key register emulations on
    these servers using this protocol; the protocol instance is shared by all
    of the group's shards because per-key *server logic* objects (not the
    factory) carry the state.
    """

    group_id: str
    protocol: RegisterProtocol
    servers: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.servers:
            self.servers = list(self.protocol.servers)

    @property
    def quorum_size(self) -> int:
        return len(self.servers) - self.protocol.max_faults

    @property
    def max_faults(self) -> int:
        return self.protocol.max_faults

    def describe(self) -> Dict[str, object]:
        return {
            "group": self.group_id,
            "servers": len(self.servers),
            "max_faults": self.max_faults,
            "quorum": self.quorum_size,
        }


class PlacementPolicy(abc.ABC):
    """Maps N shards onto M replica groups (N >> M allowed)."""

    @abc.abstractmethod
    def place(
        self, shard_ids: Sequence[str], group_ids: Sequence[str]
    ) -> Dict[str, str]:
        """Assign every shard id to a group id (initial placement)."""

    def place_one(
        self,
        shard_id: str,
        group_ids: Sequence[str],
        shard_counts: Dict[str, int],
    ) -> str:
        """Pick the group for one shard added after construction.

        The default sends the shard to the least-loaded group (fewest shards
        hosted), breaking ties by group order -- what ``ShardMap.resize``
        uses so growth keeps groups balanced.
        """
        return min(group_ids, key=lambda gid: (shard_counts.get(gid, 0),
                                               group_ids.index(gid)))


def pick_coldest_group(
    loads: Mapping[str, float], exclude: Collection[str] = ()
) -> Optional[str]:
    """The least-loaded group id, by *observed load* rather than shard count.

    ``loads`` maps every candidate group id to a load figure (typically
    recent served-op counts, as folded by the control plane's autoscaler);
    ties break by the mapping's iteration order so repeated calls stay
    deterministic.  Returns ``None`` when ``exclude`` leaves no candidate.
    """
    order = {group_id: index for index, group_id in enumerate(loads)}
    candidates = [gid for gid in loads if gid not in set(exclude)]
    if not candidates:
        return None
    return min(candidates, key=lambda gid: (loads[gid], order[gid]))


class RoundRobinPlacement(PlacementPolicy):
    """Shard ``i`` goes to group ``i mod M``; additions go least-loaded."""

    def place(
        self, shard_ids: Sequence[str], group_ids: Sequence[str]
    ) -> Dict[str, str]:
        if not group_ids:
            raise ValueError("placement needs at least one replica group")
        return {
            shard_id: group_ids[index % len(group_ids)]
            for index, shard_id in enumerate(shard_ids)
        }
