"""The key-value store on the real asyncio TCP transport.

The same placement layout and shard-tagged batch frames as the simulator
backend, over real sockets:

* :class:`AsyncKVCluster` starts one :class:`~repro.asyncio_net.server.ReplicaServer`
  per *replica-group* server, each hosting a multiplexed
  :class:`~repro.kvstore.batching.BatchGroupServer` that serves every shard
  placed on its group.  The cluster is live: :meth:`AsyncKVCluster.resize`
  and :meth:`AsyncKVCluster.move_shard` rebalance the ring while clients
  keep operating -- metadata and register drain happen in one synchronous
  step on the event loop, and in-flight frames carrying old epoch tags
  bounce back to the clients.
* :class:`AsyncGroupClient` owns one connection per replica of one group and
  coalesces sub-requests submitted in the same event-loop tick (or up to
  ``max_batch``) into one batch frame per replica -- ``multi_get``/``multi_put``
  and pipelined workloads batch naturally, across all shards of the group.
* :class:`KVStore` is the client facade: ``await get/put/multi_get/multi_put``.
  On a stale-shard bounce it re-resolves the ring and replays the bounced
  round against the new owner group (round-trips are idempotent, so the
  per-key register generator never notices the migration).
* :class:`SyncKVStore` wraps a :class:`KVStore` for synchronous callers via a
  background event-loop thread.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import ProtocolError
from ..core.operations import OpKind, new_op_id
from ..protocols.base import Broadcast, ClientLogic, OperationOutcome
from ..sim.messages import (
    BATCH_ACK_KIND,
    Message,
    SubRequest,
    make_batch,
    unpack_batch_ack,
)
from ..asyncio_net.codec import read_frame, write_frame
from ..asyncio_net.server import ReplicaServer
from .batching import (
    MAX_STALE_RETRIES,
    BatchGroupServer,
    BatchStats,
    StaleShardError,
    is_stale_reply,
)
from .migration import (
    MigrationReport,
    apply_move_plan,
    apply_resize_plan,
    make_resize_trigger,
)
from .perkey import KVHistoryRecorder, PerKeyAtomicity, check_per_key_atomicity
from .placement import ReplicaGroup
from .sharding import ShardMap, ShardSpec
from .workload import KVRunResult, KVWorkload
from ._sync import LoopThread, run_sync

__all__ = ["AsyncKVCluster", "AsyncGroupClient", "AsyncShardClient", "KVStore",
           "SyncKVStore", "run_asyncio_kv_workload"]


class AsyncKVCluster:
    """All group replicas of a :class:`ShardMap` listening on loopback TCP."""

    def __init__(
        self,
        shard_map: ShardMap,
        host: str = "127.0.0.1",
        service_overhead: float = 0.0,
        service_per_op: float = 0.0,
    ) -> None:
        self.shard_map = shard_map
        self.host = host
        self.service_overhead = service_overhead
        self.service_per_op = service_per_op
        self.replicas: Dict[str, ReplicaServer] = {}
        self.migrations: List[MigrationReport] = []
        self._logics: Dict[str, BatchGroupServer] = {}
        self._endpoints: Dict[str, Dict[str, Tuple[str, int]]] = {}

    async def start(self) -> None:
        for group in self.shard_map.groups.values():
            hosted = {
                spec.shard_id: spec.epoch
                for spec in self.shard_map.shards_on(group.group_id)
            }
            endpoints: Dict[str, Tuple[str, int]] = {}
            for server_id in group.servers:
                logic = BatchGroupServer(server_id, group.protocol, dict(hosted))
                replica = ReplicaServer(
                    logic,
                    host=self.host,
                    service_overhead=self.service_overhead,
                    service_per_op=self.service_per_op,
                )
                await replica.start()
                self.replicas[server_id] = replica
                self._logics[server_id] = logic
                endpoints[server_id] = (replica.host, replica.port)
            self._endpoints[group.group_id] = endpoints

    async def stop(self) -> None:
        for replica in self.replicas.values():
            await replica.stop()
        self.replicas.clear()
        self._logics.clear()
        self._endpoints.clear()

    def endpoints_for(self, group_id: str) -> Dict[str, Tuple[str, int]]:
        return dict(self._endpoints[group_id])

    # -- live control plane ----------------------------------------------------

    @property
    def server_logics(self) -> Dict[str, BatchGroupServer]:
        return dict(self._logics)

    def resize(self, new_num_shards: int) -> MigrationReport:
        """Live-resize the ring: metadata + register drain, one loop step.

        Synchronous on purpose: with no ``await`` between the metadata flip
        and the register drain, no frame can be processed half-way through
        the cutover.  Call from the event loop that owns the cluster.
        """
        plan = self.shard_map.resize(new_num_shards)
        report = apply_resize_plan(plan, self.shard_map, self._logics)
        self.migrations.append(report)
        return report

    def move_shard(self, shard_id: str, group_id: str) -> MigrationReport:
        """Live-move one shard onto another group (same atomicity note)."""
        plan = self.shard_map.move_shard(shard_id, group_id)
        report = apply_move_plan(plan, self._logics)
        self.migrations.append(report)
        return report


@dataclass
class _PendingRound:
    """One round-trip of one operation, awaiting its quorum of sub-replies."""

    op_id: str
    round_trip: int
    key: str
    shard: str
    epoch: int
    request: Broadcast
    wait_for: int
    replies: List[Message] = field(default_factory=list)
    ready: asyncio.Event = field(default_factory=asyncio.Event)
    error: Optional[BaseException] = None

    def fail(self, exc: BaseException) -> None:
        self.error = exc
        self.ready.set()


class AsyncGroupClient:
    """Connections to one replica group, with batch coalescing.

    Sub-requests submitted while the event loop is busy (same tick) ride the
    same batch frame; a frame is also cut as soon as ``max_batch``
    sub-requests are pending.  All shards hosted by the group share the same
    frames -- coalescing improves as shards-per-group grows.
    """

    def __init__(
        self,
        client_id: str,
        group: ReplicaGroup,
        endpoints: Dict[str, Tuple[str, int]],
        max_batch: int = 8,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.client_id = client_id
        self.group = group
        self.endpoints = dict(endpoints)
        self.max_batch = max_batch
        self.batch_stats = BatchStats()
        self.frames_sent = 0
        self.frames_received = 0
        self._writers: Dict[str, asyncio.StreamWriter] = {}
        self._receive_tasks: List[asyncio.Task] = []
        self._send_tasks: "set[asyncio.Task]" = set()
        self._queue: List[_PendingRound] = []
        self._rounds: Dict[Tuple[str, int], _PendingRound] = {}
        self._flush_scheduled = False

    @property
    def quorum_size(self) -> int:
        return self.group.quorum_size

    # -- connection management -------------------------------------------------

    async def connect(self) -> None:
        for server_id, (host, port) in self.endpoints.items():
            reader, writer = await asyncio.open_connection(host, port)
            self._writers[server_id] = writer
            self._receive_tasks.append(
                asyncio.create_task(self._receive_loop(reader))
            )

    async def close(self) -> None:
        for task in list(self._receive_tasks) + list(self._send_tasks):
            task.cancel()
        await asyncio.gather(
            *self._receive_tasks, *self._send_tasks, return_exceptions=True
        )
        self._receive_tasks.clear()
        self._send_tasks.clear()
        for writer in self._writers.values():
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
        self._writers.clear()

    # -- the round-trip primitive ----------------------------------------------

    async def round_trip(
        self,
        key: str,
        shard: str,
        epoch: int,
        op_id: str,
        round_trip: int,
        request: Broadcast,
    ) -> List[Message]:
        """Broadcast one shard-tagged sub-request (batched), await its quorum.

        Raises :class:`StaleShardError` when the group bounces the round
        because the (shard, epoch) tag went stale mid-flight -- the caller
        re-resolves the ring and replays the round at the new owner.
        """
        wait_for = request.wait_for if request.wait_for is not None else self.quorum_size
        pending = _PendingRound(
            op_id=op_id,
            round_trip=round_trip,
            key=key,
            shard=shard,
            epoch=epoch,
            request=request,
            wait_for=wait_for,
        )
        self._rounds[(op_id, round_trip)] = pending
        self._submit(pending)
        try:
            await pending.ready.wait()
        finally:
            self._rounds.pop((op_id, round_trip), None)
        # During a cutover some replicas may serve the round while others
        # bounce it; a reached quorum wins over a late stale bounce.
        if pending.error is not None and len(pending.replies) < wait_for:
            raise pending.error
        return list(pending.replies[:wait_for])

    def _submit(self, pending: _PendingRound) -> None:
        self._queue.append(pending)
        if len(self._queue) >= self.max_batch:
            self._flush()
        elif not self._flush_scheduled:
            self._flush_scheduled = True
            asyncio.get_running_loop().call_soon(self._flush)

    def _flush(self) -> None:
        self._flush_scheduled = False
        if not self._queue:
            return
        batch, self._queue = self._queue[: self.max_batch], self._queue[self.max_batch :]
        if self._queue and not self._flush_scheduled:
            self._flush_scheduled = True
            asyncio.get_running_loop().call_soon(self._flush)
        self.batch_stats.record(len(batch))
        task = asyncio.create_task(self._send_batch(batch))
        self._send_tasks.add(task)
        task.add_done_callback(self._send_tasks.discard)

    async def _send_batch(self, batch: List[_PendingRound]) -> None:
        async def send_to(server_id: str, writer: asyncio.StreamWriter) -> None:
            subs = [
                SubRequest(
                    key=pending.key,
                    message=Message(
                        sender=self.client_id,
                        receiver=server_id,
                        kind=pending.request.kind,
                        payload=pending.request.payload_for(server_id),
                        op_id=pending.op_id,
                        round_trip=pending.round_trip,
                    ),
                    shard=pending.shard,
                    epoch=pending.epoch,
                )
                for pending in batch
            ]
            await write_frame(writer, make_batch(self.client_id, server_id, subs))
            self.frames_sent += 1

        # Writes go out concurrently so one backpressured replica cannot
        # delay the frames for the rest of the quorum.
        results = await asyncio.gather(
            *(send_to(server_id, writer) for server_id, writer in self._writers.items()),
            return_exceptions=True,
        )
        failures = [r for r in results if isinstance(r, BaseException)]
        if not failures:
            return
        # A round survives a minority of failed sends (quorum still
        # reachable); when too few frames went out -- or none, as when the
        # frame exceeds MAX_FRAME_BYTES -- fail the waiters instead of
        # letting them block forever.
        successes = len(results) - len(failures)
        for pending in batch:
            if successes < pending.wait_for:
                pending.fail(failures[0])

    async def _receive_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                message = await read_frame(reader)
                self.frames_received += 1
                if message.kind != BATCH_ACK_KIND:
                    continue
                for _key, sub in unpack_batch_ack(message):
                    if sub is None:
                        continue
                    pending = self._rounds.get((sub.op_id, sub.round_trip))
                    if pending is None:
                        continue  # straggler from a completed round-trip
                    if is_stale_reply(sub):
                        pending.fail(
                            StaleShardError(
                                pending.shard,
                                pending.epoch,
                                sub.payload.get("epoch"),
                            )
                        )
                        continue
                    pending.replies.append(sub)
                    if len(pending.replies) >= pending.wait_for:
                        pending.ready.set()
        except (asyncio.IncompleteReadError, ConnectionResetError, asyncio.CancelledError):
            return


#: Backwards-compatible alias from before placement was its own layer.
AsyncShardClient = AsyncGroupClient


class KVStore:
    """The async client facade of the sharded store.

    One store instance represents one logical client: operations on the same
    key are serialized per key (keeping per-key sub-histories well-formed)
    while operations on different keys run concurrently and share batch
    rounds whenever their shards live on the same replica group.  Rounds
    bounced by the epoch fence during a live resize/move are transparently
    replayed against the key's new owner.
    """

    def __init__(
        self,
        cluster: AsyncKVCluster,
        client_id: str = "kv1",
        max_batch: int = 8,
        recorder: Optional[KVHistoryRecorder] = None,
    ) -> None:
        self.cluster = cluster
        self.client_id = client_id
        self.max_batch = max_batch
        base = time.monotonic()
        self.recorder = recorder or KVHistoryRecorder(lambda: time.monotonic() - base)
        self.stale_replays = 0
        self.completion_hook: Optional[Any] = None
        self._group_clients: Dict[str, AsyncGroupClient] = {}
        self._key_locks: Dict[str, asyncio.Lock] = {}
        self._readers: Dict[str, ClientLogic] = {}
        self._writers: Dict[str, ClientLogic] = {}
        self._logic_homes: Dict[str, str] = {}

    async def connect(self) -> None:
        for group in self.cluster.shard_map.groups.values():
            client = AsyncGroupClient(
                self.client_id,
                group,
                self.cluster.endpoints_for(group.group_id),
                max_batch=self.max_batch,
            )
            await client.connect()
            self._group_clients[group.group_id] = client

    async def close(self) -> None:
        for client in self._group_clients.values():
            await client.close()
        self._group_clients.clear()

    # -- operations -------------------------------------------------------------

    async def put(self, key: str, value: Any) -> OperationOutcome:
        """Write ``value`` to ``key`` through the key's register."""
        return await self._run_op(OpKind.WRITE, key, value)

    async def get(self, key: str) -> Any:
        """Read ``key``; returns the value (``None`` if never written)."""
        outcome = await self._run_op(OpKind.READ, key)
        return outcome.value

    async def multi_get(self, keys: Sequence[str]) -> Dict[str, Any]:
        """Read many keys concurrently (same-group keys share batch rounds)."""
        values = await asyncio.gather(*(self.get(key) for key in keys))
        return dict(zip(keys, values))

    async def multi_put(self, items: Mapping[str, Any]) -> None:
        """Write many keys concurrently (same-group keys share batch rounds)."""
        pairs = list(items.items())
        await asyncio.gather(*(self.put(key, value) for key, value in pairs))

    # -- internals --------------------------------------------------------------

    def _logic_for(self, kind: OpKind, key: str, spec: ShardSpec) -> ClientLogic:
        # Cached per-key logic was built against one group's server list;
        # rebuild when a move re-homed the shard (fresh readers/writers are
        # always safe to introduce for every protocol in this library).
        if self._logic_homes.get(key) != spec.group.group_id:
            self._logic_homes[key] = spec.group.group_id
            self._readers.pop(key, None)
            self._writers.pop(key, None)
        cache = self._writers if kind is OpKind.WRITE else self._readers
        logic = cache.get(key)
        if logic is None:
            if kind is OpKind.WRITE:
                logic = spec.protocol.make_writer(self.client_id)
            else:
                logic = spec.protocol.make_reader(self.client_id)
            cache[key] = logic
        return logic

    def _resolve(self, key: str) -> Tuple[ShardSpec, AsyncGroupClient]:
        spec = self.cluster.shard_map.shard_for(key)
        group_client = self._group_clients.get(spec.group.group_id)
        if group_client is None:
            raise RuntimeError("KVStore is not connected; call connect() first")
        return spec, group_client

    async def _run_op(self, kind: OpKind, key: str, value: Any = None) -> OperationOutcome:
        spec, _ = self._resolve(key)
        lock = self._key_locks.setdefault(key, asyncio.Lock())
        async with lock:
            op_id = new_op_id(f"{self.client_id}-{kind.value}")
            self.recorder.record_invocation(key, op_id, self.client_id, kind, value=value)
            logic = self._logic_for(kind, key, spec)
            generator = (
                logic.write_protocol(value) if kind is OpKind.WRITE else logic.read_protocol()
            )
            round_trip = 0
            stale_retries = 0
            try:
                request = next(generator)
                while True:
                    round_trip += 1
                    # Re-resolve every round: a live resize/move between
                    # rounds re-routes the rest of the operation.
                    spec, group_client = self._resolve(key)
                    try:
                        replies = await group_client.round_trip(
                            key, spec.shard_id, spec.epoch, op_id, round_trip, request
                        )
                    except StaleShardError:
                        # The shard was rebalanced while this round was in
                        # flight.  Rounds are idempotent (queries trivially,
                        # updates because servers only adopt larger tags),
                        # so replay the same broadcast at the new owner.
                        stale_retries += 1
                        self.stale_replays += 1
                        if stale_retries > MAX_STALE_RETRIES:
                            raise
                        continue
                    request = generator.send(replies)
            except StopIteration as stop:
                outcome = stop.value
            if not isinstance(outcome, OperationOutcome):
                raise ProtocolError("operation generator must return an OperationOutcome")
            self.recorder.record_response(
                op_id, value=outcome.value, tag=outcome.tag, round_trips=round_trip
            )
            if self.completion_hook is not None:
                self.completion_hook()
            return outcome

    # -- introspection ----------------------------------------------------------

    def batch_stats(self) -> BatchStats:
        merged = BatchStats()
        for client in self._group_clients.values():
            merged.merge(client.batch_stats)
        return merged

    def frames_sent(self) -> int:
        return sum(client.frames_sent for client in self._group_clients.values())

    def frames_total(self) -> int:
        """Request frames sent plus ack frames received -- the same counting
        the simulator's ``Network.sent_count`` uses, so the two backends'
        message numbers are comparable."""
        return sum(
            client.frames_sent + client.frames_received
            for client in self._group_clients.values()
        )

    def histories(self):
        return self.recorder.histories()

    def check(self) -> PerKeyAtomicity:
        """Per-key atomicity verdict over everything this store recorded."""
        return check_per_key_atomicity(self.histories())


class SyncKVStore:
    """Synchronous facade: a private cluster + store on a background loop.

    Starts its own :class:`AsyncKVCluster` and :class:`KVStore` on a daemon
    event-loop thread, so plain synchronous code can use the sharded store
    without touching asyncio::

        with SyncKVStore(num_shards=4, num_groups=2) as store:
            store.put("user:7", "ada")
            store.resize(8)                      # live rebalance
            assert store.get("user:7") == "ada"
    """

    def __init__(
        self,
        num_shards: int = 2,
        protocol_key: str = "abd-mwmr",
        servers_per_shard: int = 3,
        max_faults: int = 1,
        max_batch: int = 8,
        client_id: str = "kv-sync",
        shard_map: Optional[ShardMap] = None,
        num_groups: Optional[int] = None,
    ) -> None:
        self._loop_thread = LoopThread()
        if shard_map is None:
            shard_map = ShardMap(
                num_shards,
                protocol_key=protocol_key,
                servers_per_shard=servers_per_shard,
                max_faults=max_faults,
                num_groups=num_groups,
            )
        self._cluster = AsyncKVCluster(shard_map)
        self._store = KVStore(self._cluster, client_id=client_id, max_batch=max_batch)
        self._closed = False
        try:
            self._loop_thread.call(self._setup())
        except BaseException:
            # Construction failed: tear down whatever started so the loop
            # thread (and any bound replicas) do not outlive the exception.
            self._closed = True
            try:
                self._loop_thread.call(self._teardown(), timeout=10.0)
            except Exception:
                pass
            self._loop_thread.stop()
            raise

    async def _setup(self) -> None:
        await self._cluster.start()
        await self._store.connect()

    # -- synchronous API ---------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        self._loop_thread.call(self._store.put(key, value))

    def get(self, key: str) -> Any:
        return self._loop_thread.call(self._store.get(key))

    def multi_get(self, keys: Sequence[str]) -> Dict[str, Any]:
        return self._loop_thread.call(self._store.multi_get(keys))

    def multi_put(self, items: Mapping[str, Any]) -> None:
        self._loop_thread.call(self._store.multi_put(items))

    def resize(self, new_num_shards: int) -> MigrationReport:
        """Live-resize the ring (runs on the cluster's event loop)."""

        async def _do() -> MigrationReport:
            return self._cluster.resize(new_num_shards)

        return self._loop_thread.call(_do())

    def move_shard(self, shard_id: str, group_id: str) -> MigrationReport:
        """Live-move one shard onto another replica group."""

        async def _do() -> MigrationReport:
            return self._cluster.move_shard(shard_id, group_id)

        return self._loop_thread.call(_do())

    def batch_stats(self) -> BatchStats:
        return self._store.batch_stats()

    def check(self) -> PerKeyAtomicity:
        return self._store.check()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._loop_thread.call(self._teardown())
        finally:
            self._loop_thread.stop()

    async def _teardown(self) -> None:
        await self._store.close()
        await self._cluster.stop()
        # Let the replicas' per-connection handler tasks observe EOF and
        # finish before the loop thread is stopped, else they die mid-await.
        pending = [
            task
            for task in asyncio.all_tasks()
            if task is not asyncio.current_task()
        ]
        if pending:
            await asyncio.wait(pending, timeout=1.0)

    def __enter__(self) -> "SyncKVStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_asyncio_kv_workload(
    workload: KVWorkload,
    num_shards: int = 2,
    protocol_key: str = "abd-mwmr",
    servers_per_shard: int = 3,
    max_faults: int = 1,
    max_batch: int = 8,
    shard_map: Optional[ShardMap] = None,
    service_overhead: float = 0.0,
    service_per_op: float = 0.0,
    num_groups: Optional[int] = None,
    resize_to: Optional[int] = None,
    resize_after_ops: Optional[int] = None,
) -> KVRunResult:
    """Run a closed-loop kv workload over loopback TCP and collect results.

    Every workload client becomes one :class:`KVStore` (its own connections
    and batching), all sharing one replica cluster and one history recorder.
    ``resize_to`` triggers a *live* resize once ``resize_after_ops``
    operations completed (default: half the workload), with the remaining
    operations still in flight.
    """
    clients = workload.clients
    if shard_map is None:
        shard_map = ShardMap(
            num_shards,
            protocol_key=protocol_key,
            servers_per_shard=servers_per_shard,
            max_faults=max_faults,
            readers=len(clients),
            writers=len(clients),
            num_groups=num_groups,
        )

    async def _run() -> KVRunResult:
        cluster = AsyncKVCluster(
            shard_map,
            service_overhead=service_overhead,
            service_per_op=service_per_op,
        )
        await cluster.start()
        base = time.monotonic()
        recorder = KVHistoryRecorder(lambda: time.monotonic() - base)
        stores: Dict[str, KVStore] = {}

        resize_info: Optional[Dict[str, object]] = None
        hook = None
        if resize_to is not None:
            hook, resize_info = make_resize_trigger(
                cluster.resize,
                lambda: recorder.completed_operations,
                resize_to,
                resize_after_ops
                if resize_after_ops is not None
                else max(1, workload.total_operations() // 2),
            )

        try:
            for client_id in clients:
                store = KVStore(
                    cluster, client_id=client_id, max_batch=max_batch, recorder=recorder
                )
                store.completion_hook = hook
                await store.connect()
                stores[client_id] = store

            async def client_loop(client_id: str) -> None:
                store = stores[client_id]
                queue = list(workload.sequences[client_id])
                depth = max(1, workload.pipeline_depth)

                async def worker() -> None:
                    while queue:
                        op = queue.pop(0)
                        if op.kind == "put":
                            await store.put(op.key, op.value)
                        else:
                            await store.get(op.key)

                await asyncio.gather(*(worker() for _ in range(depth)))

            started = time.monotonic()
            await asyncio.gather(*(client_loop(client_id) for client_id in clients))
            duration = time.monotonic() - started
            batch_stats = BatchStats()
            frames = 0
            stale = 0
            for store in stores.values():
                batch_stats.merge(store.batch_stats())
                frames += store.frames_total()
                stale += store.stale_replays
        finally:
            for store in stores.values():
                await store.close()
            await cluster.stop()

        histories = recorder.histories()
        result = KVRunResult(
            backend="asyncio",
            num_shards=len(shard_map),
            max_batch=max_batch,
            histories=histories,
            duration=duration,
            completed_ops=recorder.completed_operations,
            messages_sent=frames,
            batch_stats=batch_stats,
            num_groups=len(shard_map.groups),
            stale_replays=stale,
            resize=resize_info,
        )
        for history in histories.values():
            result.read_latencies.extend(
                op.latency for op in history.reads if op.latency is not None
            )
            result.write_latencies.extend(
                op.latency for op in history.writes if op.latency is not None
            )
        return result

    return run_sync(_run())
