"""The key-value store on the real asyncio TCP transport.

The same placement layout and shard-tagged batch frames as the simulator
backend, over real sockets:

* :class:`AsyncKVCluster` starts one :class:`~repro.asyncio_net.server.ReplicaServer`
  per *replica-group* server, each hosting a multiplexed
  :class:`~repro.kvstore.batching.BatchGroupServer` that serves every shard
  placed on its group.  The cluster is live: :meth:`AsyncKVCluster.resize`
  and :meth:`AsyncKVCluster.move_shard` rebalance the ring while clients
  keep operating -- metadata and register drain happen in one synchronous
  step on the event loop, and in-flight frames carrying old epoch tags
  bounce back to the clients.
* :class:`AsyncGroupClient` owns one connection per replica of one group and
  coalesces sub-requests submitted in the same event-loop tick (or up to
  ``max_batch``) into one batch frame per replica -- ``multi_get``/``multi_put``
  and pipelined workloads batch naturally, across all shards of the group.
* :class:`KVStore` is the client facade: ``await get/put/multi_get/multi_put``.
  On a stale-shard bounce it re-resolves the ring and replays the bounced
  round against the new owner group (round-trips are idempotent, so the
  per-key register generator never notices the migration).
* :class:`SyncKVStore` wraps a :class:`KVStore` for synchronous callers via a
  background event-loop thread.
"""

from __future__ import annotations

import asyncio
import logging
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.errors import ProtocolError
from ..core.operations import OpKind, new_op_id
from ..protocols.base import Broadcast, ClientLogic, OperationOutcome
from ..sim.messages import (
    BATCH_ACK_KIND,
    PROXY_ACK_KIND,
    PROXY_KIND,
    VIEW_PUSH_ACK_KIND,
    VIEW_PUSH_KIND,
    Message,
    ProxySubReply,
    ProxySubRequest,
    SubRequest,
    make_batch,
    make_proxy_ack,
    make_proxy_request,
    make_view_push,
    unpack_batch_ack,
    unpack_proxy_ack,
    unpack_proxy_request,
    unpack_view_push,
)
from ..asyncio_net.codec import read_frame, write_frame
from ..asyncio_net.server import ReplicaServer
from .batching import (
    MAX_STALE_RETRIES,
    BatchGroupServer,
    BatchStats,
    StaleShardError,
    is_stale_reply,
)
from .migration import (
    MigrationReport,
    apply_move_plan,
    apply_resize_plan,
    make_resize_trigger,
)
from .perkey import KVHistoryRecorder, PerKeyAtomicity, check_per_key_atomicity
from .placement import ReplicaGroup
from .proxy import (
    BroadcastReads,
    CachedShardView,
    ReadRoutingPolicy,
    attempt_scoped_id,
    make_proxy_kill_trigger,
    pick_one_proxy_per_site,
    plan_round,
)
from .sharding import ShardMap, ShardSpec
from .workload import KVRunResult, KVWorkload
from ._sync import LoopThread, run_sync

__all__ = ["AsyncKVCluster", "AsyncGroupClient", "AsyncShardClient",
           "AsyncProxyClient", "ProxyServer", "KVStore", "SyncKVStore",
           "RetryPolicy", "ProxyConnectionLost", "run_asyncio_kv_workload"]

logger = logging.getLogger(__name__)

#: How often a disconnected peer retries its connection, and how many times
#: an operation round retries over a transient outage before giving up --
#: together they bound the reconnect-and-replay window (~5 s) during a
#: replica kill/restart.  These are the *defaults* of :class:`RetryPolicy`;
#: pass a policy to shrink the window (tests do, so a kill/restart scenario
#: fails in well under a second instead of sleeping out five).
RECONNECT_INTERVAL = 0.05
MAX_TRANSIENT_RETRIES = 100

#: A proxy bounds each replica round-trip attempt.  A round whose frames all
#: left the socket successfully can still lose a targeted replica to a kill
#: before it acks (only possible with a restrictive read policy -- broadcast
#: rounds always have ``S - t`` live repliers); the timeout turns that silent
#: loss into a replay, and after MAX_ROUND_TIMEOUTS replays into an error
#: ack, instead of a client hanging forever.
PROXY_ROUND_TIMEOUT = 2.0
MAX_ROUND_TIMEOUTS = 5


@dataclass(frozen=True)
class RetryPolicy:
    """Timing knobs of the reconnect/replay/failover machinery.

    One policy is owned by the cluster and inherited by every group client,
    proxy and store built against it, so a whole deployment's failure windows
    scale together: ``reconnect_interval * max_transient_retries`` bounds how
    long a caller keeps replaying over a transient outage (the kill/restart
    window), and ``round_timeout * max_round_timeouts`` bounds how long a
    proxy waits on a silently-lost replica round before erroring the ack.
    """

    reconnect_interval: float = RECONNECT_INTERVAL
    max_transient_retries: int = MAX_TRANSIENT_RETRIES
    round_timeout: float = PROXY_ROUND_TIMEOUT
    max_round_timeouts: int = MAX_ROUND_TIMEOUTS

    @property
    def transient_window(self) -> float:
        """Upper bound on the reconnect-and-replay window, in seconds."""
        return self.reconnect_interval * self.max_transient_retries


DEFAULT_RETRY_POLICY = RetryPolicy()


class ProxyConnectionLost(ConnectionError):
    """The client's connection to its ingress proxy died mid-round.

    Distinct from the plain ``OSError`` of a replica-leg hiccup because the
    remedies differ: a replica outage is waited out (the endpoint is stable
    across kill/restart), while a dead proxy triggers *failover* -- the store
    re-dials the next proxy of its site, or falls back to direct replica
    connections, and replays the round under a fresh attempt scope.
    """


class AsyncKVCluster:
    """All group replicas of a :class:`ShardMap` listening on loopback TCP."""

    def __init__(
        self,
        shard_map: ShardMap,
        host: str = "127.0.0.1",
        service_overhead: float = 0.0,
        service_per_op: float = 0.0,
        retry_policy: Optional[RetryPolicy] = None,
        push_views: bool = True,
    ) -> None:
        self.shard_map = shard_map
        self.host = host
        self.service_overhead = service_overhead
        self.service_per_op = service_per_op
        self.retry_policy = retry_policy or DEFAULT_RETRY_POLICY
        self.push_views = push_views
        self.view_pushes_sent = 0
        self.replicas: Dict[str, ReplicaServer] = {}
        self.proxies: Dict[str, "ProxyServer"] = {}
        self.migrations: List[MigrationReport] = []
        self._logics: Dict[str, BatchGroupServer] = {}
        self._endpoints: Dict[str, Dict[str, Tuple[str, int]]] = {}
        self._proxy_rr = 0
        self._view_push_tasks: "set[asyncio.Task]" = set()

    async def start(self) -> None:
        for group in self.shard_map.groups.values():
            hosted = {
                spec.shard_id: spec.epoch
                for spec in self.shard_map.shards_on(group.group_id)
            }
            endpoints: Dict[str, Tuple[str, int]] = {}
            for server_id in group.servers:
                logic = BatchGroupServer(server_id, group.protocol, dict(hosted))
                replica = ReplicaServer(
                    logic,
                    host=self.host,
                    service_overhead=self.service_overhead,
                    service_per_op=self.service_per_op,
                )
                await replica.start()
                self.replicas[server_id] = replica
                self._logics[server_id] = logic
                endpoints[server_id] = (replica.host, replica.port)
            self._endpoints[group.group_id] = endpoints

    async def stop(self) -> None:
        for task in list(self._view_push_tasks):
            task.cancel()
        await asyncio.gather(*self._view_push_tasks, return_exceptions=True)
        self._view_push_tasks.clear()
        for proxy in self.proxies.values():
            await proxy.stop()
        self.proxies.clear()
        for replica in self.replicas.values():
            await replica.stop()
        self.replicas.clear()
        self._logics.clear()
        self._endpoints.clear()

    def endpoints_for(self, group_id: str) -> Dict[str, Tuple[str, int]]:
        return dict(self._endpoints[group_id])

    # -- ingress proxies ---------------------------------------------------------

    async def start_proxies(
        self,
        num_proxies: int = 1,
        read_policy: Optional[ReadRoutingPolicy] = None,
        max_batch: int = 64,
        site: Optional[str] = None,
    ) -> List[str]:
        """Start ``num_proxies`` site-local ingress proxies; returns their ids.

        Proxies are stateless, so they can be started (and pointed at) any
        time after :meth:`start`; each owns its own connections to every
        replica group and merges forwarded rounds across the client
        connections it accepts.  ``site`` tags the started proxies with a
        deployment site: failover (:meth:`proxy_candidates`) only re-dials
        proxies of the *same* site, so call once per site to model a
        multi-site ingress tier.  With no sites, all proxies form one.
        """
        started: List[str] = []
        for _ in range(num_proxies):
            proxy_id = f"p{len(self.proxies) + 1}"
            proxy = ProxyServer(
                proxy_id, self, read_policy=read_policy,
                max_batch=max_batch, host=self.host, site=site,
            )
            await proxy.start()
            self.proxies[proxy_id] = proxy
            started.append(proxy_id)
        return started

    def assign_proxy(self) -> str:
        """The next proxy id, round-robin (how ``use_proxy=True`` clients
        spread over the proxy tier)."""
        if not self.proxies:
            raise RuntimeError("no proxies started; call start_proxies() first")
        ids = list(self.proxies)
        proxy_id = ids[self._proxy_rr % len(ids)]
        self._proxy_rr += 1
        return proxy_id

    def proxy_endpoint(self, proxy_id: str) -> Tuple[str, int]:
        proxy = self.proxies[proxy_id]
        return (proxy.host, proxy.port)

    def proxy_candidates(self, proxy_id: str) -> List[str]:
        """Every proxy of ``proxy_id``'s site, starting with ``proxy_id``.

        This is the failover list a connecting store learns: when its
        current proxy dies it re-dials the next candidate, and when the list
        is exhausted it falls back to direct replica connections.
        """
        site = self.proxies[proxy_id].site
        same_site = [
            candidate_id
            for candidate_id, proxy in self.proxies.items()
            if proxy.site == site
        ]
        start = same_site.index(proxy_id)
        return same_site[start:] + same_site[:start]

    async def kill_proxy(self, proxy_id: str) -> None:
        """Kill one ingress proxy: stop listening and sever its connections.

        Mirrors :meth:`kill_server`.  Stores connected to it observe the
        severed connection and fail over to another proxy of the same site
        (or to direct replica connections), replaying their in-flight rounds
        under fresh attempt scopes; the replicas never notice.
        """
        await self.proxies[proxy_id].stop()

    async def restart_proxy(self, proxy_id: str) -> None:
        """Restart a killed proxy on its original port.

        Proxies are stateless, so a restart is just a rebind -- plus a view
        refresh, because rebalances during the outage are invisible to a
        process that was not there to receive their pushes."""
        proxy = self.proxies[proxy_id]
        if not proxy.running:
            await proxy.start()
            proxy.view.refresh()

    # -- replica kill / restart --------------------------------------------------

    async def kill_server(self, server_id: str) -> None:
        """Kill one replica: stop listening and sever its live connections.

        Clients and proxies ride it out: sends to the dead replica fail (a
        quorum of ``S - t`` among the survivors still completes every
        round), their receive loops go into reconnect, and rounds that lost
        too many sends are replayed once a quorum is reachable again.
        """
        await self.replicas[server_id].stop()

    async def restart_server(self, server_id: str) -> None:
        """Restart a killed replica on its original port with its surviving
        state (the crash-recovery model: register state is stable storage).
        Reconnecting clients resume using it transparently."""
        replica = self.replicas[server_id]
        if not replica.running:
            await replica.start()

    # -- live control plane ----------------------------------------------------

    @property
    def server_logics(self) -> Dict[str, BatchGroupServer]:
        return dict(self._logics)

    def resize(self, new_num_shards: int) -> MigrationReport:
        """Live-resize the ring: metadata + register drain, one loop step.

        Synchronous on purpose: with no ``await`` between the metadata flip
        and the register drain, no frame can be processed half-way through
        the cutover.  Call from the event loop that owns the cluster.
        """
        plan = self.shard_map.resize(new_num_shards)
        report = apply_resize_plan(plan, self.shard_map, self._logics)
        self.migrations.append(report)
        self._push_view_update()
        return report

    def move_shard(self, shard_id: str, group_id: str) -> MigrationReport:
        """Live-move one shard onto another group (same atomicity note)."""
        plan = self.shard_map.move_shard(shard_id, group_id)
        report = apply_move_plan(plan, self._logics)
        self.migrations.append(report)
        self._push_view_update()
        return report

    # -- view push (control plane -> proxies) ------------------------------------

    def _push_view_update(self) -> None:
        """Push the fresh shard-map view to every running proxy.

        Fired by :meth:`resize`/:meth:`move_shard`.  The cutover itself is
        synchronous; the push rides a background task because it crosses the
        wire (one ``view-push`` frame per proxy over TCP).  Until a proxy's
        push lands, its stale routes bounce off the epoch fence exactly as
        before -- the push removes the steady-state replays, the fence keeps
        the race window safe.
        """
        if not self.push_views or not self.proxies:
            return
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:  # no loop: nothing can be in flight to push to
            return
        view = self.shard_map.view_snapshot()
        task = loop.create_task(self._push_views(view))
        self._view_push_tasks.add(task)
        task.add_done_callback(self._view_push_tasks.discard)

    async def _push_views(self, view: Dict[str, Any]) -> None:
        for proxy_id, proxy in list(self.proxies.items()):
            if not proxy.running:
                continue  # killed: restart_proxy() refreshes its view anyway
            try:
                reader, writer = await asyncio.open_connection(proxy.host, proxy.port)
                try:
                    await write_frame(
                        writer, make_view_push("control-plane", proxy_id, view)
                    )
                    await read_frame(reader)  # proxy acks once the view is applied
                    self.view_pushes_sent += 1
                finally:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except OSError:  # pragma: no cover - teardown race
                        pass
            except (OSError, asyncio.IncompleteReadError):
                continue  # proxy died mid-push; the bounce fence covers it

    async def flush_view_pushes(self) -> None:
        """Wait for every outstanding view push to be applied (or fail)."""
        tasks = list(self._view_push_tasks)
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)


@dataclass
class _PendingRound:
    """One round-trip of one operation, awaiting its quorum of sub-replies."""

    op_id: str
    round_trip: int
    key: str
    shard: str
    epoch: int
    request: Broadcast
    wait_for: int
    sender: str = ""
    targets: Optional[Tuple[str, ...]] = None
    replies: List[Message] = field(default_factory=list)
    ready: asyncio.Event = field(default_factory=asyncio.Event)
    error: Optional[BaseException] = None

    def fail(self, exc: BaseException) -> None:
        self.error = exc
        self.ready.set()


class AsyncGroupClient:
    """Connections to one replica group, with batch coalescing.

    Sub-requests submitted while the event loop is busy (same tick) ride the
    same batch frame; a frame is also cut as soon as ``max_batch``
    sub-requests are pending.  All shards hosted by the group share the same
    frames -- coalescing improves as shards-per-group grows.  When a proxy
    owns this client, sub-requests from *different* downstream clients all
    funnel through it, which is exactly the cross-client merge of the
    ingress tier.

    A lost connection goes into reconnect-and-replay: the receive loop's
    death schedules periodic redial of the replica's (stable) endpoint,
    sends to the dead replica fail fast and count against each round's
    quorum, and callers replay rounds that could not reach a quorum.
    """

    def __init__(
        self,
        client_id: str,
        group: ReplicaGroup,
        endpoints: Dict[str, Tuple[str, int]],
        max_batch: int = 8,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.client_id = client_id
        self.group = group
        self.endpoints = dict(endpoints)
        self.max_batch = max_batch
        self.retry_policy = retry_policy or DEFAULT_RETRY_POLICY
        self.batch_stats = BatchStats()
        self._writers: Dict[str, asyncio.StreamWriter] = {}
        self._receive_tasks: "set[asyncio.Task]" = set()
        self._send_tasks: "set[asyncio.Task]" = set()
        self._reconnect_tasks: "set[asyncio.Task]" = set()
        self._queue: List[_PendingRound] = []
        self._rounds: Dict[Tuple[str, int], _PendingRound] = {}
        self._flush_scheduled = False
        self._closing = False

    @property
    def quorum_size(self) -> int:
        return self.group.quorum_size

    @property
    def frames_sent(self) -> int:
        return self.batch_stats.frames_sent

    @property
    def frames_received(self) -> int:
        return self.batch_stats.frames_received

    # -- connection management -------------------------------------------------

    async def connect(self) -> None:
        for server_id in self.endpoints:
            try:
                await self._open(server_id)
            except OSError:
                # The replica is down right now (connecting mid-kill is the
                # norm on the failover-to-direct path).  Rounds complete on
                # the surviving quorum; keep redialing the stable endpoint
                # so the replica is folded back in when it returns.
                self._schedule_reconnect(server_id)

    async def _open(self, server_id: str) -> None:
        host, port = self.endpoints[server_id]
        reader, writer = await asyncio.open_connection(host, port)
        stale = self._writers.get(server_id)
        if stale is not None and stale is not writer:
            stale.close()  # release the dead transport a redial replaces
        self._writers[server_id] = writer
        task = asyncio.create_task(self._receive_loop(server_id, reader))
        self._receive_tasks.add(task)
        task.add_done_callback(self._receive_tasks.discard)

    def _schedule_reconnect(self, server_id: str) -> None:
        if self._closing:
            return
        task = asyncio.create_task(self._reconnect(server_id))
        self._reconnect_tasks.add(task)
        task.add_done_callback(
            lambda done, sid=server_id: self._reconnect_finished(sid, done)
        )

    def _reconnect_finished(self, server_id: str, task: asyncio.Task) -> None:
        """Observe a finished redial task instead of discarding it blindly.

        A redial that dies on an *unexpected* exception (anything outside
        the ``OSError`` family the loop retries on) used to be swallowed by
        the bare-discard callback: the server was never redialed again, and
        rounds counting on it hung past the reconnect window with no trace.
        Log the terminal failure and fail the rounds still waiting on that
        server, so their callers' replay logic takes over immediately.
        """
        self._reconnect_tasks.discard(task)
        if task.cancelled():
            return
        exc = task.exception()
        if exc is None:
            return
        logger.warning(
            "%s: reconnect to %s failed terminally: %r",
            self.client_id, server_id, exc,
        )
        for pending in list(self._rounds.values()):
            eligible = (
                pending.targets
                if pending.targets is not None
                else tuple(self.endpoints)
            )
            if server_id in eligible and len(pending.replies) < pending.wait_for:
                pending.fail(exc)

    async def _reconnect(self, server_id: str) -> None:
        """Redial a dead replica until it is back (or this client closes).

        The endpoint is stable across kill/restart (the replica rebinds its
        port), so reconnecting is pure persistence; in-flight rounds are not
        touched -- they either complete on the surviving quorum or get
        replayed by their caller.
        """
        while not self._closing:
            await asyncio.sleep(self.retry_policy.reconnect_interval)
            if self._closing:
                return
            try:
                await self._open(server_id)
                return
            except OSError:
                continue

    async def close(self) -> None:
        self._closing = True
        tasks = (
            list(self._receive_tasks)
            + list(self._send_tasks)
            + list(self._reconnect_tasks)
        )
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        self._receive_tasks.clear()
        self._send_tasks.clear()
        self._reconnect_tasks.clear()
        for writer in self._writers.values():
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):  # pragma: no cover
                pass
        self._writers.clear()

    # -- the round-trip primitive ----------------------------------------------

    async def round_trip(
        self,
        key: str,
        shard: str,
        epoch: int,
        op_id: str,
        round_trip: int,
        request: Broadcast,
        targets: Optional[Sequence[str]] = None,
        sender: Optional[str] = None,
    ) -> List[Message]:
        """Broadcast one shard-tagged sub-request (batched), await its quorum.

        ``targets`` restricts the round to a subset of the group's replicas
        (how a proxy's read-routing policy lands on the wire); ``None``
        broadcasts.  ``sender`` overrides the sub-message's sender identity
        -- a proxy forwards its downstream client's id so the protocols'
        per-client bookkeeping is preserved end to end.

        Raises :class:`StaleShardError` when the group bounces the round
        because the (shard, epoch) tag went stale mid-flight -- the caller
        re-resolves the ring and replays the round at the new owner.
        """
        wait_for = request.wait_for if request.wait_for is not None else self.quorum_size
        pending = _PendingRound(
            op_id=op_id,
            round_trip=round_trip,
            key=key,
            shard=shard,
            epoch=epoch,
            request=request,
            wait_for=wait_for,
            sender=sender if sender is not None else self.client_id,
            targets=tuple(targets) if targets is not None else None,
        )
        self._rounds[(op_id, round_trip)] = pending
        self._submit(pending)
        try:
            await pending.ready.wait()
        finally:
            self._rounds.pop((op_id, round_trip), None)
        # During a cutover some replicas may serve the round while others
        # bounce it; a reached quorum wins over a late stale bounce.
        if pending.error is not None and len(pending.replies) < wait_for:
            raise pending.error
        return list(pending.replies[:wait_for])

    def _submit(self, pending: _PendingRound) -> None:
        self._queue.append(pending)
        if len(self._queue) >= self.max_batch:
            self._flush()
        elif not self._flush_scheduled:
            self._flush_scheduled = True
            asyncio.get_running_loop().call_soon(self._flush)

    def _flush(self) -> None:
        self._flush_scheduled = False
        if not self._queue:
            return
        batch, self._queue = self._queue[: self.max_batch], self._queue[self.max_batch :]
        if self._queue and not self._flush_scheduled:
            self._flush_scheduled = True
            asyncio.get_running_loop().call_soon(self._flush)
        self.batch_stats.record(len(batch))
        task = asyncio.create_task(self._send_batch(batch))
        self._send_tasks.add(task)
        task.add_done_callback(self._send_tasks.discard)

    async def _send_batch(self, batch: List[_PendingRound]) -> None:
        async def send_to(server_id: str, writer: asyncio.StreamWriter) -> None:
            subs = [
                SubRequest(
                    key=pending.key,
                    message=Message(
                        sender=pending.sender,
                        receiver=server_id,
                        kind=pending.request.kind,
                        payload=pending.request.payload_for(server_id),
                        op_id=pending.op_id,
                        round_trip=pending.round_trip,
                    ),
                    shard=pending.shard,
                    epoch=pending.epoch,
                )
                for pending in batch
                if pending.targets is None or server_id in pending.targets
            ]
            if not subs:
                return
            if writer.is_closing():
                # The replica is down and its redial has not landed yet;
                # fail this send fast instead of writing into a dead socket.
                raise ConnectionResetError(f"connection to {server_id} is down")
            await write_frame(writer, make_batch(self.client_id, server_id, subs))
            self.batch_stats.record_frames(sent=1)

        # Writes go out concurrently so one backpressured replica cannot
        # delay the frames for the rest of the quorum.
        servers = list(self._writers.items())
        results = await asyncio.gather(
            *(send_to(server_id, writer) for server_id, writer in servers),
            return_exceptions=True,
        )
        reached = {
            server_id
            for (server_id, _), result in zip(servers, results)
            if not isinstance(result, BaseException)
        }
        first_failure = next(
            (r for r in results if isinstance(r, BaseException)), None
        )
        if first_failure is None and len(self._writers) == len(self.endpoints):
            return
        # A round survives failed sends to a minority of its targets (quorum
        # still reachable); when too few frames went out -- a dead replica
        # mid-kill, a replica still unconnected (no writer yet, so never
        # even attempted), or none at all when the frame exceeds
        # MAX_FRAME_BYTES -- fail the waiters instead of letting them block
        # forever, so the caller's replay logic takes over.
        failure = first_failure or ConnectionResetError(
            "not enough replica connections for a quorum"
        )
        for pending in batch:
            eligible = (
                pending.targets
                if pending.targets is not None
                else tuple(self.endpoints)
            )
            successes = sum(1 for server_id in eligible if server_id in reached)
            if successes < pending.wait_for:
                pending.fail(failure)

    async def _receive_loop(self, server_id: str, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                message = await read_frame(reader)
                self.batch_stats.record_frames(received=1)
                if message.kind != BATCH_ACK_KIND:
                    continue
                for _key, sub in unpack_batch_ack(message):
                    if sub is None:
                        continue
                    pending = self._rounds.get((sub.op_id, sub.round_trip))
                    if pending is None:
                        continue  # straggler from a completed round-trip
                    if is_stale_reply(sub):
                        pending.fail(
                            StaleShardError(
                                pending.shard,
                                pending.epoch,
                                sub.payload.get("epoch"),
                            )
                        )
                        continue
                    pending.replies.append(sub)
                    if len(pending.replies) >= pending.wait_for:
                        pending.ready.set()
        except (asyncio.IncompleteReadError, ConnectionResetError, OSError):
            # The replica died (or was killed): keep redialing its endpoint
            # so a restarted replica is picked back up transparently.
            self._schedule_reconnect(server_id)
        except asyncio.CancelledError:
            return


#: Backwards-compatible alias from before placement was its own layer.
AsyncShardClient = AsyncGroupClient


class ProxyServer:
    """One site-local ingress proxy over TCP (:mod:`repro.kvstore.proxy`).

    Accepts client connections speaking ``"proxy"``/``"proxy-ack"`` frames
    and drives each forwarded round against the owner replica group through
    its own :class:`AsyncGroupClient` per group.  Because *every* client
    connection's rounds funnel into those few group clients, sub-requests
    from different clients coalesce into shared replica frames -- the
    cross-client merge.  The proxy owns shard resolution (a
    :class:`~repro.kvstore.proxy.CachedShardView` refreshed on stale-epoch
    bounces, replaying transparently), applies its
    :class:`~repro.kvstore.proxy.ReadRoutingPolicy` to pick read targets,
    and forwards each downstream client's identity as the sub-message
    sender so the register protocols' per-client bookkeeping is intact.
    """

    def __init__(
        self,
        proxy_id: str,
        cluster: AsyncKVCluster,
        read_policy: Optional[ReadRoutingPolicy] = None,
        max_batch: int = 64,
        host: str = "127.0.0.1",
        port: int = 0,
        site: Optional[str] = None,
    ) -> None:
        self.proxy_id = proxy_id
        self.cluster = cluster
        self.site = site
        self.view = CachedShardView(cluster.shard_map)
        self.read_policy = read_policy or BroadcastReads()
        self.max_batch = max_batch
        self.host = host
        self.port = port
        self.retry_policy = cluster.retry_policy
        self.stale_replays = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._group_clients: Dict[str, AsyncGroupClient] = {}
        self._retired_stats = BatchStats()
        self._connections: "set" = set()
        self._serve_tasks: "set[asyncio.Task]" = set()
        self._attempts = 0

    @property
    def running(self) -> bool:
        return self._server is not None

    async def start(self) -> None:
        """(Re)start the proxy; after a kill, the same port is rebound so
        the cluster's advertised proxy endpoint stays stable."""
        if self.running:
            return
        for group in self.cluster.shard_map.groups.values():
            group_client = AsyncGroupClient(
                self.proxy_id,
                group,
                self.cluster.endpoints_for(group.group_id),
                max_batch=self.max_batch,
                retry_policy=self.retry_policy,
            )
            await group_client.connect()
            self._group_clients[group.group_id] = group_client
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._serve_tasks):
            task.cancel()
        await asyncio.gather(*self._serve_tasks, return_exceptions=True)
        self._serve_tasks.clear()
        for writer in list(self._connections):
            writer.close()
        for group_client in self._group_clients.values():
            # Keep the retired connections' frame accounting: a killed
            # proxy's pre-kill traffic was real wire cost and must survive
            # into the run totals (each frame still counted exactly once).
            self._retired_stats.merge(group_client.batch_stats)
            await group_client.close()
        self._group_clients.clear()

    def batch_stats(self) -> BatchStats:
        """Replica-side merging/frame statistics across all group clients
        (including connections retired by an earlier kill/restart)."""
        merged = BatchStats()
        merged.merge(self._retired_stats)
        for group_client in self._group_clients.values():
            merged.merge(group_client.batch_stats)
        return merged

    # -- client connections ------------------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        self._connections.add(writer)
        # One writer lock per connection: ack frames for rounds completing
        # concurrently must not interleave their bytes.
        lock = asyncio.Lock()
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionResetError, OSError):
                    break
                except asyncio.CancelledError:
                    break  # loop teardown raced this connection's EOF
                if frame.kind == VIEW_PUSH_KIND:
                    # Control-plane push: adopt the fresh view, then ack so
                    # the pusher knows routing is current before it returns.
                    self.view.apply_push(unpack_view_push(frame))
                    async with lock:
                        await write_frame(
                            writer,
                            Message(
                                sender=self.proxy_id,
                                receiver=frame.sender,
                                kind=VIEW_PUSH_ACK_KIND,
                                payload={"ring_epoch": self.view.ring_epoch},
                            ),
                        )
                    continue
                if frame.kind != PROXY_KIND:
                    continue
                for sub in unpack_proxy_request(frame):
                    task = asyncio.create_task(
                        self._serve(frame.sender, sub, writer, lock)
                    )
                    self._serve_tasks.add(task)
                    task.add_done_callback(self._serve_tasks.discard)
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError, asyncio.CancelledError):
                pass

    # -- driving one forwarded round ---------------------------------------------

    async def _serve(
        self,
        client: str,
        sub: ProxySubRequest,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        replies: Sequence[Message] = ()
        error: Optional[str] = None
        stale_retries = 0
        transient_retries = 0
        timeouts = 0
        retry = self.retry_policy
        while True:
            plan = plan_round(self.view, self.read_policy, self.proxy_id, sub)
            group_client = self._group_clients[plan.route.group_id]
            self._attempts += 1
            request = Broadcast(
                kind=sub.kind,
                payload=sub.payload,
                wait_for=plan.wait_for,
                per_server_payload=sub.per_server or {},
            )
            try:
                replies = await asyncio.wait_for(
                    group_client.round_trip(
                        sub.key,
                        plan.route.shard_id,
                        plan.route.epoch,
                        attempt_scoped_id(sub.op_id, self._attempts),
                        sub.round_trip,
                        request,
                        targets=plan.targets,
                        sender=client,
                    ),
                    timeout=retry.round_timeout,
                )
                break
            except StaleShardError:
                stale_retries += 1
                self.stale_replays += 1
                if stale_retries > MAX_STALE_RETRIES:
                    error = (
                        f"shard map never converged after {stale_retries} "
                        "stale replays"
                    )
                    break
                self.view.refresh()
            except asyncio.TimeoutError:
                # A targeted replica died after the frame left the socket
                # (restrictive read policies only); replay the idempotent
                # round -- the redial may have landed by now.
                timeouts += 1
                if timeouts > retry.max_round_timeouts:
                    error = (
                        f"round got no quorum within "
                        f"{timeouts * retry.round_timeout:.0f}s; with a "
                        "restrictive read policy, give it spare >= the "
                        "fault budget to ride out crashed replicas"
                    )
                    break
            except (OSError, EOFError) as exc:
                transient_retries += 1
                if transient_retries > retry.max_transient_retries:
                    error = f"replica quorum unreachable: {exc}"
                    break
                await asyncio.sleep(retry.reconnect_interval)
            except Exception as exc:  # noqa: BLE001 - never leave the client hanging
                # Anything unexpected (an oversized merged frame raising
                # FrameError, a codec bug, ...) must still produce an error
                # ack: a swallowed serve-task exception would leave the
                # downstream client awaiting a reply that never comes.
                error = f"{type(exc).__name__}: {exc}"
                break
        sub_reply = ProxySubReply(
            op_id=sub.op_id,
            round_trip=sub.round_trip,
            replies=tuple(replies),
            error=error,
        )
        try:
            async with lock:
                await write_frame(
                    writer, make_proxy_ack(self.proxy_id, client, [sub_reply])
                )
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # the client went away; nothing to deliver the round to


@dataclass
class _PendingProxyRound:
    """One round forwarded to the proxy, awaiting its proxy-ack."""

    sub: ProxySubRequest
    replies: Tuple[Message, ...] = ()
    error: Optional[str] = None
    ready: asyncio.Event = field(default_factory=asyncio.Event)
    exception: Optional[BaseException] = None

    def fail(self, exc: BaseException) -> None:
        self.exception = exc
        self.ready.set()


class AsyncProxyClient:
    """A client's single connection to its site-local ingress proxy.

    Replaces the per-group fan-out of :class:`AsyncGroupClient`: every round
    of every operation -- regardless of owner group -- rides one connection,
    coalesced per event-loop tick into ``"proxy"`` frames.  The proxy sends
    each round back as one ``"proxy-ack"`` carrying the full quorum of
    replica replies.
    """

    def __init__(
        self,
        client_id: str,
        proxy_id: str,
        host: str,
        port: int,
        max_batch: int = 8,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.client_id = client_id
        self.proxy_id = proxy_id
        self.host = host
        self.port = port
        self.max_batch = max_batch
        self.batch_stats = BatchStats()
        #: Set (to the underlying error) once the proxy connection is known
        #: dead; every subsequent round fails fast with
        #: :class:`ProxyConnectionLost` so the owning store can fail over.
        self.lost: Optional[BaseException] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._receive_task: Optional[asyncio.Task] = None
        self._send_tasks: "set[asyncio.Task]" = set()
        self._queue: List[Tuple[Tuple[str, int], _PendingProxyRound]] = []
        self._rounds: Dict[Tuple[str, int], _PendingProxyRound] = {}
        self._flush_scheduled = False

    async def connect(self) -> None:
        reader, self._writer = await asyncio.open_connection(self.host, self.port)
        self._receive_task = asyncio.create_task(self._receive_loop(reader))

    def _mark_lost(self, exc: BaseException) -> None:
        if self.lost is None:
            self.lost = exc
        for pending in list(self._rounds.values()):
            pending.fail(ProxyConnectionLost(f"proxy {self.proxy_id} lost: {exc!r}"))

    async def close(self) -> None:
        tasks = list(self._send_tasks)
        if self._receive_task is not None:
            tasks.append(self._receive_task)
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        self._send_tasks.clear()
        self._receive_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):  # pragma: no cover
                pass
            self._writer = None

    async def round_trip(
        self,
        key: str,
        op_kind: str,
        op_id: str,
        round_trip: int,
        request: Broadcast,
    ) -> List[Message]:
        """Forward one round through the proxy and await its quorum replies.

        Raises :class:`ProxyConnectionLost` (immediately once the connection
        is known dead, or when it dies mid-round) so the caller can fail
        over to another proxy and replay under a fresh attempt scope.
        """
        if self.lost is not None:
            raise ProxyConnectionLost(
                f"proxy {self.proxy_id} lost: {self.lost!r}"
            )
        sub = ProxySubRequest(
            key=key,
            op_kind=op_kind,
            kind=request.kind,
            payload=request.payload,
            op_id=op_id,
            round_trip=round_trip,
            wait_for=request.wait_for,
            per_server=request.per_server_payload or None,
        )
        pending = _PendingProxyRound(sub=sub)
        round_key = (op_id, round_trip)
        self._rounds[round_key] = pending
        self._submit(round_key, pending)
        try:
            await pending.ready.wait()
        finally:
            self._rounds.pop(round_key, None)
        if pending.exception is not None:
            raise pending.exception
        if pending.error is not None:
            raise ProtocolError(
                f"proxy failed operation {op_id}: {pending.error}"
            )
        return list(pending.replies)

    def _submit(self, round_key, pending: _PendingProxyRound) -> None:
        self._queue.append((round_key, pending))
        if len(self._queue) >= self.max_batch:
            self._flush()
        elif not self._flush_scheduled:
            self._flush_scheduled = True
            asyncio.get_running_loop().call_soon(self._flush)

    def _flush(self) -> None:
        self._flush_scheduled = False
        if not self._queue:
            return
        batch, self._queue = self._queue[: self.max_batch], self._queue[self.max_batch :]
        if self._queue and not self._flush_scheduled:
            self._flush_scheduled = True
            asyncio.get_running_loop().call_soon(self._flush)
        self.batch_stats.record(len(batch))
        task = asyncio.create_task(self._send_batch(batch))
        self._send_tasks.add(task)
        task.add_done_callback(self._send_tasks.discard)

    async def _send_batch(self, batch) -> None:
        frame = make_proxy_request(
            self.client_id, self.proxy_id, [pending.sub for _, pending in batch]
        )
        try:
            if self._writer is None or self._writer.is_closing():
                raise ConnectionResetError(
                    f"connection to proxy {self.proxy_id} is down"
                )
            await write_frame(self._writer, frame)
            self.batch_stats.record_frames(sent=1)
        except (ConnectionResetError, BrokenPipeError, EOFError, OSError) as exc:
            # The proxy itself is gone: flag the whole connection so every
            # round (this batch and all future ones) fails over promptly.
            self._mark_lost(exc)
            for _, pending in batch:
                pending.fail(
                    ProxyConnectionLost(f"proxy {self.proxy_id} lost: {exc!r}")
                )
        except Exception as exc:  # noqa: BLE001 - every send error fails the batch
            # Not a connection death (e.g. an oversized frame): fail these
            # rounds with the real error, but keep the connection usable.
            for _, pending in batch:
                pending.fail(exc)

    async def _receive_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                message = await read_frame(reader)
                self.batch_stats.record_frames(received=1)
                if message.kind != PROXY_ACK_KIND:
                    continue
                for sub_reply in unpack_proxy_ack(message):
                    pending = self._rounds.get(
                        (sub_reply.op_id, sub_reply.round_trip)
                    )
                    if pending is None:
                        continue  # straggler from a completed round-trip
                    pending.replies = tuple(sub_reply.replies)
                    pending.error = sub_reply.error
                    pending.ready.set()
        except (asyncio.IncompleteReadError, ConnectionResetError, OSError) as exc:
            # The proxy vanished; fail every waiter with the failover signal
            # rather than hanging (the store re-dials a sibling proxy).
            self._mark_lost(exc)
        except asyncio.CancelledError:
            return


class KVStore:
    """The async client facade of the sharded store.

    One store instance represents one logical client: operations on the same
    key are serialized per key (keeping per-key sub-histories well-formed)
    while operations on different keys run concurrently and share batch
    rounds whenever their shards live on the same replica group.  Rounds
    bounced by the epoch fence during a live resize/move are transparently
    replayed against the key's new owner.

    With ``use_proxy`` the store opens *one* connection -- to a site-local
    ingress proxy started via :meth:`AsyncKVCluster.start_proxies` -- instead
    of one per replica; pass ``True`` to be assigned a proxy round-robin or
    a proxy id to pick one (e.g. the client's own site).  The proxy then
    owns shard resolution, read routing and stale-epoch replay, and merges
    this store's rounds with other clients' into shared replica frames.

    The proxy connection is *fault-tolerant*: at connect time the store
    learns the full proxy list of its proxy's site
    (:meth:`AsyncKVCluster.proxy_candidates`), and when the connection dies
    -- the proxy crashed, was killed via :meth:`AsyncKVCluster.kill_proxy`,
    or the network dropped it -- the store re-dials the next candidate and
    replays its in-flight rounds.  Every round forwarded through a proxy is
    scoped by the store's *failover generation*
    (:func:`~repro.kvstore.proxy.attempt_scoped_id`), so a straggler reply
    relayed by the previous proxy can never be counted into a quorum
    assembled through the next one.  When the site's proxies are exhausted
    the store falls back to direct replica connections and keeps operating.
    """

    def __init__(
        self,
        cluster: AsyncKVCluster,
        client_id: str = "kv1",
        max_batch: int = 8,
        recorder: Optional[KVHistoryRecorder] = None,
        use_proxy: Union[bool, str, None] = None,
    ) -> None:
        self.cluster = cluster
        self.client_id = client_id
        self.max_batch = max_batch
        base = time.monotonic()
        self.recorder = recorder or KVHistoryRecorder(lambda: time.monotonic() - base)
        self.stale_replays = 0
        self.proxy_failovers = 0
        self.completion_hook: Optional[Any] = None
        self.use_proxy = use_proxy
        self.retry_policy = cluster.retry_policy
        self._proxy_client: Optional[AsyncProxyClient] = None
        self._proxy_candidates: List[str] = []
        self._proxy_cursor = 0
        self._proxy_generation = 0
        self._failover_lock = asyncio.Lock()
        self._retired_stats = BatchStats()
        self._group_clients: Dict[str, AsyncGroupClient] = {}
        self._key_locks: Dict[str, asyncio.Lock] = {}
        self._readers: Dict[str, ClientLogic] = {}
        self._writers: Dict[str, ClientLogic] = {}
        self._logic_homes: Dict[str, str] = {}

    async def connect(self) -> None:
        if self.use_proxy:
            proxy_id = (
                self.cluster.assign_proxy()
                if self.use_proxy is True
                else str(self.use_proxy)
            )
            self._proxy_candidates = self.cluster.proxy_candidates(proxy_id)
            self._proxy_cursor = 0
            await self._dial_proxy(proxy_id)
            return
        await self._connect_direct()

    async def _dial_proxy(self, proxy_id: str) -> None:
        host, port = self.cluster.proxy_endpoint(proxy_id)
        client = AsyncProxyClient(
            self.client_id, proxy_id, host, port, max_batch=self.max_batch
        )
        await client.connect()
        self._proxy_client = client

    async def _connect_direct(self) -> None:
        # Idempotent per group (not all-or-nothing): the failover path may
        # land here while a replica is also down, and a partial first pass
        # must not wedge the store -- missing groups are retried on the
        # next call, connected ones are kept.
        for group in self.cluster.shard_map.groups.values():
            if group.group_id in self._group_clients:
                continue
            client = AsyncGroupClient(
                self.client_id,
                group,
                self.cluster.endpoints_for(group.group_id),
                max_batch=self.max_batch,
                retry_policy=self.retry_policy,
            )
            await client.connect()
            self._group_clients[group.group_id] = client

    async def _handle_proxy_loss(self, lost_client: AsyncProxyClient) -> None:
        """Fail over after ``lost_client`` died: next proxy, else direct.

        Many concurrent operations observe the same dead connection; the
        lock plus the identity check make the failover single-flight -- the
        first caller moves the store, the rest see it already moved and just
        replay.  Advancing ``_proxy_generation`` before any replay is what
        gives the replays fresh attempt-scoped ids.
        """
        async with self._failover_lock:
            if self._proxy_client is not lost_client:
                return  # another operation already failed this client over
            self.proxy_failovers += 1
            self._proxy_generation += 1
            self._proxy_client = None
            self._retired_stats.merge(lost_client.batch_stats)
            await lost_client.close()
            while self._proxy_cursor + 1 < len(self._proxy_candidates):
                self._proxy_cursor += 1
                candidate = self._proxy_candidates[self._proxy_cursor]
                try:
                    await self._dial_proxy(candidate)
                    return
                except OSError:
                    continue  # candidate is dead too; keep walking the site
            # The site's proxy list is exhausted: direct replica connections.
            await self._connect_direct()

    async def close(self) -> None:
        if self._proxy_client is not None:
            await self._proxy_client.close()
            self._proxy_client = None
        for client in self._group_clients.values():
            await client.close()
        self._group_clients.clear()

    # -- operations -------------------------------------------------------------

    async def put(self, key: str, value: Any) -> OperationOutcome:
        """Write ``value`` to ``key`` through the key's register."""
        return await self._run_op(OpKind.WRITE, key, value)

    async def get(self, key: str) -> Any:
        """Read ``key``; returns the value (``None`` if never written)."""
        outcome = await self._run_op(OpKind.READ, key)
        return outcome.value

    async def multi_get(self, keys: Sequence[str]) -> Dict[str, Any]:
        """Read many keys concurrently (same-group keys share batch rounds)."""
        values = await asyncio.gather(*(self.get(key) for key in keys))
        return dict(zip(keys, values))

    async def multi_put(self, items: Mapping[str, Any]) -> None:
        """Write many keys concurrently (same-group keys share batch rounds)."""
        pairs = list(items.items())
        await asyncio.gather(*(self.put(key, value) for key, value in pairs))

    # -- internals --------------------------------------------------------------

    def _logic_for(self, kind: OpKind, key: str, spec: ShardSpec) -> ClientLogic:
        # Cached per-key logic was built against one group's server list;
        # rebuild when a move re-homed the shard (fresh readers/writers are
        # always safe to introduce for every protocol in this library).
        if self._logic_homes.get(key) != spec.group.group_id:
            self._logic_homes[key] = spec.group.group_id
            self._readers.pop(key, None)
            self._writers.pop(key, None)
        cache = self._writers if kind is OpKind.WRITE else self._readers
        logic = cache.get(key)
        if logic is None:
            if kind is OpKind.WRITE:
                logic = spec.protocol.make_writer(self.client_id)
            else:
                logic = spec.protocol.make_reader(self.client_id)
            cache[key] = logic
        return logic

    def _resolve(self, key: str) -> Tuple[ShardSpec, AsyncGroupClient]:
        spec = self.cluster.shard_map.shard_for(key)
        group_client = self._group_clients.get(spec.group.group_id)
        if group_client is None:
            raise RuntimeError("KVStore is not connected; call connect() first")
        return spec, group_client

    async def _run_op(self, kind: OpKind, key: str, value: Any = None) -> OperationOutcome:
        if self._proxy_client is None and not self.use_proxy:
            spec, _ = self._resolve(key)
        else:
            spec = self.cluster.shard_map.shard_for(key)
        lock = self._key_locks.setdefault(key, asyncio.Lock())
        async with lock:
            op_id = new_op_id(f"{self.client_id}-{kind.value}")
            self.recorder.record_invocation(key, op_id, self.client_id, kind, value=value)
            logic = self._logic_for(kind, key, spec)
            generator = (
                logic.write_protocol(value) if kind is OpKind.WRITE else logic.read_protocol()
            )
            round_trip = 0
            stale_retries = 0
            transient_retries = 0
            try:
                request = next(generator)
                while True:
                    round_trip += 1
                    try:
                        proxy_client = self._proxy_client
                        if proxy_client is None and self.use_proxy and not self._group_clients:
                            # A failover is mid-flight on another operation;
                            # queue behind it, then route this round through
                            # whatever ingress it settled on.
                            async with self._failover_lock:
                                pass
                            continue
                        if proxy_client is not None:
                            # The proxy owns resolution, routing, and
                            # stale-epoch replay for this round.  The op id
                            # is scoped by the failover generation so rounds
                            # replayed through a *different* proxy can never
                            # mix straggler replies across proxies.
                            replies = await proxy_client.round_trip(
                                key,
                                kind.value,
                                attempt_scoped_id(op_id, self._proxy_generation),
                                round_trip,
                                request,
                            )
                        else:
                            # Re-resolve every round: a live resize/move
                            # between rounds re-routes the rest of the op.
                            spec, group_client = self._resolve(key)
                            replies = await group_client.round_trip(
                                key, spec.shard_id, spec.epoch, op_id, round_trip, request
                            )
                    except ProxyConnectionLost:
                        # The proxy died mid-round: fail over (next proxy of
                        # the site, else direct connections) and replay the
                        # idempotent round through the new ingress path.
                        await self._handle_proxy_loss(proxy_client)
                        continue
                    except StaleShardError:
                        # The shard was rebalanced while this round was in
                        # flight.  Rounds are idempotent (queries trivially,
                        # updates because servers only adopt larger tags),
                        # so replay the same broadcast at the new owner.
                        stale_retries += 1
                        self.stale_replays += 1
                        if stale_retries > MAX_STALE_RETRIES:
                            raise
                        continue
                    except (OSError, EOFError):
                        # Too many replicas were unreachable for this round
                        # (a kill mid-flight).  Rounds are idempotent, so
                        # wait out the reconnect window and replay.
                        transient_retries += 1
                        if transient_retries > self.retry_policy.max_transient_retries:
                            raise
                        await asyncio.sleep(self.retry_policy.reconnect_interval)
                        continue
                    request = generator.send(replies)
            except StopIteration as stop:
                outcome = stop.value
            if not isinstance(outcome, OperationOutcome):
                raise ProtocolError("operation generator must return an OperationOutcome")
            self.recorder.record_response(
                op_id, value=outcome.value, tag=outcome.tag, round_trips=round_trip
            )
            if self.completion_hook is not None:
                self.completion_hook()
            return outcome

    # -- introspection ----------------------------------------------------------

    def batch_stats(self) -> BatchStats:
        """This store's own coalescing/frame statistics (direct connections
        or the proxy connection, whichever is in use -- each frame counted
        once, so stores and proxies merge without double-counting)."""
        merged = BatchStats()
        merged.merge(self._retired_stats)  # connections retired by failover
        if self._proxy_client is not None:
            merged.merge(self._proxy_client.batch_stats)
        for client in self._group_clients.values():
            merged.merge(client.batch_stats)
        return merged

    def frames_sent(self) -> int:
        return self.batch_stats().frames_sent

    def frames_total(self) -> int:
        """Request frames sent plus ack frames received -- the same counting
        the simulator's ``Network.sent_count`` uses, so the two backends'
        message numbers are comparable."""
        return self.batch_stats().frames_total

    def histories(self):
        return self.recorder.histories()

    def check(self) -> PerKeyAtomicity:
        """Per-key atomicity verdict over everything this store recorded."""
        return check_per_key_atomicity(self.histories())


class SyncKVStore:
    """Synchronous facade: a private cluster + store on a background loop.

    Starts its own :class:`AsyncKVCluster` and :class:`KVStore` on a daemon
    event-loop thread, so plain synchronous code can use the sharded store
    without touching asyncio::

        with SyncKVStore(num_shards=4, num_groups=2) as store:
            store.put("user:7", "ada")
            store.resize(8)                      # live rebalance
            assert store.get("user:7") == "ada"
    """

    def __init__(
        self,
        num_shards: int = 2,
        protocol_key: str = "abd-mwmr",
        servers_per_shard: int = 3,
        max_faults: int = 1,
        max_batch: int = 8,
        client_id: str = "kv-sync",
        shard_map: Optional[ShardMap] = None,
        num_groups: Optional[int] = None,
    ) -> None:
        self._loop_thread = LoopThread()
        if shard_map is None:
            shard_map = ShardMap(
                num_shards,
                protocol_key=protocol_key,
                servers_per_shard=servers_per_shard,
                max_faults=max_faults,
                num_groups=num_groups,
            )
        self._cluster = AsyncKVCluster(shard_map)
        self._store = KVStore(self._cluster, client_id=client_id, max_batch=max_batch)
        self._closed = False
        try:
            self._loop_thread.call(self._setup())
        except BaseException:
            # Construction failed: tear down whatever started so the loop
            # thread (and any bound replicas) do not outlive the exception.
            self._closed = True
            try:
                self._loop_thread.call(self._teardown(), timeout=10.0)
            except Exception:
                pass
            self._loop_thread.stop()
            raise

    async def _setup(self) -> None:
        await self._cluster.start()
        await self._store.connect()

    # -- synchronous API ---------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        self._loop_thread.call(self._store.put(key, value))

    def get(self, key: str) -> Any:
        return self._loop_thread.call(self._store.get(key))

    def multi_get(self, keys: Sequence[str]) -> Dict[str, Any]:
        return self._loop_thread.call(self._store.multi_get(keys))

    def multi_put(self, items: Mapping[str, Any]) -> None:
        self._loop_thread.call(self._store.multi_put(items))

    def resize(self, new_num_shards: int) -> MigrationReport:
        """Live-resize the ring (runs on the cluster's event loop)."""

        async def _do() -> MigrationReport:
            return self._cluster.resize(new_num_shards)

        return self._loop_thread.call(_do())

    def move_shard(self, shard_id: str, group_id: str) -> MigrationReport:
        """Live-move one shard onto another replica group."""

        async def _do() -> MigrationReport:
            return self._cluster.move_shard(shard_id, group_id)

        return self._loop_thread.call(_do())

    def batch_stats(self) -> BatchStats:
        return self._store.batch_stats()

    def check(self) -> PerKeyAtomicity:
        return self._store.check()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._loop_thread.call(self._teardown())
        finally:
            self._loop_thread.stop()

    async def _teardown(self) -> None:
        await self._store.close()
        await self._cluster.stop()
        # Let the replicas' per-connection handler tasks observe EOF and
        # finish before the loop thread is stopped, else they die mid-await.
        pending = [
            task
            for task in asyncio.all_tasks()
            if task is not asyncio.current_task()
        ]
        if pending:
            await asyncio.wait(pending, timeout=1.0)

    def __enter__(self) -> "SyncKVStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_asyncio_kv_workload(
    workload: KVWorkload,
    num_shards: int = 2,
    protocol_key: str = "abd-mwmr",
    servers_per_shard: int = 3,
    max_faults: int = 1,
    max_batch: int = 8,
    shard_map: Optional[ShardMap] = None,
    service_overhead: float = 0.0,
    service_per_op: float = 0.0,
    num_groups: Optional[int] = None,
    resize_to: Optional[int] = None,
    resize_after_ops: Optional[int] = None,
    use_proxy: bool = False,
    num_proxies: int = 1,
    read_policy: Optional[ReadRoutingPolicy] = None,
    proxy_max_batch: int = 64,
    push_views: bool = True,
    kill_proxy_after_ops: Optional[int] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> KVRunResult:
    """Run a closed-loop kv workload over loopback TCP and collect results.

    Every workload client becomes one :class:`KVStore` (its own connections
    and batching), all sharing one replica cluster and one history recorder.
    ``resize_to`` triggers a *live* resize once ``resize_after_ops``
    operations completed (default: half the workload), with the remaining
    operations still in flight.  ``use_proxy`` starts ``num_proxies``
    ingress proxies and routes every store through one (round-robin), with
    reads routed per ``read_policy``.  ``push_views`` has the control plane
    push the fresh shard-map view to every proxy at each rebalance (off: the
    proxies rely purely on stale-epoch bounces).  ``kill_proxy_after_ops``
    kills one proxy per site once that many operations completed -- the
    stores behind it fail over (next proxy of the site, else direct replica
    connections) with no client-visible errors.  ``retry_policy`` tunes the
    reconnect/failover windows of every component in the run.
    """
    clients = workload.clients
    if shard_map is None:
        shard_map = ShardMap(
            num_shards,
            protocol_key=protocol_key,
            servers_per_shard=servers_per_shard,
            max_faults=max_faults,
            readers=len(clients),
            writers=len(clients),
            num_groups=num_groups,
        )

    async def _run() -> KVRunResult:
        cluster = AsyncKVCluster(
            shard_map,
            service_overhead=service_overhead,
            service_per_op=service_per_op,
            retry_policy=retry_policy,
            push_views=push_views,
        )
        await cluster.start()
        if use_proxy:
            await cluster.start_proxies(
                num_proxies, read_policy=read_policy, max_batch=proxy_max_batch
            )
        base = time.monotonic()
        recorder = KVHistoryRecorder(lambda: time.monotonic() - base)
        stores: Dict[str, KVStore] = {}

        hooks: List[Any] = []
        resize_info: Optional[Dict[str, object]] = None
        if resize_to is not None:
            resize_hook, resize_info = make_resize_trigger(
                cluster.resize,
                lambda: recorder.completed_operations,
                resize_to,
                resize_after_ops
                if resize_after_ops is not None
                else max(1, workload.total_operations() // 2),
            )
            hooks.append(resize_hook)

        kill_record: Dict[str, object] = {}
        kill_tasks: "set[asyncio.Task]" = set()
        if kill_proxy_after_ops is not None and use_proxy:

            def kill(victim: str) -> None:
                # Keep a strong reference: the loop holds tasks weakly, and
                # a collected kill task would silently never sever the proxy.
                task = asyncio.get_running_loop().create_task(
                    cluster.kill_proxy(victim)
                )
                kill_tasks.add(task)
                task.add_done_callback(kill_tasks.discard)

            kill_hook, kill_record = make_proxy_kill_trigger(
                lambda: recorder.completed_operations,
                kill_proxy_after_ops,
                lambda: pick_one_proxy_per_site(
                    [(pid, proxy.site, proxy.running)
                     for pid, proxy in cluster.proxies.items()]
                ),
                kill,
            )
            hooks.append(kill_hook)

        def run_hooks() -> None:
            for hook in hooks:
                hook()

        try:
            for client_id in clients:
                store = KVStore(
                    cluster,
                    client_id=client_id,
                    max_batch=max_batch,
                    recorder=recorder,
                    use_proxy=True if use_proxy else None,
                )
                store.completion_hook = run_hooks if hooks else None
                await store.connect()
                stores[client_id] = store

            async def client_loop(client_id: str) -> None:
                store = stores[client_id]
                queue = list(workload.sequences[client_id])
                depth = max(1, workload.pipeline_depth)

                async def worker() -> None:
                    while queue:
                        op = queue.pop(0)
                        if op.kind == "put":
                            await store.put(op.key, op.value)
                        else:
                            await store.get(op.key)

                await asyncio.gather(*(worker() for _ in range(depth)))

            started = time.monotonic()
            await asyncio.gather(*(client_loop(client_id) for client_id in clients))
            duration = time.monotonic() - started
            batch_stats = BatchStats()
            stale = 0
            failovers = 0
            for store in stores.values():
                batch_stats.merge(store.batch_stats())
                stale += store.stale_replays
                failovers += store.proxy_failovers
            proxy_stats: Optional[BatchStats] = None
            pushes_applied = 0
            proxies_used = len(cluster.proxies)
            if cluster.proxies:
                proxy_stats = BatchStats()
                for proxy in cluster.proxies.values():
                    proxy_stats.merge(proxy.batch_stats())
                    stale += proxy.stale_replays
                    pushes_applied += proxy.view.pushes_applied
            replica_frames = sum(
                logic.batches_served for logic in cluster.server_logics.values()
            )
            replica_sub_ops = sum(
                logic.sub_ops_served for logic in cluster.server_logics.values()
            )
            frames = batch_stats.frames_total + (
                proxy_stats.frames_total if proxy_stats is not None else 0
            )
        finally:
            for store in stores.values():
                await store.close()
            await cluster.stop()
            # Let the replicas' per-connection handler tasks observe EOF and
            # finish before asyncio.run tears the loop down around them.
            draining = [
                task
                for task in asyncio.all_tasks()
                if task is not asyncio.current_task()
            ]
            if draining:
                await asyncio.wait(draining, timeout=1.0)

        histories = recorder.histories()
        result = KVRunResult(
            backend="asyncio",
            num_shards=len(shard_map),
            max_batch=max_batch,
            histories=histories,
            duration=duration,
            completed_ops=recorder.completed_operations,
            messages_sent=frames,
            batch_stats=batch_stats,
            num_groups=len(shard_map.groups),
            stale_replays=stale,
            resize=resize_info,
            num_proxies=proxies_used,
            proxy_stats=proxy_stats,
            replica_frames=replica_frames,
            replica_sub_ops=replica_sub_ops,
            proxy_failovers=failovers,
            view_pushes=pushes_applied,
            proxy_kill=kill_record or None,
        )
        for history in histories.values():
            result.read_latencies.extend(
                op.latency for op in history.reads if op.latency is not None
            )
            result.write_latencies.extend(
                op.latency for op in history.writes if op.latency is not None
            )
        return result

    return run_sync(_run())
