"""The key-value store on the real asyncio TCP transport: the net adapter.

All protocol behaviour -- round lifecycle, batching, stale-epoch replay,
proxy merging, failover, view-push adoption -- lives in the shared sans-I/O
engines of :mod:`repro.kvstore.engine`; this module only *adapts* them to
asyncio streams:

* :class:`AsyncKVCluster` starts one
  :class:`~repro.asyncio_net.server.ReplicaServer` per replica-group server
  (each hosting a :class:`~repro.kvstore.engine.server.GroupServerEngine`),
  plus optional :class:`ProxyServer` ingress proxies, and runs the live
  control plane (:meth:`AsyncKVCluster.resize` / ``move_shard`` with delta
  view pushes over TCP).
* :class:`KVStore` is the client facade: ``await get/put/multi_get/multi_put``
  drive a :class:`~repro.kvstore.engine.client.ClientSessionEngine`; emitted
  frames ride per-replica connections (or the single proxy connection), and
  emitted timers ride ``loop.call_later``.  Connection losses are reported
  back into the engine, which owns replay and proxy failover.
* :class:`AsyncGroupClient` / :class:`AsyncProxyClient` are pure transport:
  connection pools with reconnect-and-redial, no round bookkeeping.
* :class:`SyncKVStore` wraps a :class:`KVStore` for synchronous callers via
  a background event-loop thread.
"""

from __future__ import annotations

import asyncio
import logging
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..asyncio_net.codec import FrameError, encode_message, read_frame, write_frame
from ..asyncio_net.server import ReplicaServer
from ..core.operations import OpKind
from ..messages import DEFAULT_LEASE_TTL, Message
from ..observe.events import (
    NULL_OBSERVER,
    TIMER_ARMED,
    TIMER_CANCELLED,
    TIMER_FIRED,
    EngineObserver,
    ObserverHub,
)
from ..observe.metrics import MetricsObserver, MetricsRegistry
from ..observe.trace import TraceCollector
from ..protocols.base import OperationOutcome
from .engine import (
    DEFAULT_RETRY_POLICY,
    DIRECT_INGRESS,
    DRAIN_RANGE_SIZE,
    AutoscaleFeed,
    BatchStats,
    CachedShardView,
    CancelTimer,
    ClientSessionEngine,
    Connect,
    ControlPlaneEngine,
    Effect,
    GroupServerEngine,
    OpCompleted,
    OpFailed,
    ProxyEngine,
    ReadRoutingPolicy,
    RetryPolicy,
    SendFrame,
    StartTimer,
    TimerId,
    make_proxy_kill_trigger,
    pick_one_proxy_per_site,
)
from .migration import MigrationReport, make_resize_trigger
from .perkey import KVHistoryRecorder, PerKeyAtomicity, check_per_key_atomicity
from .placement import ReplicaGroup
from .sharding import ShardMap
from .workload import KVRunResult, KVWorkload
from ._sync import LoopThread, run_sync

__all__ = ["AsyncKVCluster", "AsyncGroupClient", "AsyncShardClient",
           "AsyncProxyClient", "ProxyServer", "KVStore", "SyncKVStore",
           "RetryPolicy", "ProxyConnectionLost", "run_asyncio_kv_workload"]

logger = logging.getLogger(__name__)

#: Connection-death errors the transport maps onto engine notifications.
_CONNECTION_ERRORS = (
    asyncio.IncompleteReadError,
    ConnectionResetError,
    BrokenPipeError,
    EOFError,
    OSError,
)


class ProxyConnectionLost(ConnectionError):
    """The client's connection to its ingress proxy died mid-round.

    Distinct from the plain ``OSError`` of a replica-leg hiccup because the
    remedies differ: a replica outage is waited out (the endpoint is stable
    across kill/restart), while a dead proxy triggers *failover* -- the
    client engine re-dials the next proxy of its site, or falls back to
    direct replica connections, and replays the round under a fresh attempt
    scope.
    """


class _EffectRunner:
    """Executes engine effects on the asyncio event loop.

    Subclasses supply the engine, writer resolution, and operation
    completion handling.  Effects returned by re-entrant engine calls (an
    undeliverable frame reported while another effect is executing) join
    the same FIFO, so execution order matches emission order.
    """

    def __init__(self, observer: Optional[EngineObserver] = None) -> None:
        self.observer = observer if observer is not None else NULL_OBSERVER
        self._timers: Dict[TimerId, asyncio.TimerHandle] = {}
        self._effect_queue: Deque[Effect] = deque()
        self._running_effects = False
        self._io_tasks: "set[asyncio.Task]" = set()

    # -- subclass surface --------------------------------------------------------

    @property
    def engine(self):
        raise NotImplementedError

    def _writer_for(self, destination: str) -> Optional[asyncio.StreamWriter]:
        raise NotImplementedError

    def _on_operation(self, effect) -> None:  # pragma: no cover - client only
        raise NotImplementedError

    def _connect_ingress(self, target: str) -> None:  # pragma: no cover - client only
        raise NotImplementedError

    # -- the effect pump ---------------------------------------------------------

    def run_effects(self, effects: Sequence[Effect]) -> None:
        self._effect_queue.extend(effects)
        if self._running_effects:
            return
        self._running_effects = True
        try:
            while self._effect_queue:
                self._execute(self._effect_queue.popleft())
        finally:
            self._running_effects = False

    def _execute(self, effect: Effect) -> None:
        if isinstance(effect, SendFrame):
            self._send(effect)
        elif isinstance(effect, StartTimer):
            stale = self._timers.pop(effect.timer_id, None)
            if stale is not None:
                stale.cancel()
                self.observer.emit(
                    TIMER_CANCELLED, timer=effect.timer_id[0], reason="rearm"
                )
            self._timers[effect.timer_id] = asyncio.get_running_loop().call_later(
                effect.delay, self._fire_timer, effect.timer_id
            )
            self.observer.emit(TIMER_ARMED, timer=effect.timer_id[0])
        elif isinstance(effect, CancelTimer):
            timer = self._timers.pop(effect.timer_id, None)
            if timer is not None:
                timer.cancel()
                self.observer.emit(
                    TIMER_CANCELLED, timer=effect.timer_id[0], reason="cancel"
                )
        elif isinstance(effect, Connect):
            self._connect_ingress(effect.target)
        elif isinstance(effect, (OpCompleted, OpFailed)):
            self._on_operation(effect)
        else:  # pragma: no cover - future effect kinds
            raise TypeError(f"unknown effect {effect!r}")

    def _fire_timer(self, timer_id: TimerId) -> None:
        self._timers.pop(timer_id, None)
        self.observer.emit(TIMER_FIRED, timer=timer_id[0])
        self.run_effects(self.engine.on_timer(timer_id))

    def _send(self, effect: SendFrame) -> None:
        writer = self._writer_for(effect.destination)
        if writer is None or writer.is_closing():
            # The peer is down and its redial has not landed yet; report the
            # loss instead of writing into a dead socket -- the engine's
            # replay (or failover) logic takes over.
            self._effect_queue.extend(
                self.engine.on_frame_undeliverable(
                    effect.frame,
                    ConnectionResetError(
                        f"connection to {effect.destination} is down"
                    ),
                    retryable=True,
                )
            )
            return
        try:
            data = encode_message(effect.frame)
        except FrameError as exc:
            # Not a connection death (an oversized frame): fail the affected
            # rounds with the real error, but keep the connection usable.
            self._effect_queue.extend(
                self.engine.on_frame_undeliverable(effect.frame, exc, retryable=False)
            )
            return
        # write() appends the whole frame synchronously (no interleaving with
        # concurrent sends on this writer); only backpressure is awaited.
        writer.write(data)
        self._track(self._drain(writer, effect.frame))

    async def _drain(self, writer: asyncio.StreamWriter, frame: Message) -> None:
        try:
            await writer.drain()
        except _CONNECTION_ERRORS as exc:
            self.run_effects(
                self.engine.on_frame_undeliverable(frame, exc, retryable=True)
            )

    def _track(self, coroutine) -> asyncio.Task:
        task = asyncio.create_task(coroutine)
        self._io_tasks.add(task)
        task.add_done_callback(self._io_tasks.discard)
        return task

    async def _shutdown_runner(self) -> None:
        for timer_id, timer in self._timers.items():
            timer.cancel()
            self.observer.emit(
                TIMER_CANCELLED, timer=timer_id[0], reason="shutdown"
            )
        self._timers.clear()
        tasks = list(self._io_tasks)
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        self._io_tasks.clear()


class AsyncGroupClient:
    """Connections to one replica group: pure transport, no round logic.

    Decoded frames are handed to ``on_frame`` (the owner routes them into
    its engine).  A lost connection goes into reconnect: the receive loop's
    death schedules periodic redial of the replica's (stable) endpoint.  A
    redial that dies on an *unexpected* exception (anything outside the
    ``OSError`` family the loop retries on) is reported via ``on_peer_lost``
    so rounds counting on that replica are failed over to the engines'
    replay logic instead of hanging with no trace.
    """

    def __init__(
        self,
        client_id: str,
        group: ReplicaGroup,
        endpoints: Dict[str, Tuple[str, int]],
        retry_policy: Optional[RetryPolicy] = None,
        on_frame: Optional[Callable[[Message], None]] = None,
        on_peer_lost: Optional[Callable[[str, BaseException], None]] = None,
    ) -> None:
        self.client_id = client_id
        self.group = group
        self.endpoints = dict(endpoints)
        self.retry_policy = retry_policy or DEFAULT_RETRY_POLICY
        self._on_frame = on_frame or (lambda message: None)
        self._on_peer_lost = on_peer_lost or (lambda server_id, exc: None)
        self._writers: Dict[str, asyncio.StreamWriter] = {}
        self._receive_tasks: "set[asyncio.Task]" = set()
        self._reconnect_tasks: "set[asyncio.Task]" = set()
        self._closing = False

    async def connect(self) -> None:
        for server_id in self.endpoints:
            try:
                await self._open(server_id)
            except OSError:
                # The replica is down right now (connecting mid-kill is the
                # norm on the failover-to-direct path).  Rounds complete on
                # the surviving quorum; keep redialing the stable endpoint
                # so the replica is folded back in when it returns.
                self._schedule_reconnect(server_id)

    def writer_for(self, server_id: str) -> Optional[asyncio.StreamWriter]:
        return self._writers.get(server_id)

    async def _open(self, server_id: str) -> None:
        host, port = self.endpoints[server_id]
        reader, writer = await asyncio.open_connection(host, port)
        stale = self._writers.get(server_id)
        if stale is not None and stale is not writer:
            stale.close()  # release the dead transport a redial replaces
        self._writers[server_id] = writer
        task = asyncio.create_task(self._receive_loop(server_id, reader))
        self._receive_tasks.add(task)
        task.add_done_callback(self._receive_tasks.discard)

    async def _receive_loop(self, server_id: str, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                message = await read_frame(reader)
                self._on_frame(message)
        except _CONNECTION_ERRORS:
            # The replica died (or was killed): keep redialing its endpoint
            # so a restarted replica is picked back up transparently.
            self._schedule_reconnect(server_id)
        except asyncio.CancelledError:
            return

    def _schedule_reconnect(self, server_id: str) -> None:
        if self._closing:
            return
        task = asyncio.create_task(self._reconnect(server_id))
        self._reconnect_tasks.add(task)
        task.add_done_callback(
            lambda done, sid=server_id: self._reconnect_finished(sid, done)
        )

    async def _reconnect(self, server_id: str) -> None:
        """Redial a dead replica until it is back (or this client closes)."""
        while not self._closing:
            await asyncio.sleep(self.retry_policy.reconnect_interval)
            if self._closing:
                return
            try:
                await self._open(server_id)
                return
            except OSError:
                continue

    def _reconnect_finished(self, server_id: str, task: asyncio.Task) -> None:
        self._reconnect_tasks.discard(task)
        if task.cancelled():
            return
        exc = task.exception()
        if exc is None:
            return
        logger.warning(
            "%s: reconnect to %s failed terminally: %r",
            self.client_id, server_id, exc,
        )
        self._on_peer_lost(server_id, exc)

    async def close(self) -> None:
        self._closing = True
        tasks = list(self._receive_tasks) + list(self._reconnect_tasks)
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        self._receive_tasks.clear()
        self._reconnect_tasks.clear()
        for writer in self._writers.values():
            writer.close()
            try:
                await writer.wait_closed()
            except _CONNECTION_ERRORS:  # pragma: no cover - teardown race
                pass
        self._writers.clear()


#: Backwards-compatible alias from before placement was its own layer.
AsyncShardClient = AsyncGroupClient


class AsyncProxyClient:
    """A client's single connection to its site-local ingress proxy.

    Pure transport: decoded frames go to ``on_frame``; a dead connection is
    reported once via ``on_lost`` (the owning store's engine then fails over
    to the next proxy of the site, or to direct replica connections).
    """

    def __init__(
        self,
        client_id: str,
        proxy_id: str,
        host: str,
        port: int,
        on_frame: Optional[Callable[[Message], None]] = None,
        on_lost: Optional[Callable[["AsyncProxyClient", BaseException], None]] = None,
    ) -> None:
        self.client_id = client_id
        self.proxy_id = proxy_id
        self.host = host
        self.port = port
        self._on_frame = on_frame or (lambda message: None)
        self._on_lost = on_lost or (lambda link, exc: None)
        self.lost: Optional[BaseException] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self._receive_task: Optional[asyncio.Task] = None

    async def connect(self) -> None:
        reader, self.writer = await asyncio.open_connection(self.host, self.port)
        self._receive_task = asyncio.create_task(self._receive_loop(reader))

    async def _receive_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                message = await read_frame(reader)
                self._on_frame(message)
        except _CONNECTION_ERRORS as exc:
            self._mark_lost(exc)
        except asyncio.CancelledError:
            return

    def _mark_lost(self, exc: BaseException) -> None:
        if self.lost is not None:
            return
        self.lost = ProxyConnectionLost(f"proxy {self.proxy_id} lost: {exc!r}")
        self._on_lost(self, self.lost)

    async def close(self) -> None:
        if self._receive_task is not None:
            self._receive_task.cancel()
            await asyncio.gather(self._receive_task, return_exceptions=True)
            self._receive_task = None
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except _CONNECTION_ERRORS:  # pragma: no cover - teardown race
                pass
            self.writer = None


#: Default autoscale window on the asyncio backend (wall-clock seconds;
#: loopback rounds are sub-millisecond, so a quarter second is many
#: thousands of ops of signal).
NET_AUTOSCALE_INTERVAL = 0.25

#: Default read-lease duration on the asyncio backend (wall-clock seconds).
#: The engine default (:data:`~repro.messages.DEFAULT_LEASE_TTL`) is sized
#: for the simulator's virtual clock; on real TCP a lease must be short
#: enough that a crashed proxy's leases expire well inside the client
#: round-timeout budget (``PROXY_ROUND_TIMEOUT`` is 2 s), or a deferred
#: write would look like a dead replica to the writer.
NET_LEASE_TTL = 1.0


class _ControlPlaneDriver:
    """Executes the control engine's effects on the asyncio event loop.

    Unlike clients and proxies the control plane keeps no persistent
    connections: each drain or view-push frame rides its own short-lived
    connection -- write the frame, await the peer's ack on the same stream,
    feed it back into the engine.  A failed dial or read produces no ack,
    which is indistinguishable from a lost frame: the engine's retry timer
    resends, and after ``max_retries`` the replica is treated as dead for
    the rest of the migration (the same ``t``-fault budget the quorums
    tolerate).  Timers ride ``loop.call_later``.
    """

    def __init__(self, cluster: "AsyncKVCluster", engine: ControlPlaneEngine) -> None:
        self.cluster = cluster
        self.engine = engine
        self._timers: Dict[TimerId, asyncio.TimerHandle] = {}
        self._tasks: "set[asyncio.Task]" = set()

    def run_effects(self, effects: Sequence[Effect]) -> None:
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            # No loop: nothing is listening, so there is nothing to drain
            # to.  The metadata flip already happened; drop the effects.
            return
        for effect in effects:
            if isinstance(effect, SendFrame):
                task = loop.create_task(
                    self._deliver(effect.destination, effect.frame)
                )
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
            elif isinstance(effect, StartTimer):
                stale = self._timers.pop(effect.timer_id, None)
                if stale is not None:
                    stale.cancel()
                self._timers[effect.timer_id] = loop.call_later(
                    effect.delay, self._fire_timer, effect.timer_id
                )
            elif isinstance(effect, CancelTimer):
                timer = self._timers.pop(effect.timer_id, None)
                if timer is not None:
                    timer.cancel()
            else:  # pragma: no cover - future effect kinds
                raise TypeError(f"unknown control-plane effect {effect!r}")

    def _fire_timer(self, timer_id: TimerId) -> None:
        self._timers.pop(timer_id, None)
        self.run_effects(self.engine.on_timer(timer_id))

    async def _deliver(self, destination: str, frame: Message) -> None:
        endpoint = self.cluster.endpoint_of(destination)
        if endpoint is None:
            return  # killed proxy or unknown peer; retries/fences cover it
        try:
            reader, writer = await asyncio.open_connection(*endpoint)
            try:
                await write_frame(writer, frame)
                # A replica deferring a drain transfer behind live read
                # leases withholds the ack entirely (the engine's retry
                # timer re-asks); bound the wait so this delivery task
                # does not outlive the retry that supersedes it.
                reply = await asyncio.wait_for(
                    read_frame(reader), timeout=self.cluster.lease_ttl + 1.0
                )
                self.run_effects(self.engine.on_frame(reply))
            except asyncio.TimeoutError:
                pass  # no ack: deferred behind leases; the retry covers it
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except OSError:  # pragma: no cover - teardown race
                    pass
        except (OSError, asyncio.IncompleteReadError, FrameError):
            pass  # no ack: the engine's retry timer covers it

    async def flush(self) -> None:
        """Wait for every in-flight delivery task (not for retries)."""
        tasks = list(self._tasks)
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    async def shutdown(self) -> None:
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        tasks = list(self._tasks)
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        self._tasks.clear()


class AsyncKVCluster:
    """All group replicas of a :class:`ShardMap` listening on loopback TCP."""

    def __init__(
        self,
        shard_map: ShardMap,
        host: str = "127.0.0.1",
        service_overhead: float = 0.0,
        service_per_op: float = 0.0,
        retry_policy: Optional[RetryPolicy] = None,
        push_views: bool = True,
        delta_views: bool = True,
        trace_collector: Optional[TraceCollector] = None,
        drain_range_size: int = DRAIN_RANGE_SIZE,
        autoscale_interval: float = NET_AUTOSCALE_INTERVAL,
        lease_ttl: float = NET_LEASE_TTL,
    ) -> None:
        self.shard_map = shard_map
        self.host = host
        self.service_overhead = service_overhead
        self.service_per_op = service_per_op
        self.lease_ttl = lease_ttl
        self.retry_policy = retry_policy or DEFAULT_RETRY_POLICY
        self.push_views = push_views
        self.delta_views = delta_views
        # One observer hub per cluster: wall-clock timestamps, a metrics
        # registry fed by every tier, and (optionally) a trace collector.
        self.hub = ObserverHub(clock=time.monotonic)
        self.metrics = MetricsRegistry()
        self.hub.add_sink(MetricsObserver(self.metrics))
        if trace_collector is not None:
            self.hub.add_sink(trace_collector)
        self.replicas: Dict[str, ReplicaServer] = {}
        self.proxies: Dict[str, "ProxyServer"] = {}
        self.migrations: List[MigrationReport] = []
        self._logics: Dict[str, GroupServerEngine] = {}
        self._endpoints: Dict[str, Dict[str, Tuple[str, int]]] = {}
        self._proxy_rr = 0
        self.control = ControlPlaneEngine(
            shard_map,
            delta_views=delta_views,
            drain_range_size=drain_range_size,
            autoscale_interval=autoscale_interval,
            observer=self.hub.scoped("control", "control-plane"),
        )
        self._driver = _ControlPlaneDriver(self, self.control)
        self.hub.add_sink(AutoscaleFeed(self.control))

    async def start(self) -> None:
        for group in self.shard_map.groups.values():
            hosted = {
                spec.shard_id: spec.epoch
                for spec in self.shard_map.shards_on(group.group_id)
            }
            endpoints: Dict[str, Tuple[str, int]] = {}
            for server_id in group.servers:
                logic = GroupServerEngine(
                    server_id, group.protocol, dict(hosted),
                    observer=self.hub.scoped("replica", server_id),
                    lease_ttl=self.lease_ttl,
                )
                replica = ReplicaServer(
                    logic,
                    host=self.host,
                    service_overhead=self.service_overhead,
                    service_per_op=self.service_per_op,
                )
                await replica.start()
                self.replicas[server_id] = replica
                self._logics[server_id] = logic
                endpoints[server_id] = (replica.host, replica.port)
            self._endpoints[group.group_id] = endpoints

    async def stop(self) -> None:
        await self._driver.shutdown()
        for proxy in self.proxies.values():
            await proxy.stop()
        self.proxies.clear()
        for replica in self.replicas.values():
            await replica.stop()
        self.replicas.clear()
        self._logics.clear()
        self._endpoints.clear()

    def endpoints_for(self, group_id: str) -> Dict[str, Tuple[str, int]]:
        return dict(self._endpoints[group_id])

    # -- ingress proxies ---------------------------------------------------------

    async def start_proxies(
        self,
        num_proxies: int = 1,
        read_policy: Optional[ReadRoutingPolicy] = None,
        max_batch: int = 64,
        site: Optional[str] = None,
        read_cache: int = 0,
        bounded_staleness: bool = False,
    ) -> List[str]:
        """Start ``num_proxies`` site-local ingress proxies; returns their ids.

        Proxies are stateless, so they can be started (and pointed at) any
        time after :meth:`start`; each owns its own connections to every
        replica group and merges forwarded rounds across the client
        connections it accepts.  ``site`` tags the started proxies with a
        deployment site: failover (:meth:`proxy_candidates`) only re-dials
        proxies of the *same* site, so call once per site to model a
        multi-site ingress tier.  With no sites, all proxies form one.
        """
        started: List[str] = []
        for _ in range(num_proxies):
            proxy_id = f"p{len(self.proxies) + 1}"
            proxy = ProxyServer(
                proxy_id, self, read_policy=read_policy,
                max_batch=max_batch, host=self.host, site=site,
                read_cache=read_cache, bounded_staleness=bounded_staleness,
            )
            await proxy.start()
            self.proxies[proxy_id] = proxy
            if self.push_views:
                self.control.proxy_ids.append(proxy_id)
            started.append(proxy_id)
        return started

    def assign_proxy(self) -> str:
        """The next proxy id, round-robin (how ``use_proxy=True`` clients
        spread over the proxy tier)."""
        if not self.proxies:
            raise RuntimeError("no proxies started; call start_proxies() first")
        ids = list(self.proxies)
        proxy_id = ids[self._proxy_rr % len(ids)]
        self._proxy_rr += 1
        return proxy_id

    def proxy_endpoint(self, proxy_id: str) -> Tuple[str, int]:
        proxy = self.proxies[proxy_id]
        return (proxy.host, proxy.port)

    def proxy_candidates(self, proxy_id: str) -> List[str]:
        """Every proxy of ``proxy_id``'s site, starting with ``proxy_id``.

        This is the failover list a connecting store learns: when its
        current proxy dies it re-dials the next candidate, and when the list
        is exhausted it falls back to direct replica connections.
        """
        site = self.proxies[proxy_id].site
        same_site = [
            candidate_id
            for candidate_id, proxy in self.proxies.items()
            if proxy.site == site
        ]
        start = same_site.index(proxy_id)
        return same_site[start:] + same_site[:start]

    async def kill_proxy(self, proxy_id: str) -> None:
        """Kill one ingress proxy: stop listening and sever its connections.

        Mirrors :meth:`kill_server`.  Stores connected to it observe the
        severed connection and fail over to another proxy of the same site
        (or to direct replica connections), replaying their in-flight rounds
        under fresh attempt scopes; the replicas never notice.
        """
        await self.proxies[proxy_id].stop()

    async def restart_proxy(self, proxy_id: str) -> None:
        """Restart a killed proxy on its original port.

        Proxies are stateless, so a restart is just a rebind -- plus a view
        refresh, because rebalances during the outage are invisible to a
        process that was not there to receive their pushes."""
        proxy = self.proxies[proxy_id]
        if not proxy.running:
            await proxy.start()
            proxy.view.refresh()

    # -- replica kill / restart --------------------------------------------------

    async def kill_server(self, server_id: str) -> None:
        """Kill one replica: stop listening and sever its live connections.

        Clients and proxies ride it out: sends to the dead replica fail (a
        quorum of ``S - t`` among the survivors still completes every
        round), their receive loops go into reconnect, and rounds that lost
        too many sends are replayed once a quorum is reachable again.
        """
        await self.replicas[server_id].stop()

    async def restart_server(self, server_id: str) -> None:
        """Restart a killed replica on its original port with its surviving
        state (the crash-recovery model: register state is stable storage).
        Reconnecting clients resume using it transparently."""
        replica = self.replicas[server_id]
        if not replica.running:
            await replica.start()

    # -- live control plane ------------------------------------------------------

    @property
    def server_logics(self) -> Dict[str, GroupServerEngine]:
        return dict(self._logics)

    def resize(self, new_num_shards: int) -> MigrationReport:
        """Live-resize the ring: metadata flips now, the drain runs as frames.

        The metadata flip is synchronous -- no ``await`` between the ring
        change and the epoch bumps, so no frame can be processed half-way
        through the cutover -- and the returned report's shard-set fields
        are final immediately.  The register drain then proceeds in the
        background over ``drain-*`` frames, one key range at a time;
        ``report.on_done`` fires (and the data counters fill) when the last
        range installs.  Await :meth:`flush_migrations` to block on it.
        """
        report, effects = self.control.start_resize(new_num_shards)
        self.migrations.append(report)
        self._driver.run_effects(effects)
        return report

    def move_shard(self, shard_id: str, group_id: str) -> MigrationReport:
        """Live-move one shard onto another group (same contract)."""
        report, effects = self.control.start_move(shard_id, group_id)
        self.migrations.append(report)
        self._driver.run_effects(effects)
        return report

    async def flush_migrations(self, timeout: float = 30.0) -> None:
        """Wait until every started migration's drain has completed."""
        deadline = time.monotonic() + timeout
        while any(not report.done for report in self.migrations):
            if time.monotonic() >= deadline:
                raise TimeoutError("migration drain did not complete in time")
            await asyncio.sleep(0.005)

    # -- the autoscaler ----------------------------------------------------------

    def start_autoscaler(self) -> None:
        """Arm the control plane's recurring autoscale tick."""
        self._driver.run_effects(self.control.start_autoscaler())

    def stop_autoscaler(self) -> None:
        self._driver.run_effects(self.control.stop_autoscaler())

    # -- control-plane transport hooks -------------------------------------------

    def endpoint_of(self, destination: str) -> Optional[Tuple[str, int]]:
        """Where the control plane dials ``destination`` (replica or proxy).

        ``None`` for a killed proxy or an unknown id -- the caller treats it
        like a failed dial (view pushes: ``restart_proxy`` refreshes the
        view anyway; drains: the retry/give-up path handles it).
        """
        proxy = self.proxies.get(destination)
        if proxy is not None:
            return (proxy.host, proxy.port) if proxy.running else None
        for endpoints in self._endpoints.values():
            if destination in endpoints:
                return endpoints[destination]
        return None

    @property
    def view_pushes_sent(self) -> int:
        return self.control.view_pushes_sent

    @property
    def view_push_acks(self) -> int:
        return self.control.view_push_acks

    async def flush_view_pushes(self) -> None:
        """Wait for every outstanding view push to be applied (or fail)."""
        await self._driver.flush()


class ProxyServer(_EffectRunner):
    """One site-local ingress proxy over TCP: one proxy engine.

    Accepts client connections speaking ``"proxy"``/``"proxy-ack"`` frames
    and feeds them (plus control-plane ``"view-push"`` frames and the
    replicas' ``"batch-ack"`` replies) into a shared
    :class:`~repro.kvstore.engine.proxy.ProxyEngine`, which owns shard
    resolution, read routing, cross-client merging, stale-epoch replay and
    round timeouts.  This class only manages connections: one
    :class:`AsyncGroupClient` per replica group, and a sender->writer map
    for routing ack frames back to the connection they belong to.
    """

    def __init__(
        self,
        proxy_id: str,
        cluster: AsyncKVCluster,
        read_policy: Optional[ReadRoutingPolicy] = None,
        max_batch: int = 64,
        host: str = "127.0.0.1",
        port: int = 0,
        site: Optional[str] = None,
        read_cache: int = 0,
        bounded_staleness: bool = False,
    ) -> None:
        super().__init__(observer=cluster.hub.scoped("proxy", proxy_id))
        self.proxy_id = proxy_id
        self.cluster = cluster
        self.site = site
        self.host = host
        self.port = port
        self.retry_policy = cluster.retry_policy
        self.view = CachedShardView(cluster.shard_map)
        read_round_trips = max(
            (group.protocol.read_round_trips
             for group in cluster.shard_map.groups.values()),
            default=2,
        )
        self._engine = ProxyEngine(
            proxy_id,
            self.view,
            read_policy=read_policy,
            policy=cluster.retry_policy,
            max_batch=max_batch,
            observer=self.observer,
            read_cache=read_cache,
            lease_ttl=cluster.lease_ttl,
            bounded_staleness=bounded_staleness,
            read_round_trips=read_round_trips,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._group_clients: Dict[str, AsyncGroupClient] = {}
        self._server_home: Dict[str, AsyncGroupClient] = {}
        self._client_writers: Dict[str, asyncio.StreamWriter] = {}
        self._connections: "set[asyncio.StreamWriter]" = set()

    @property
    def engine(self) -> ProxyEngine:
        return self._engine

    @property
    def read_policy(self) -> ReadRoutingPolicy:
        return self._engine.read_policy

    @property
    def stale_replays(self) -> int:
        return self._engine.stale_replays

    @property
    def running(self) -> bool:
        return self._server is not None

    def batch_stats(self) -> BatchStats:
        """Replica-side merging/frame statistics (cumulative across any
        kill/restart -- the engine outlives the connections)."""
        return self._engine.stats.copy()

    async def start(self) -> None:
        """(Re)start the proxy; after a kill, the same port is rebound so
        the cluster's advertised proxy endpoint stays stable."""
        if self.running:
            return
        for group in self.cluster.shard_map.groups.values():
            group_client = AsyncGroupClient(
                self.proxy_id,
                group,
                self.cluster.endpoints_for(group.group_id),
                retry_policy=self.retry_policy,
                on_frame=lambda message: self.run_effects(
                    self._engine.on_frame(message)
                ),
                on_peer_lost=lambda server_id, exc: self.run_effects(
                    self._engine.on_peer_lost(server_id)
                ),
            )
            await group_client.connect()
            self._group_clients[group.group_id] = group_client
            for server_id in group_client.endpoints:
                self._server_home[server_id] = group_client
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._shutdown_runner()
        for writer in list(self._connections):
            writer.close()
        for group_client in self._group_clients.values():
            await group_client.close()
        self._group_clients.clear()
        self._server_home.clear()
        self._client_writers.clear()
        # Clients behind a killed proxy fail over and replay under fresh
        # attempt scopes; drop the stranded rounds so a restart acks no
        # ghosts (frame accounting lives in the engine and survives).
        self._engine.sever()

    def _writer_for(self, destination: str) -> Optional[asyncio.StreamWriter]:
        group_client = self._server_home.get(destination)
        if group_client is not None:
            return group_client.writer_for(destination)
        return self._client_writers.get(destination)

    async def _handle_client(self, reader, writer) -> None:
        senders: "set[str]" = set()
        self._connections.add(writer)
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except _CONNECTION_ERRORS:
                    break
                except asyncio.CancelledError:
                    break  # loop teardown raced this connection's EOF
                # Ack frames route back over the connection the request (or
                # view push) arrived on: remember who speaks through it.
                if frame.sender not in senders:
                    senders.add(frame.sender)
                    self._client_writers[frame.sender] = writer
                self.run_effects(self._engine.on_frame(frame))
        finally:
            self._connections.discard(writer)
            for sender in senders:
                if self._client_writers.get(sender) is writer:
                    del self._client_writers[sender]
            writer.close()
            try:
                await writer.wait_closed()
            except (*_CONNECTION_ERRORS, asyncio.CancelledError):
                pass


class KVStore(_EffectRunner):
    """The async client facade of the sharded store.

    One store instance represents one logical client: operations on the same
    key are serialized per key (keeping per-key sub-histories well-formed)
    while operations on different keys run concurrently and share batch
    rounds whenever their shards live on the same replica group.  All of
    that -- and stale-epoch replay, and proxy failover -- is the shared
    :class:`~repro.kvstore.engine.client.ClientSessionEngine`; this class
    adapts it to asyncio: frames ride per-replica connections (or the
    single proxy connection), timers ride the event loop, and each
    operation awaits a future resolved by the engine's completion effect.

    With ``use_proxy`` the store opens *one* connection -- to a site-local
    ingress proxy started via :meth:`AsyncKVCluster.start_proxies` -- instead
    of one per replica; pass ``True`` to be assigned a proxy round-robin or
    a proxy id to pick one (e.g. the client's own site).  At connect time
    the store learns the full proxy list of its proxy's site
    (:meth:`AsyncKVCluster.proxy_candidates`); when the connection dies the
    engine re-dials the next candidate (through :class:`Connect` effects)
    and replays its in-flight rounds under a fresh failover generation,
    falling back to direct replica connections when the site is exhausted.

    A store behind a proxy started with ``read_cache`` (see
    :meth:`AsyncKVCluster.start_proxies`) gets lease-backed cached reads
    transparently: hot-key gets are acked straight from the proxy's cache
    with no replica round, and its puts invalidate the proxy's own entry
    before they dispatch, so the store observes the same atomic register it
    would without the cache.
    """

    def __init__(
        self,
        cluster: AsyncKVCluster,
        client_id: str = "kv1",
        max_batch: int = 8,
        recorder: Optional[KVHistoryRecorder] = None,
        use_proxy: Union[bool, str, None] = None,
    ) -> None:
        super().__init__(observer=cluster.hub.scoped("client", client_id))
        self.cluster = cluster
        self.client_id = client_id
        self.max_batch = max_batch
        base = time.monotonic()
        self.recorder = recorder or KVHistoryRecorder(lambda: time.monotonic() - base)
        self.use_proxy = use_proxy
        self.retry_policy = cluster.retry_policy
        self.completion_hook: Optional[Any] = None
        self._engine: Optional[ClientSessionEngine] = None
        self._proxy_client: Optional[AsyncProxyClient] = None
        self._group_clients: Dict[str, AsyncGroupClient] = {}
        self._server_home: Dict[str, AsyncGroupClient] = {}
        self._op_futures: Dict[str, asyncio.Future] = {}

    @property
    def engine(self) -> ClientSessionEngine:
        if self._engine is None:
            raise RuntimeError("KVStore is not connected; call connect() first")
        return self._engine

    @property
    def stale_replays(self) -> int:
        return self._engine.stale_replays if self._engine is not None else 0

    @property
    def proxy_failovers(self) -> int:
        return self._engine.proxy_failovers if self._engine is not None else 0

    # -- connecting --------------------------------------------------------------

    async def connect(self) -> None:
        if self.use_proxy:
            proxy_id = (
                self.cluster.assign_proxy()
                if self.use_proxy is True
                else str(self.use_proxy)
            )
            candidates = self.cluster.proxy_candidates(proxy_id)
            self._engine = self._make_engine(candidates)
            await self._dial_proxy(proxy_id)
            self.run_effects(self._engine.on_connected(proxy_id))
            return
        self._engine = self._make_engine([])
        await self._connect_direct()

    def _make_engine(self, candidates: List[str]) -> ClientSessionEngine:
        return ClientSessionEngine(
            self.client_id,
            self.cluster.shard_map,
            self.recorder,
            policy=self.retry_policy,
            max_batch=self.max_batch,
            proxy_candidates=candidates,
            observer=self.observer,
        )

    async def _dial_proxy(self, proxy_id: str) -> None:
        host, port = self.cluster.proxy_endpoint(proxy_id)
        link = AsyncProxyClient(
            self.client_id, proxy_id, host, port,
            on_frame=lambda message: self.run_effects(self.engine.on_frame(message)),
            on_lost=self._proxy_lost,
        )
        await link.connect()
        self._proxy_client = link

    def _proxy_lost(self, link: AsyncProxyClient, exc: BaseException) -> None:
        if self._proxy_client is link:
            # The engine's ingress state makes concurrent reports
            # single-flight: the first moves the store, the rest are no-ops.
            self.run_effects(self.engine.on_peer_lost(link.proxy_id))

    async def _connect_direct(self) -> None:
        # Idempotent per group (not all-or-nothing): the failover path may
        # land here while a replica is also down, and a partial first pass
        # must not wedge the store -- missing groups are retried on the
        # next call, connected ones are kept.
        for group in self.cluster.shard_map.groups.values():
            if group.group_id in self._group_clients:
                continue
            client = AsyncGroupClient(
                self.client_id,
                group,
                self.cluster.endpoints_for(group.group_id),
                retry_policy=self.retry_policy,
                on_frame=lambda message: self.run_effects(
                    self.engine.on_frame(message)
                ),
                on_peer_lost=lambda server_id, exc: self.run_effects(
                    self.engine.on_peer_lost(server_id)
                ),
            )
            await client.connect()
            self._group_clients[group.group_id] = client
            for server_id in client.endpoints:
                self._server_home[server_id] = client

    def _connect_ingress(self, target: str) -> None:
        """Execute a :class:`Connect` effect: dial off the effect pump."""
        self._track(self._do_connect(target))

    async def _do_connect(self, target: str) -> None:
        stale = self._proxy_client
        self._proxy_client = None
        if stale is not None:
            await stale.close()
        if target == DIRECT_INGRESS:
            await self._connect_direct()
            self.run_effects(self.engine.on_connected(DIRECT_INGRESS))
            return
        try:
            await self._dial_proxy(target)
        except OSError:
            # The candidate is dead too; the engine keeps walking the site.
            self.run_effects(self.engine.on_connect_failed(target))
            return
        self.run_effects(self.engine.on_connected(target))

    async def close(self) -> None:
        await self._shutdown_runner()
        if self._proxy_client is not None:
            await self._proxy_client.close()
            self._proxy_client = None
        for client in self._group_clients.values():
            await client.close()
        self._group_clients.clear()
        self._server_home.clear()

    # -- operations --------------------------------------------------------------

    async def put(self, key: str, value: Any) -> OperationOutcome:
        """Write ``value`` to ``key`` through the key's register."""
        return await self._run_op(OpKind.WRITE, key, value)

    async def get(self, key: str) -> Any:
        """Read ``key``; returns the value (``None`` if never written)."""
        outcome = await self._run_op(OpKind.READ, key)
        return outcome.value

    async def multi_get(self, keys: Sequence[str]) -> Dict[str, Any]:
        """Read many keys concurrently (same-group keys share batch rounds)."""
        values = await asyncio.gather(*(self.get(key) for key in keys))
        return dict(zip(keys, values))

    async def multi_put(self, items: Mapping[str, Any]) -> None:
        """Write many keys concurrently (same-group keys share batch rounds)."""
        pairs = list(items.items())
        await asyncio.gather(*(self.put(key, value) for key, value in pairs))

    async def _run_op(self, kind: OpKind, key: str, value: Any = None) -> OperationOutcome:
        engine = self.engine  # raises if not connected
        future = asyncio.get_running_loop().create_future()
        op_id, effects = engine.invoke(kind, key, value)
        self._op_futures[op_id] = future
        self.run_effects(effects)
        try:
            return await future
        finally:
            self._op_futures.pop(op_id, None)

    # -- effect execution hooks --------------------------------------------------

    def _writer_for(self, destination: str) -> Optional[asyncio.StreamWriter]:
        link = self._proxy_client
        if link is not None and destination == link.proxy_id:
            return link.writer
        group_client = self._server_home.get(destination)
        if group_client is not None:
            return group_client.writer_for(destination)
        return None

    def _on_operation(self, effect) -> None:
        future = self._op_futures.pop(effect.op_id, None)
        if future is None or future.done():
            return
        if isinstance(effect, OpFailed):
            future.set_exception(effect.error)
            return
        future.set_result(effect.outcome)
        if self.completion_hook is not None:
            self.completion_hook()

    # -- introspection -----------------------------------------------------------

    def batch_stats(self) -> BatchStats:
        """This store's own coalescing/frame statistics (direct connections
        or the proxy connection, whichever is in use -- each frame counted
        once, so stores and proxies merge without double-counting)."""
        if self._engine is None:
            return BatchStats()
        return self._engine.stats.copy()

    def frames_sent(self) -> int:
        return self.batch_stats().frames_sent

    def frames_total(self) -> int:
        """Request frames sent plus ack frames received -- the same counting
        the simulator's ``Network.sent_count`` uses, so the two backends'
        message numbers are comparable."""
        return self.batch_stats().frames_total

    def histories(self):
        return self.recorder.histories()

    def check(self) -> PerKeyAtomicity:
        """Per-key atomicity verdict over everything this store recorded."""
        return check_per_key_atomicity(self.histories())


class SyncKVStore:
    """Synchronous facade: a private cluster + store on a background loop.

    Starts its own :class:`AsyncKVCluster` and :class:`KVStore` on a daemon
    event-loop thread, so plain synchronous code can use the sharded store
    without touching asyncio::

        with SyncKVStore(num_shards=4, num_groups=2) as store:
            store.put("user:7", "ada")
            store.resize(8)                      # live rebalance
            assert store.get("user:7") == "ada"
    """

    def __init__(
        self,
        num_shards: int = 2,
        protocol_key: str = "abd-mwmr",
        servers_per_shard: int = 3,
        max_faults: int = 1,
        max_batch: int = 8,
        client_id: str = "kv-sync",
        shard_map: Optional[ShardMap] = None,
        num_groups: Optional[int] = None,
    ) -> None:
        self._loop_thread = LoopThread()
        if shard_map is None:
            shard_map = ShardMap(
                num_shards,
                protocol_key=protocol_key,
                servers_per_shard=servers_per_shard,
                max_faults=max_faults,
                num_groups=num_groups,
            )
        self._cluster = AsyncKVCluster(shard_map)
        self._store = KVStore(self._cluster, client_id=client_id, max_batch=max_batch)
        self._closed = False
        try:
            self._loop_thread.call(self._setup())
        except BaseException:
            # Construction failed: tear down whatever started so the loop
            # thread (and any bound replicas) do not outlive the exception.
            self._closed = True
            try:
                self._loop_thread.call(self._teardown(), timeout=10.0)
            except Exception:
                pass
            self._loop_thread.stop()
            raise

    async def _setup(self) -> None:
        await self._cluster.start()
        await self._store.connect()

    # -- synchronous API ---------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        self._loop_thread.call(self._store.put(key, value))

    def get(self, key: str) -> Any:
        return self._loop_thread.call(self._store.get(key))

    def multi_get(self, keys: Sequence[str]) -> Dict[str, Any]:
        return self._loop_thread.call(self._store.multi_get(keys))

    def multi_put(self, items: Mapping[str, Any]) -> None:
        self._loop_thread.call(self._store.multi_put(items))

    def resize(self, new_num_shards: int) -> MigrationReport:
        """Live-resize the ring and wait for its drain to complete.

        The async cluster drains in the background; a synchronous caller
        has nothing else to overlap with, so block until the report's data
        counters are final -- the old synchronous contract.
        """

        async def _do() -> MigrationReport:
            report = self._cluster.resize(new_num_shards)
            await self._cluster.flush_migrations()
            return report

        return self._loop_thread.call(_do())

    def move_shard(self, shard_id: str, group_id: str) -> MigrationReport:
        """Live-move one shard onto another replica group (blocking)."""

        async def _do() -> MigrationReport:
            report = self._cluster.move_shard(shard_id, group_id)
            await self._cluster.flush_migrations()
            return report

        return self._loop_thread.call(_do())

    def batch_stats(self) -> BatchStats:
        return self._store.batch_stats()

    def check(self) -> PerKeyAtomicity:
        return self._store.check()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._loop_thread.call(self._teardown())
        finally:
            self._loop_thread.stop()

    async def _teardown(self) -> None:
        await self._store.close()
        await self._cluster.stop()
        # Let the replicas' per-connection handler tasks observe EOF and
        # finish before the loop thread is stopped, else they die mid-await.
        pending = [
            task
            for task in asyncio.all_tasks()
            if task is not asyncio.current_task()
        ]
        if pending:
            await asyncio.wait(pending, timeout=1.0)

    def __enter__(self) -> "SyncKVStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_asyncio_kv_workload(
    workload: KVWorkload,
    num_shards: int = 2,
    protocol_key: str = "abd-mwmr",
    servers_per_shard: int = 3,
    max_faults: int = 1,
    max_batch: int = 8,
    shard_map: Optional[ShardMap] = None,
    service_overhead: float = 0.0,
    service_per_op: float = 0.0,
    num_groups: Optional[int] = None,
    resize_to: Optional[int] = None,
    resize_after_ops: Optional[int] = None,
    use_proxy: bool = False,
    num_proxies: int = 1,
    read_policy: Optional[ReadRoutingPolicy] = None,
    proxy_max_batch: int = 64,
    push_views: bool = True,
    delta_views: bool = True,
    kill_proxy_after_ops: Optional[int] = None,
    retry_policy: Optional[RetryPolicy] = None,
    trace_collector: Optional[TraceCollector] = None,
    autoscale: bool = False,
    drain_range_size: int = DRAIN_RANGE_SIZE,
    autoscale_interval: float = NET_AUTOSCALE_INTERVAL,
    read_cache: int = 0,
    lease_ttl: float = NET_LEASE_TTL,
    bounded_staleness: bool = False,
) -> KVRunResult:
    """Run a closed-loop kv workload over loopback TCP and collect results.

    Every workload client becomes one :class:`KVStore` (its own connections
    and batching), all sharing one replica cluster and one history recorder.
    ``resize_to`` triggers a *live* resize once ``resize_after_ops``
    operations completed (default: half the workload), with the remaining
    operations still in flight.  ``use_proxy`` starts ``num_proxies``
    ingress proxies and routes every store through one (round-robin), with
    reads routed per ``read_policy``.  ``push_views`` has the control plane
    push the shard-map view to every proxy at each rebalance (off: the
    proxies rely purely on stale-epoch bounces), as O(moved) deltas unless
    ``delta_views`` is off.  ``kill_proxy_after_ops`` kills one proxy per
    site once that many operations completed -- the stores behind it fail
    over (next proxy of the site, else direct replica connections) with no
    client-visible errors.  ``retry_policy`` tunes the reconnect/failover
    windows of every component in the run.  ``trace_collector`` subscribes a
    :class:`~repro.observe.trace.TraceCollector` to the run's observer hub
    so cross-tier span trees can be reconstructed afterwards.

    ``read_cache`` (requires ``use_proxy``) gives every proxy an LRU read
    cache of that many entries, backed by server-granted leases of
    ``lease_ttl`` wall-clock seconds; ``bounded_staleness`` lets expired
    (but not invalidated) entries serve reads for another half-``lease_ttl``
    instead of guaranteeing atomicity.
    """
    clients = workload.clients
    if shard_map is None:
        shard_map = ShardMap(
            num_shards,
            protocol_key=protocol_key,
            servers_per_shard=servers_per_shard,
            max_faults=max_faults,
            readers=len(clients),
            writers=len(clients),
            num_groups=num_groups,
        )

    async def _run() -> KVRunResult:
        cluster = AsyncKVCluster(
            shard_map,
            service_overhead=service_overhead,
            service_per_op=service_per_op,
            retry_policy=retry_policy,
            push_views=push_views,
            delta_views=delta_views,
            trace_collector=trace_collector,
            drain_range_size=drain_range_size,
            autoscale_interval=autoscale_interval,
            lease_ttl=lease_ttl,
        )
        await cluster.start()
        if use_proxy:
            await cluster.start_proxies(
                num_proxies, read_policy=read_policy, max_batch=proxy_max_batch,
                read_cache=read_cache, bounded_staleness=bounded_staleness,
            )
        if autoscale:
            cluster.start_autoscaler()
        base = time.monotonic()
        recorder = KVHistoryRecorder(lambda: time.monotonic() - base)
        stores: Dict[str, KVStore] = {}

        hooks: List[Any] = []
        resize_info: Optional[Dict[str, object]] = None
        if resize_to is not None:
            resize_hook, resize_info = make_resize_trigger(
                cluster.resize,
                lambda: recorder.completed_operations,
                resize_to,
                resize_after_ops
                if resize_after_ops is not None
                else max(1, workload.total_operations() // 2),
            )
            hooks.append(resize_hook)

        kill_record: Dict[str, object] = {}
        kill_tasks: "set[asyncio.Task]" = set()
        if kill_proxy_after_ops is not None and use_proxy:

            def kill(victim: str) -> None:
                # Keep a strong reference: the loop holds tasks weakly, and
                # a collected kill task would silently never sever the proxy.
                task = asyncio.get_running_loop().create_task(
                    cluster.kill_proxy(victim)
                )
                kill_tasks.add(task)
                task.add_done_callback(kill_tasks.discard)

            kill_hook, kill_record = make_proxy_kill_trigger(
                lambda: recorder.completed_operations,
                kill_proxy_after_ops,
                lambda: pick_one_proxy_per_site(
                    [(pid, proxy.site, proxy.running)
                     for pid, proxy in cluster.proxies.items()]
                ),
                kill,
            )
            hooks.append(kill_hook)

        def run_hooks() -> None:
            for hook in hooks:
                hook()

        try:
            for client_id in clients:
                store = KVStore(
                    cluster,
                    client_id=client_id,
                    max_batch=max_batch,
                    recorder=recorder,
                    use_proxy=True if use_proxy else None,
                )
                store.completion_hook = run_hooks if hooks else None
                await store.connect()
                stores[client_id] = store

            async def client_loop(client_id: str) -> None:
                store = stores[client_id]
                queue = list(workload.sequences[client_id])
                depth = max(1, workload.pipeline_depth)

                async def worker() -> None:
                    while queue:
                        op = queue.pop(0)
                        if op.kind == "put":
                            await store.put(op.key, op.value)
                        else:
                            await store.get(op.key)

                await asyncio.gather(*(worker() for _ in range(depth)))

            started = time.monotonic()
            await asyncio.gather(*(client_loop(client_id) for client_id in clients))
            duration = time.monotonic() - started
            if autoscale:
                cluster.stop_autoscaler()
            # A resize trigger (or a late autoscale move) may still be
            # draining in the background; finish it before teardown so the
            # reports' counters are final and no drain frame races stop().
            await cluster.flush_migrations()
            batch_stats = BatchStats()
            stale = 0
            failovers = 0
            for store in stores.values():
                batch_stats.merge(store.batch_stats())
                stale += store.stale_replays
                failovers += store.proxy_failovers
            proxy_stats: Optional[BatchStats] = None
            pushes_applied = 0
            proxies_used = len(cluster.proxies)
            read_subs = 0
            backoffs = 0
            cache_counters: Optional[Dict[str, int]] = None
            if cluster.proxies:
                proxy_stats = BatchStats()
                for proxy in cluster.proxies.values():
                    proxy_stats.merge(proxy.batch_stats())
                    stale += proxy.stale_replays
                    pushes_applied += proxy.view.pushes_applied
                    read_subs += proxy.engine.read_subs_sent
                    backoffs += proxy.engine.drain_backoffs
                if read_cache:
                    logics = cluster.server_logics.values()
                    proxy_engines = [p.engine for p in cluster.proxies.values()]
                    cache_counters = {
                        "hits": sum(e.cache_hits for e in proxy_engines),
                        "misses": sum(e.cache_misses for e in proxy_engines),
                        "invalidations": sum(
                            e.cache_invalidations for e in proxy_engines
                        ),
                        "proxy_lease_expiries": sum(
                            e.leases_expired for e in proxy_engines
                        ),
                        "leases_granted": sum(l.leases_granted for l in logics),
                        "lease_expiries": sum(l.leases_expired for l in logics),
                        "write_deferrals": sum(l.write_deferrals for l in logics),
                    }
            replica_frames = sum(
                logic.batches_served for logic in cluster.server_logics.values()
            )
            replica_sub_ops = sum(
                logic.sub_ops_served for logic in cluster.server_logics.values()
            )
            bounces = sum(
                logic.stale_bounces for logic in cluster.server_logics.values()
            )
            frames = batch_stats.frames_total + (
                proxy_stats.frames_total if proxy_stats is not None else 0
            )
        finally:
            for store in stores.values():
                await store.close()
            await cluster.stop()
            # Let the replicas' per-connection handler tasks observe EOF and
            # finish before asyncio.run tears the loop down around them.
            draining = [
                task
                for task in asyncio.all_tasks()
                if task is not asyncio.current_task()
            ]
            if draining:
                await asyncio.wait(draining, timeout=1.0)

        histories = recorder.histories()
        result = KVRunResult(
            backend="asyncio",
            num_shards=len(shard_map),
            max_batch=max_batch,
            histories=histories,
            duration=duration,
            completed_ops=recorder.completed_operations,
            messages_sent=frames,
            batch_stats=batch_stats,
            num_groups=len(shard_map.groups),
            stale_replays=stale,
            resize=resize_info,
            num_proxies=proxies_used,
            proxy_stats=proxy_stats,
            replica_frames=replica_frames,
            replica_sub_ops=replica_sub_ops,
            proxy_failovers=failovers,
            view_pushes=pushes_applied,
            proxy_kill=kill_record or None,
            stale_bounces=bounces,
            drain_backoffs=backoffs,
            replica_read_subs=read_subs,
            cache=cache_counters,
            metrics=cluster.metrics.snapshot(),
            autoscale=(
                {
                    "actions": [
                        {k: v for k, v in action.items() if k != "report"}
                        for action in cluster.control.autoscale_actions
                    ],
                    "drains_completed": cluster.control.drains_completed,
                    "ranges_drained": cluster.control.ranges_drained,
                }
                if autoscale
                else None
            ),
        )
        for history in histories.values():
            result.read_latencies.extend(
                op.latency for op in history.reads if op.latency is not None
            )
            result.write_latencies.extend(
                op.latency for op in history.writes if op.latency is not None
            )
        return result

    return run_sync(_run())
