"""The key-value store on the real asyncio TCP transport.

The same shard layout and batch frames as the simulator backend, over real
sockets:

* :class:`AsyncKVCluster` starts one :class:`~repro.asyncio_net.server.ReplicaServer`
  per shard replica, each hosting a multi-key :class:`~repro.kvstore.batching.BatchShardServer`.
* :class:`AsyncShardClient` owns one connection per replica of one shard and
  coalesces sub-requests submitted in the same event-loop tick (or up to
  ``max_batch``) into one batch frame per replica -- ``multi_get``/``multi_put``
  and pipelined workloads batch naturally.
* :class:`KVStore` is the client facade: ``await get/put/multi_get/multi_put``.
* :class:`SyncKVStore` wraps a :class:`KVStore` for synchronous callers via a
  background event-loop thread.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import ProtocolError
from ..core.operations import OpKind, new_op_id
from ..protocols.base import Broadcast, ClientLogic, OperationOutcome
from ..sim.messages import BATCH_ACK_KIND, Message, make_batch, unpack_batch_ack
from ..asyncio_net.codec import read_frame, write_frame
from ..asyncio_net.server import ReplicaServer
from .batching import BatchShardServer, BatchStats
from .perkey import KVHistoryRecorder, PerKeyAtomicity, check_per_key_atomicity
from .sharding import ShardMap, ShardSpec
from .workload import KVRunResult, KVWorkload
from ._sync import LoopThread, run_sync

__all__ = ["AsyncKVCluster", "AsyncShardClient", "KVStore", "SyncKVStore",
           "run_asyncio_kv_workload"]


class AsyncKVCluster:
    """All shard replicas of a :class:`ShardMap` listening on loopback TCP."""

    def __init__(
        self,
        shard_map: ShardMap,
        host: str = "127.0.0.1",
        service_overhead: float = 0.0,
        service_per_op: float = 0.0,
    ) -> None:
        self.shard_map = shard_map
        self.host = host
        self.service_overhead = service_overhead
        self.service_per_op = service_per_op
        self.replicas: Dict[str, ReplicaServer] = {}
        self._endpoints: Dict[str, Dict[str, Tuple[str, int]]] = {}

    async def start(self) -> None:
        for spec in self.shard_map.shards.values():
            endpoints: Dict[str, Tuple[str, int]] = {}
            for server_id in spec.servers:
                replica = ReplicaServer(
                    BatchShardServer(server_id, spec.protocol),
                    host=self.host,
                    service_overhead=self.service_overhead,
                    service_per_op=self.service_per_op,
                )
                await replica.start()
                self.replicas[server_id] = replica
                endpoints[server_id] = (replica.host, replica.port)
            self._endpoints[spec.shard_id] = endpoints

    async def stop(self) -> None:
        for replica in self.replicas.values():
            await replica.stop()
        self.replicas.clear()
        self._endpoints.clear()

    def endpoints_for(self, shard_id: str) -> Dict[str, Tuple[str, int]]:
        return dict(self._endpoints[shard_id])


@dataclass
class _PendingRound:
    """One round-trip of one operation, awaiting its quorum of sub-replies."""

    op_id: str
    round_trip: int
    key: str
    request: Broadcast
    wait_for: int
    replies: List[Message] = field(default_factory=list)
    ready: asyncio.Event = field(default_factory=asyncio.Event)
    error: Optional[BaseException] = None

    def fail(self, exc: BaseException) -> None:
        self.error = exc
        self.ready.set()


class AsyncShardClient:
    """Connections to one shard's replicas, with batch coalescing.

    Sub-requests submitted while the event loop is busy (same tick) ride the
    same batch frame; a frame is also cut as soon as ``max_batch``
    sub-requests are pending.
    """

    def __init__(
        self,
        client_id: str,
        spec: ShardSpec,
        endpoints: Dict[str, Tuple[str, int]],
        max_batch: int = 8,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.client_id = client_id
        self.spec = spec
        self.endpoints = dict(endpoints)
        self.max_batch = max_batch
        self.batch_stats = BatchStats()
        self.frames_sent = 0
        self.frames_received = 0
        self._writers: Dict[str, asyncio.StreamWriter] = {}
        self._receive_tasks: List[asyncio.Task] = []
        self._send_tasks: "set[asyncio.Task]" = set()
        self._queue: List[_PendingRound] = []
        self._rounds: Dict[Tuple[str, int], _PendingRound] = {}
        self._flush_scheduled = False

    @property
    def quorum_size(self) -> int:
        return self.spec.quorum_size

    # -- connection management -------------------------------------------------

    async def connect(self) -> None:
        for server_id, (host, port) in self.endpoints.items():
            reader, writer = await asyncio.open_connection(host, port)
            self._writers[server_id] = writer
            self._receive_tasks.append(
                asyncio.create_task(self._receive_loop(reader))
            )

    async def close(self) -> None:
        for task in list(self._receive_tasks) + list(self._send_tasks):
            task.cancel()
        await asyncio.gather(
            *self._receive_tasks, *self._send_tasks, return_exceptions=True
        )
        self._receive_tasks.clear()
        self._send_tasks.clear()
        for writer in self._writers.values():
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
        self._writers.clear()

    # -- the round-trip primitive ----------------------------------------------

    async def round_trip(
        self, key: str, op_id: str, round_trip: int, request: Broadcast
    ) -> List[Message]:
        """Broadcast one sub-request (batched) and await its quorum."""
        wait_for = request.wait_for if request.wait_for is not None else self.quorum_size
        pending = _PendingRound(
            op_id=op_id,
            round_trip=round_trip,
            key=key,
            request=request,
            wait_for=wait_for,
        )
        self._rounds[(op_id, round_trip)] = pending
        self._submit(pending)
        try:
            await pending.ready.wait()
        finally:
            self._rounds.pop((op_id, round_trip), None)
        if pending.error is not None:
            raise pending.error
        return list(pending.replies[:wait_for])

    def _submit(self, pending: _PendingRound) -> None:
        self._queue.append(pending)
        if len(self._queue) >= self.max_batch:
            self._flush()
        elif not self._flush_scheduled:
            self._flush_scheduled = True
            asyncio.get_running_loop().call_soon(self._flush)

    def _flush(self) -> None:
        self._flush_scheduled = False
        if not self._queue:
            return
        batch, self._queue = self._queue[: self.max_batch], self._queue[self.max_batch :]
        if self._queue and not self._flush_scheduled:
            self._flush_scheduled = True
            asyncio.get_running_loop().call_soon(self._flush)
        self.batch_stats.record(len(batch))
        task = asyncio.create_task(self._send_batch(batch))
        self._send_tasks.add(task)
        task.add_done_callback(self._send_tasks.discard)

    async def _send_batch(self, batch: List[_PendingRound]) -> None:
        async def send_to(server_id: str, writer: asyncio.StreamWriter) -> None:
            subs = [
                (
                    pending.key,
                    Message(
                        sender=self.client_id,
                        receiver=server_id,
                        kind=pending.request.kind,
                        payload=pending.request.payload_for(server_id),
                        op_id=pending.op_id,
                        round_trip=pending.round_trip,
                    ),
                )
                for pending in batch
            ]
            await write_frame(writer, make_batch(self.client_id, server_id, subs))
            self.frames_sent += 1

        # Writes go out concurrently so one backpressured replica cannot
        # delay the frames for the rest of the quorum.
        results = await asyncio.gather(
            *(send_to(server_id, writer) for server_id, writer in self._writers.items()),
            return_exceptions=True,
        )
        failures = [r for r in results if isinstance(r, BaseException)]
        if not failures:
            return
        # A round survives a minority of failed sends (quorum still
        # reachable); when too few frames went out -- or none, as when the
        # frame exceeds MAX_FRAME_BYTES -- fail the waiters instead of
        # letting them block forever.
        successes = len(results) - len(failures)
        for pending in batch:
            if successes < pending.wait_for:
                pending.fail(failures[0])

    async def _receive_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                message = await read_frame(reader)
                self.frames_received += 1
                if message.kind != BATCH_ACK_KIND:
                    continue
                for _key, sub in unpack_batch_ack(message):
                    if sub is None:
                        continue
                    pending = self._rounds.get((sub.op_id, sub.round_trip))
                    if pending is None:
                        continue  # straggler from a completed round-trip
                    pending.replies.append(sub)
                    if len(pending.replies) >= pending.wait_for:
                        pending.ready.set()
        except (asyncio.IncompleteReadError, ConnectionResetError, asyncio.CancelledError):
            return


class KVStore:
    """The async client facade of the sharded store.

    One store instance represents one logical client: operations on the same
    key are serialized per key (keeping per-key sub-histories well-formed)
    while operations on different keys run concurrently and share batch
    rounds whenever they hash to the same shard.
    """

    def __init__(
        self,
        cluster: AsyncKVCluster,
        client_id: str = "kv1",
        max_batch: int = 8,
        recorder: Optional[KVHistoryRecorder] = None,
    ) -> None:
        self.cluster = cluster
        self.client_id = client_id
        self.max_batch = max_batch
        base = time.monotonic()
        self.recorder = recorder or KVHistoryRecorder(lambda: time.monotonic() - base)
        self._shard_clients: Dict[str, AsyncShardClient] = {}
        self._key_locks: Dict[str, asyncio.Lock] = {}
        self._readers: Dict[str, ClientLogic] = {}
        self._writers: Dict[str, ClientLogic] = {}

    async def connect(self) -> None:
        for spec in self.cluster.shard_map.shards.values():
            client = AsyncShardClient(
                self.client_id,
                spec,
                self.cluster.endpoints_for(spec.shard_id),
                max_batch=self.max_batch,
            )
            await client.connect()
            self._shard_clients[spec.shard_id] = client

    async def close(self) -> None:
        for client in self._shard_clients.values():
            await client.close()
        self._shard_clients.clear()

    # -- operations -------------------------------------------------------------

    async def put(self, key: str, value: Any) -> OperationOutcome:
        """Write ``value`` to ``key`` through the key's register."""
        return await self._run_op(OpKind.WRITE, key, value)

    async def get(self, key: str) -> Any:
        """Read ``key``; returns the value (``None`` if never written)."""
        outcome = await self._run_op(OpKind.READ, key)
        return outcome.value

    async def multi_get(self, keys: Sequence[str]) -> Dict[str, Any]:
        """Read many keys concurrently (same-shard keys share batch rounds)."""
        values = await asyncio.gather(*(self.get(key) for key in keys))
        return dict(zip(keys, values))

    async def multi_put(self, items: Mapping[str, Any]) -> None:
        """Write many keys concurrently (same-shard keys share batch rounds)."""
        pairs = list(items.items())
        await asyncio.gather(*(self.put(key, value) for key, value in pairs))

    # -- internals --------------------------------------------------------------

    def _logic_for(self, kind: OpKind, key: str, spec: ShardSpec) -> ClientLogic:
        cache = self._writers if kind is OpKind.WRITE else self._readers
        logic = cache.get(key)
        if logic is None:
            if kind is OpKind.WRITE:
                logic = spec.protocol.make_writer(self.client_id)
            else:
                logic = spec.protocol.make_reader(self.client_id)
            cache[key] = logic
        return logic

    async def _run_op(self, kind: OpKind, key: str, value: Any = None) -> OperationOutcome:
        spec = self.cluster.shard_map.shard_for(key)
        shard_client = self._shard_clients.get(spec.shard_id)
        if shard_client is None:
            raise RuntimeError("KVStore is not connected; call connect() first")
        lock = self._key_locks.setdefault(key, asyncio.Lock())
        async with lock:
            op_id = new_op_id(f"{self.client_id}-{kind.value}")
            self.recorder.record_invocation(key, op_id, self.client_id, kind, value=value)
            logic = self._logic_for(kind, key, spec)
            generator = (
                logic.write_protocol(value) if kind is OpKind.WRITE else logic.read_protocol()
            )
            round_trip = 0
            try:
                request = next(generator)
                while True:
                    round_trip += 1
                    replies = await shard_client.round_trip(key, op_id, round_trip, request)
                    request = generator.send(replies)
            except StopIteration as stop:
                outcome = stop.value
            if not isinstance(outcome, OperationOutcome):
                raise ProtocolError("operation generator must return an OperationOutcome")
            self.recorder.record_response(
                op_id, value=outcome.value, tag=outcome.tag, round_trips=round_trip
            )
            return outcome

    # -- introspection ----------------------------------------------------------

    def batch_stats(self) -> BatchStats:
        merged = BatchStats()
        for client in self._shard_clients.values():
            merged.merge(client.batch_stats)
        return merged

    def frames_sent(self) -> int:
        return sum(client.frames_sent for client in self._shard_clients.values())

    def frames_total(self) -> int:
        """Request frames sent plus ack frames received -- the same counting
        the simulator's ``Network.sent_count`` uses, so the two backends'
        message numbers are comparable."""
        return sum(
            client.frames_sent + client.frames_received
            for client in self._shard_clients.values()
        )

    def histories(self):
        return self.recorder.histories()

    def check(self) -> PerKeyAtomicity:
        """Per-key atomicity verdict over everything this store recorded."""
        return check_per_key_atomicity(self.histories())


class SyncKVStore:
    """Synchronous facade: a private cluster + store on a background loop.

    Starts its own :class:`AsyncKVCluster` and :class:`KVStore` on a daemon
    event-loop thread, so plain synchronous code can use the sharded store
    without touching asyncio::

        with SyncKVStore(num_shards=2) as store:
            store.put("user:7", "ada")
            assert store.get("user:7") == "ada"
    """

    def __init__(
        self,
        num_shards: int = 2,
        protocol_key: str = "abd-mwmr",
        servers_per_shard: int = 3,
        max_faults: int = 1,
        max_batch: int = 8,
        client_id: str = "kv-sync",
        shard_map: Optional[ShardMap] = None,
    ) -> None:
        self._loop_thread = LoopThread()
        if shard_map is None:
            shard_map = ShardMap(
                num_shards,
                protocol_key=protocol_key,
                servers_per_shard=servers_per_shard,
                max_faults=max_faults,
            )
        self._cluster = AsyncKVCluster(shard_map)
        self._store = KVStore(self._cluster, client_id=client_id, max_batch=max_batch)
        self._closed = False
        try:
            self._loop_thread.call(self._setup())
        except BaseException:
            # Construction failed: tear down whatever started so the loop
            # thread (and any bound replicas) do not outlive the exception.
            self._closed = True
            try:
                self._loop_thread.call(self._teardown(), timeout=10.0)
            except Exception:
                pass
            self._loop_thread.stop()
            raise

    async def _setup(self) -> None:
        await self._cluster.start()
        await self._store.connect()

    # -- synchronous API ---------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        self._loop_thread.call(self._store.put(key, value))

    def get(self, key: str) -> Any:
        return self._loop_thread.call(self._store.get(key))

    def multi_get(self, keys: Sequence[str]) -> Dict[str, Any]:
        return self._loop_thread.call(self._store.multi_get(keys))

    def multi_put(self, items: Mapping[str, Any]) -> None:
        self._loop_thread.call(self._store.multi_put(items))

    def batch_stats(self) -> BatchStats:
        return self._store.batch_stats()

    def check(self) -> PerKeyAtomicity:
        return self._store.check()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._loop_thread.call(self._teardown())
        finally:
            self._loop_thread.stop()

    async def _teardown(self) -> None:
        await self._store.close()
        await self._cluster.stop()
        # Let the replicas' per-connection handler tasks observe EOF and
        # finish before the loop thread is stopped, else they die mid-await.
        pending = [
            task
            for task in asyncio.all_tasks()
            if task is not asyncio.current_task()
        ]
        if pending:
            await asyncio.wait(pending, timeout=1.0)

    def __enter__(self) -> "SyncKVStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_asyncio_kv_workload(
    workload: KVWorkload,
    num_shards: int = 2,
    protocol_key: str = "abd-mwmr",
    servers_per_shard: int = 3,
    max_faults: int = 1,
    max_batch: int = 8,
    shard_map: Optional[ShardMap] = None,
    service_overhead: float = 0.0,
    service_per_op: float = 0.0,
) -> KVRunResult:
    """Run a closed-loop kv workload over loopback TCP and collect results.

    Every workload client becomes one :class:`KVStore` (its own connections
    and batching), all sharing one replica cluster and one history recorder.
    """
    clients = workload.clients
    if shard_map is None:
        shard_map = ShardMap(
            num_shards,
            protocol_key=protocol_key,
            servers_per_shard=servers_per_shard,
            max_faults=max_faults,
            readers=len(clients),
            writers=len(clients),
        )

    async def _run() -> KVRunResult:
        cluster = AsyncKVCluster(
            shard_map,
            service_overhead=service_overhead,
            service_per_op=service_per_op,
        )
        await cluster.start()
        base = time.monotonic()
        recorder = KVHistoryRecorder(lambda: time.monotonic() - base)
        stores: Dict[str, KVStore] = {}
        try:
            for client_id in clients:
                store = KVStore(
                    cluster, client_id=client_id, max_batch=max_batch, recorder=recorder
                )
                await store.connect()
                stores[client_id] = store

            async def client_loop(client_id: str) -> None:
                store = stores[client_id]
                queue = list(workload.sequences[client_id])
                depth = max(1, workload.pipeline_depth)

                async def worker() -> None:
                    while queue:
                        op = queue.pop(0)
                        if op.kind == "put":
                            await store.put(op.key, op.value)
                        else:
                            await store.get(op.key)

                await asyncio.gather(*(worker() for _ in range(depth)))

            started = time.monotonic()
            await asyncio.gather(*(client_loop(client_id) for client_id in clients))
            duration = time.monotonic() - started
            batch_stats = BatchStats()
            frames = 0
            for store in stores.values():
                batch_stats.merge(store.batch_stats())
                frames += store.frames_total()
        finally:
            for store in stores.values():
                await store.close()
            await cluster.stop()

        histories = recorder.histories()
        result = KVRunResult(
            backend="asyncio",
            num_shards=len(shard_map),
            max_batch=max_batch,
            histories=histories,
            duration=duration,
            completed_ops=recorder.completed_operations,
            messages_sent=frames,
            batch_stats=batch_stats,
        )
        for history in histories.values():
            result.read_latencies.extend(
                op.latency for op in history.reads if op.latency is not None
            )
            result.write_latencies.extend(
                op.latency for op in history.writes if op.latency is not None
            )
        return result

    return run_sync(_run())
