"""The proxy engine: cross-client merging behind a cached shard view.

One :class:`ProxyEngine` is one site-local ingress proxy.  It holds no
register state: every pending entry is one in-flight quorum round, so a
proxy can be added or removed per site without any data migration.  Rounds
forwarded by *different clients* that resolve to the same replica group
coalesce into one shared batch frame per targeted replica -- the
cross-client merge the per-client batching layer cannot do.  Replica-bound
sub-messages keep the **originating client** as their sender (the
protocols' crucial-info bookkeeping is per client), while their op ids are
attempt-scoped so a replayed round can never mix replies from the pre- and
post-rebalance owner groups.

The engine consumes decoded frames -- ``"proxy"`` requests from clients,
``"batch-ack"`` replies from replicas, ``"view-push"`` frames from the
control plane -- plus timer fires and transport notifications, and emits
:mod:`~repro.kvstore.engine.effects`.  Stale-epoch bounces refresh the
:class:`~repro.kvstore.engine.routing.CachedShardView` and replay
transparently; view pushes (full or delta) are adopted through the same
view, so live rebalancing is handled *once* here for both backends.

With ``read_cache`` enabled the proxy also keeps a bounded (key -> quorum
replies) **read cache** backed by server-granted leases.  A read that
misses becomes the entry's *fill*: its sub-requests carry the lease mark,
each serving replica registers this proxy as a lease holder (confirmed by
a ``"lease-grant"`` frame ordered before the batch-ack), and the recorded
quorum replies of every round-trip are replayed verbatim to later reads of
the same key -- zero replica sub-ops per hit.  Atomicity rides the quorum
intersection: replicas defer (and withhold acks for) any write against a
leased key, so while grants from a write-blocking set of replicas stand,
no superseding write can complete, and a cached read linearizes before it.
``"lease-invalidate"`` frames evict the entry and trigger a
``"lease-release"``, unblocking the writer; the proxy self-expires entries
at half the lease TTL (clock-skew margin against the server-side expiry),
optionally serving expired-but-recent entries when ``bounded_staleness``
is on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ...observe.events import (
    BATCH_CUT,
    CACHE_HIT,
    CACHE_INVALIDATE,
    CACHE_MISS,
    FRAME_RECEIVED,
    FRAME_SENT,
    LEASE_EXPIRED,
    NULL_OBSERVER,
    ROUND_CLOSED,
    ROUND_OPENED,
    ROUND_REPLAYED,
    EngineObserver,
)
from ...messages import (
    BATCH_ACK_KIND,
    BATCH_KIND,
    DEFAULT_LEASE_TTL,
    LEASE_GRANT_KIND,
    LEASE_INVALIDATE_KIND,
    PROXY_KIND,
    VIEW_PUSH_ACK_KIND,
    VIEW_PUSH_KIND,
    Message,
    ProxySubReply,
    ProxySubRequest,
    SubRequest,
    make_batch,
    make_lease_release,
    make_proxy_ack,
    unpack_batch,
    unpack_batch_ack,
    unpack_lease_grant,
    unpack_lease_invalidate,
    unpack_proxy_request,
    unpack_view_push,
)
from .cache import CacheEntry, ReadCache, payload_fingerprint
from .effects import (
    DEFAULT_RETRY_POLICY,
    CancelTimer,
    Effect,
    RetryPolicy,
    SendFrame,
    StartTimer,
    TimerId,
)
from .routing import (
    BroadcastReads,
    CachedShardView,
    ProxyRoute,
    ReadRoutingPolicy,
    attempt_scoped_id,
    plan_round,
)
from .server import MAX_STALE_RETRIES, is_stale_reply
from .stats import BatchStats

__all__ = ["ProxyEngine"]


@dataclass
class _ProxyPending:
    """One forwarded round the proxy is driving against a replica group."""

    client: str
    sub: ProxySubRequest
    route: Optional[ProxyRoute] = None
    scoped_id: str = ""
    targets: Tuple[str, ...] = ()
    wait_for: int = 0
    replies: List[Message] = field(default_factory=list)
    lost_targets: Set[str] = field(default_factory=set)
    stale_retries: int = 0
    drain_backoffs: int = 0
    timeouts: int = 0
    transient_retries: int = 0
    queued: bool = False
    awaiting_retry: bool = False
    #: The cache entry this round is filling, if any.  Detached (set back to
    #: None) when the entry is evicted mid-flight; the round then completes
    #: as an ordinary leaseless read.
    fill_entry: Optional[CacheEntry] = None


class ProxyEngine:
    """One ingress proxy's protocol state machine (transport-agnostic)."""

    def __init__(
        self,
        proxy_id: str,
        view: CachedShardView,
        read_policy: Optional[ReadRoutingPolicy] = None,
        policy: Optional[RetryPolicy] = None,
        max_batch: int = 64,
        flush_delay: float = 0.0,
        observer: Optional[EngineObserver] = None,
        read_cache: int = 0,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        bounded_staleness: bool = False,
        read_round_trips: int = 2,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if read_cache < 0:
            raise ValueError("read_cache capacity cannot be negative")
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        if read_round_trips < 1:
            raise ValueError("read_round_trips must be positive")
        self.proxy_id = proxy_id
        self.view = view
        self.read_policy = read_policy or BroadcastReads()
        self.policy = policy or DEFAULT_RETRY_POLICY
        self.max_batch = max_batch
        self.flush_delay = flush_delay
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.stats = BatchStats()
        self.stale_replays = 0
        self.drain_backoffs = 0
        self._attempts = 0
        self._pending: Dict[Tuple[str, int], _ProxyPending] = {}
        self._queues: Dict[str, List[_ProxyPending]] = {}
        self._flush_scheduled: Set[str] = set()
        #: Monotonic fill counter: combined with the fill op id it makes
        #: each cache entry's lease nonce unique across this proxy's life.
        self._fill_seq = 0
        # -- read cache (0 capacity disables it entirely) -----------------------
        self._cache: Optional[ReadCache] = (
            ReadCache(read_cache) if read_cache else None
        )
        self.lease_ttl = lease_ttl
        self.bounded_staleness = bounded_staleness
        self.read_round_trips = read_round_trips
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_invalidations = 0
        self.leases_expired = 0
        #: Replica-bound sub-requests belonging to *read* ops -- the traffic
        #: the cache exists to remove (the benchmark's sub-ops/op metric).
        self.read_subs_sent = 0

    # -- admission and routing --------------------------------------------------

    def on_frame(self, message: Message) -> List[Effect]:
        out: List[Effect] = []
        if message.kind == PROXY_KIND:
            self.observer.emit(
                FRAME_RECEIVED, kind=PROXY_KIND, source=message.sender
            )
            for sub in unpack_proxy_request(message):
                self._admit(message.sender, sub, out)
        elif message.kind == BATCH_ACK_KIND:
            self._on_replica_ack(message, out)
        elif message.kind == LEASE_GRANT_KIND:
            self._on_lease_grant(message, out)
        elif message.kind == LEASE_INVALIDATE_KIND:
            self._on_lease_invalidate(message, out)
        elif message.kind == VIEW_PUSH_KIND:
            # Control-plane push at a live rebalance: adopt the fresh view
            # (snapshot or delta) so subsequent rounds route correctly on
            # the first attempt instead of paying a stale-epoch bounce
            # each, then ack so the pusher knows routing is current.
            self.view.apply_push(unpack_view_push(message))
            if self._cache is not None:
                # Entries whose key no longer routes to the group that
                # granted the lease cannot stay servable: the new owner
                # group knows nothing about our lease.
                for entry in self._cache.entries():
                    if not self._route_current(entry):
                        self._cache.pop(entry.key)
                        self._evict(entry, out, reason="route-changed")
            out.append(
                SendFrame(
                    message.sender,
                    Message(
                        sender=self.proxy_id,
                        receiver=message.sender,
                        kind=VIEW_PUSH_ACK_KIND,
                        payload={"ring_epoch": self.view.ring_epoch},
                    ),
                )
            )
        return out

    def _dispatch_safe(self, pending: _ProxyPending, out: List[Effect]) -> None:
        """Dispatch one round, turning any failure into an error ack.

        Anything unexpected (a routing bug, a policy raising, ...) must
        still produce an error ack: a swallowed dispatch exception would
        leave the downstream client awaiting a reply that never comes.
        """
        try:
            self._dispatch(pending, out)
        except Exception as exc:  # noqa: BLE001 - never strand a client
            self._finish(pending, out, error=f"{type(exc).__name__}: {exc}")

    # -- the read cache ---------------------------------------------------------

    def _admit(self, client: str, sub: ProxySubRequest, out: List[Effect]) -> None:
        """Route one forwarded round through the cache (when enabled)."""
        pending = _ProxyPending(client=client, sub=sub)
        cache = self._cache
        if cache is None:
            self._dispatch_safe(pending, out)
            return
        if sub.op_kind == "write":
            # Write-through: our own cached copy is about to be superseded,
            # and releasing *before* the write's rounds hit the replicas
            # (per-destination ordering again) keeps the write from
            # deferring against our own lease.
            entry = cache.pop(sub.key)
            if entry is not None:
                self._evict(entry, out, reason="local-write")
            self._dispatch_safe(pending, out)
            return
        if sub.op_kind != "read" or sub.per_server:
            self._dispatch_safe(pending, out)
            return
        entry = cache.get(sub.key)
        if entry is not None and not self._route_current(entry):
            cache.pop(sub.key)
            self._evict(entry, out, reason="route-changed")
            entry = None
        rt = sub.round_trip
        if entry is not None:
            if rt in entry.rounds:
                serves = (
                    self.bounded_staleness if entry.stale else entry.granted
                )
                replies = (
                    entry.replies_for(rt, sub.wait_for)
                    if serves and entry.matches(rt, sub)
                    else None
                )
                if replies is not None:
                    if rt == 1:
                        self.cache_hits += 1
                        self.observer.emit(
                            CACHE_HIT, op_id=sub.op_id, key=sub.key,
                            trace=sub.trace, stale=entry.stale,
                        )
                    self._serve_cached(client, sub, replies, out)
                    return
                self._dispatch_safe(pending, out)
                return
            if (entry.fill_client == client and entry.fill_op_id == sub.op_id
                    and not entry.stale):
                # The fill read's next round-trip: drive it with the lease
                # mark (replicas exempt it from deferral -- it can only
                # re-write the tag the lease already covers).
                entry.round_payloads[rt] = (
                    sub.kind, payload_fingerprint(sub.payload)
                )
                entry.inflight.add(rt)
                pending.fill_entry = entry
                entry.fill_pending = pending
                self._dispatch_safe(pending, out)
                return
            if not entry.stale and rt <= self.read_round_trips:
                # Single-flight: ride the fill already in the air instead of
                # opening a second identical quorum round.
                entry.followers.setdefault(rt, []).append((client, sub))
                if rt == 1:
                    self.cache_misses += 1
                    self.observer.emit(
                        CACHE_MISS, op_id=sub.op_id, key=sub.key,
                        trace=sub.trace, shared=True,
                    )
                return
            self._dispatch_safe(pending, out)
            return
        if rt != 1:
            # A later round of an op whose entry is gone (evicted mid-read):
            # complete it as an ordinary leaseless round.
            self._dispatch_safe(pending, out)
            return
        # Miss: this read becomes the fill.
        self.cache_misses += 1
        self.observer.emit(
            CACHE_MISS, op_id=sub.op_id, key=sub.key, trace=sub.trace
        )
        self._fill_seq += 1
        entry = CacheEntry(
            key=sub.key, fill_client=client, fill_op_id=sub.op_id,
            nonce=f"{sub.op_id}/{self._fill_seq}",
        )
        pending.fill_entry = entry
        entry.fill_pending = pending
        try:
            self._dispatch(pending, out)
        except Exception as exc:  # noqa: BLE001 - never strand a client
            pending.fill_entry = None
            entry.fill_pending = None
            self._finish(pending, out, error=f"{type(exc).__name__}: {exc}")
            return
        entry.route = pending.route
        entry.wait_for = pending.wait_for
        entry.round_payloads[1] = (sub.kind, payload_fingerprint(sub.payload))
        entry.inflight.add(1)
        displaced = cache.insert(sub.key, entry)
        if displaced is not None:
            self._evict(displaced, out, reason="capacity")
        # Self-expire at *half* the lease TTL: the server expires at the
        # full TTL from a later start (its serve time), so the margin
        # absorbs clock skew and frame latency -- the proxy always stops
        # serving before any replica stops deferring.
        out.append(StartTimer(("lease", sub.key), self.lease_ttl * 0.5))

    def _route_current(self, entry: CacheEntry) -> bool:
        """Whether the view still routes the entry's key where it was filled."""
        if entry.route is None:
            return True
        try:
            fresh = self.view.resolve(entry.key)
        except Exception:  # noqa: BLE001 - unresolvable == not current
            return False
        return (fresh.group_id == entry.route.group_id
                and fresh.epoch == entry.route.epoch)

    def _serve_cached(
        self,
        client: str,
        sub: ProxySubRequest,
        replies: List[Message],
        out: List[Effect],
    ) -> None:
        """Answer one round from the cache: no pending, no replica traffic."""
        self.observer.emit(
            ROUND_CLOSED, op_id=sub.op_id, key=sub.key, trace=sub.trace,
            cached=True,
        )
        sub_reply = ProxySubReply(
            op_id=sub.op_id,
            round_trip=sub.round_trip,
            replies=tuple(replies),
        )
        self.observer.emit(FRAME_SENT, kind="proxy-ack", dest=client)
        out.append(
            SendFrame(
                client, make_proxy_ack(self.proxy_id, client, [sub_reply])
            )
        )

    def _record_fill(
        self, entry: CacheEntry, pending: _ProxyPending, out: List[Effect]
    ) -> None:
        """A fill round completed: record its quorum and flush followers."""
        rt = pending.sub.round_trip
        entry.inflight.discard(rt)
        entry.rounds[rt] = list(pending.replies)
        for client, fsub in entry.followers.pop(rt, []):
            serves = self.bounded_staleness if entry.stale else entry.granted
            replies = (
                entry.replies_for(rt, fsub.wait_for)
                if serves and entry.matches(rt, fsub)
                else None
            )
            if replies is not None:
                self._serve_cached(client, fsub, replies, out)
            else:
                # The lease never reached a write-blocking quorum (or the
                # follower asked a different round): fall back to a plain
                # quorum round for this follower.
                self._dispatch_safe(
                    _ProxyPending(client=client, sub=fsub), out
                )

    def _evict(
        self, entry: CacheEntry, out: List[Effect], *, reason: str
    ) -> None:
        """Run the protocol side of dropping one cache entry.

        The caller has already removed (or never inserted) the map slot;
        this releases the lease at every route replica, detaches an
        in-flight fill, cancels the entry's timers, and re-dispatches any
        parked followers as ordinary rounds.
        """
        current = self._cache.peek(entry.key) if self._cache is not None else None
        if current is entry:
            self._cache.pop(entry.key)
        out.append(CancelTimer(("lease", entry.key)))
        if entry.stale:
            out.append(CancelTimer(("stale", entry.key)))
        pending = entry.fill_pending
        if pending is not None:
            entry.fill_pending = None
            pending.fill_entry = None
        if not entry.stale and entry.route is not None:
            # A stale entry already handed its lease back when it expired.
            self._release_lease(entry.route.servers, [entry.key], out)
        self.cache_invalidations += 1
        self.observer.emit(CACHE_INVALIDATE, key=entry.key, reason=reason)
        followers = entry.followers
        entry.followers = {}
        for subs in followers.values():
            for client, fsub in subs:
                self._dispatch_safe(_ProxyPending(client=client, sub=fsub), out)

    def _release_lease(
        self, servers: Tuple[str, ...], keys: List[str], out: List[Effect]
    ) -> None:
        for server_id in servers:
            self.observer.emit(
                FRAME_SENT, kind="lease-release", dest=server_id
            )
            out.append(
                SendFrame(
                    server_id,
                    make_lease_release(self.proxy_id, server_id, keys),
                )
            )

    def _on_lease_grant(self, message: Message, out: List[Effect]) -> None:
        self.observer.emit(
            FRAME_RECEIVED, kind=message.kind, source=message.sender
        )
        payload = unpack_lease_grant(message)
        orphaned: List[str] = []
        for key, nonce in zip(payload["keys"], payload["nonces"]):
            entry = self._cache.peek(key) if self._cache is not None else None
            if (entry is not None and not entry.stale
                    and entry.nonce == nonce
                    and entry.route is not None
                    and message.sender in entry.route.servers):
                entry.grants.add(message.sender)
            elif entry is None or entry.stale:
                # The entry died before the grant landed (eviction raced the
                # fill): hand the lease straight back so the replica does
                # not defer writers against a ghost holder for a full TTL.
                orphaned.append(key)
            # else: a delayed grant for an evicted *predecessor* entry of
            # the key crossed that entry's release on the wire.  Drop it --
            # crediting it would count a lease the replica is about to
            # clear, and releasing again could race ahead and clear the
            # live fill's fresh lease instead.  The predecessor's eviction
            # already sent the release that retires this grant's lease.
        if orphaned:
            self._release_lease((message.sender,), orphaned, out)

    def _on_lease_invalidate(self, message: Message, out: List[Effect]) -> None:
        self.observer.emit(
            FRAME_RECEIVED, kind=message.kind, source=message.sender
        )
        payload = unpack_lease_invalidate(message)
        unheld: List[str] = []
        for key in payload["keys"]:
            entry = self._cache.pop(key) if self._cache is not None else None
            if entry is not None:
                self._evict(entry, out, reason="invalidated")
            else:
                # Nothing cached here; answer anyway so the chasing
                # replica's deferral clears (releases are idempotent).
                unheld.append(key)
        if unheld:
            self._release_lease((message.sender,), unheld, out)

    def _dispatch(self, pending: _ProxyPending, out: List[Effect]) -> None:
        """Route one round (fresh or replayed) through the current view."""
        sub = pending.sub
        plan = plan_round(self.view, self.read_policy, self.proxy_id, sub)
        self._attempts += 1
        pending.route = plan.route
        pending.targets = plan.targets
        pending.wait_for = plan.wait_for
        pending.scoped_id = attempt_scoped_id(sub.op_id, self._attempts)
        pending.replies = []
        pending.lost_targets = set()
        pending.awaiting_retry = False
        self._pending[(pending.scoped_id, sub.round_trip)] = pending
        self.observer.emit(
            ROUND_OPENED, op_id=sub.op_id, key=sub.key, trace=sub.trace,
            round_trip=sub.round_trip, targets=len(plan.targets),
        )
        if self.policy.round_timeout is not None:
            # Bound the attempt: a targeted replica can die after the frame
            # left the socket (restrictive read policies only -- broadcast
            # rounds always have a live quorum), and on transports with
            # silent loss the timer turns that into a replay.
            out.append(
                StartTimer(self._round_timer(pending), self.policy.round_timeout)
            )
        group_id = plan.route.group_id
        queue = self._queues.setdefault(group_id, [])
        pending.queued = True
        queue.append(pending)
        if len(queue) >= self.max_batch:
            self._flush(group_id, out)
        elif group_id not in self._flush_scheduled:
            self._flush_scheduled.add(group_id)
            out.append(StartTimer(("flush", group_id), self.flush_delay))

    def _round_timer(self, pending: _ProxyPending) -> TimerId:
        return ("round", pending.scoped_id, pending.sub.round_trip)

    # -- the shared replica rounds ----------------------------------------------

    def _flush(self, group_id: str, out: List[Effect]) -> None:
        self._flush_scheduled.discard(group_id)
        queue = [
            p
            for p in self._queues.get(group_id, [])
            if self._pending.get((p.scoped_id, p.sub.round_trip)) is p
        ]
        if not queue:
            self._queues.pop(group_id, None)
            return
        batch, rest = queue[: self.max_batch], queue[self.max_batch :]
        self._queues[group_id] = rest
        if rest and group_id not in self._flush_scheduled:
            self._flush_scheduled.add(group_id)
            out.append(StartTimer(("flush", group_id), 0.0))
        for pending in batch:
            pending.queued = False
        self.stats.record(len(batch))
        self.observer.emit(BATCH_CUT, size=len(batch), queue=group_id)
        # One frame per replica targeted by at least one round of the batch;
        # reads restricted by the routing policy simply skip the far replicas.
        servers: List[str] = []
        seen: Set[str] = set()
        for pending in batch:
            for server in pending.targets:
                if server not in seen:
                    seen.add(server)
                    servers.append(server)
        for server_id in servers:
            subs = [
                SubRequest(
                    key=p.sub.key,
                    message=Message(
                        sender=p.client,
                        receiver=server_id,
                        kind=p.sub.kind,
                        payload=p.sub.payload_for(server_id),
                        op_id=p.scoped_id,
                        round_trip=p.sub.round_trip,
                        trace=p.sub.trace,
                    ),
                    shard=p.route.shard_id,
                    epoch=p.route.epoch,
                    # Evictions detach fills before this point, so the mark
                    # reflects the entry's liveness at flush time.
                    lease=(p.fill_entry.nonce if p.fill_entry is not None
                           else None),
                )
                for p in batch
                if server_id in p.targets
            ]
            self.read_subs_sent += sum(
                1 for p in batch
                if server_id in p.targets and p.sub.op_kind == "read"
            )
            self.stats.record_frames(sent=1)
            self.observer.emit(FRAME_SENT, kind=BATCH_KIND, dest=server_id)
            out.append(
                SendFrame(server_id, make_batch(self.proxy_id, server_id, subs))
            )

    # -- replica replies --------------------------------------------------------

    def _on_replica_ack(self, message: Message, out: List[Effect]) -> None:
        self.stats.record_frames(received=1)
        self.observer.emit(
            FRAME_RECEIVED, kind=BATCH_ACK_KIND, source=message.sender
        )
        for _key, reply in unpack_batch_ack(message):
            if reply is None or reply.op_id is None:
                continue
            pending = self._pending.get((reply.op_id, reply.round_trip))
            if pending is None or pending.awaiting_retry:
                continue  # straggler from a completed or replayed attempt
            if is_stale_reply(reply):
                self._replay(pending, out)
                continue
            pending.replies.append(reply)
            if len(pending.replies) == pending.wait_for:
                self._finish(pending, out)

    def _replay(self, pending: _ProxyPending, out: List[Effect]) -> None:
        """A replica fenced this round: refresh the view and re-route it."""
        if pending.fill_entry is not None:
            # A bounced fill means the key's range is moving: caching it
            # now would race the migration.  Drop the entry (releasing
            # whatever grants the partial fill collected) and let this
            # round -- and any parked followers -- replay leaseless.
            self._evict(pending.fill_entry, out, reason="stale-bounce")
        self.view.refresh()
        route = pending.route
        fresh = self.view.resolve(pending.sub.key)
        if (
            route is not None
            and fresh.group_id == route.group_id
            and fresh.epoch == route.epoch
        ):
            # The refreshed view still routes the key exactly where the
            # bounce came from, so the fence belongs to a *draining* key
            # range (donor fenced, receiver not yet installed) -- not to a
            # stale view.  Replaying immediately would spin against the
            # fence until the range installs; back off instead.
            pending.drain_backoffs += 1
            self.drain_backoffs += 1
            self.observer.emit(
                ROUND_REPLAYED, op_id=pending.sub.op_id, key=pending.sub.key,
                trace=pending.sub.trace, retries=pending.drain_backoffs,
                reason="drain-backoff",
            )
            if pending.drain_backoffs > self.policy.max_transient_retries:
                self._finish(
                    pending,
                    out,
                    error=(
                        "round bounced off a draining range "
                        f"{pending.drain_backoffs} times; the drain never "
                        "completed"
                    ),
                )
                return
            pending.awaiting_retry = True
            out.append(
                StartTimer(
                    ("pretry", pending.scoped_id, pending.sub.round_trip),
                    self.policy.drain_backoff_interval,
                )
            )
            return
        self._drop(pending, out)
        pending.stale_retries += 1
        self.stale_replays += 1
        self.observer.emit(
            ROUND_REPLAYED, op_id=pending.sub.op_id, key=pending.sub.key,
            trace=pending.sub.trace, retries=pending.stale_retries,
        )
        if pending.stale_retries > MAX_STALE_RETRIES:
            self._finish(
                pending,
                out,
                error=(
                    f"shard map never converged after {pending.stale_retries} "
                    "stale replays"
                ),
            )
            return
        self._dispatch(pending, out)

    def _drop(self, pending: _ProxyPending, out: List[Effect]) -> None:
        """Forget the current attempt (cancelling its round timer)."""
        if self._pending.pop((pending.scoped_id, pending.sub.round_trip), None):
            if self.policy.round_timeout is not None:
                out.append(CancelTimer(self._round_timer(pending)))

    def _finish(
        self, pending: _ProxyPending, out: List[Effect], error: Optional[str] = None
    ) -> None:
        self._drop(pending, out)
        entry = pending.fill_entry
        if entry is not None:
            pending.fill_entry = None
            if entry.fill_pending is pending:
                entry.fill_pending = None
            live = (
                self._cache is not None
                and self._cache.peek(pending.sub.key) is entry
            )
            if live:
                if error is None:
                    self._record_fill(entry, pending, out)
                else:
                    self._evict(entry, out, reason="fill-error")
        self.observer.emit(
            ROUND_CLOSED, op_id=pending.sub.op_id, key=pending.sub.key,
            trace=pending.sub.trace, error=error,
        )
        sub_reply = ProxySubReply(
            op_id=pending.sub.op_id,
            round_trip=pending.sub.round_trip,
            replies=tuple(pending.replies),
            error=error,
        )
        # Not counted in stats: proxy acks are tallied once, at the client
        # receiver (the counted-exactly-once invariant); the observer event
        # still records the frame leaving this component.
        self.observer.emit(FRAME_SENT, kind="proxy-ack", dest=pending.client)
        out.append(
            SendFrame(
                pending.client,
                make_proxy_ack(self.proxy_id, pending.client, [sub_reply]),
            )
        )

    # -- transport notifications ------------------------------------------------

    def on_frame_undeliverable(
        self, frame: Message, error: BaseException, retryable: bool = True
    ) -> List[Effect]:
        """A replica-bound batch frame could not be delivered."""
        out: List[Effect] = []
        if frame.kind != BATCH_KIND:
            return out
        # The frame never reached the wire: uncount it (replays count their
        # own frames), preserving the counted-exactly-once invariant.
        self.stats.record_frames(sent=-1)
        for sub in unpack_batch(frame):
            op_id, round_trip = sub.message.op_id, sub.message.round_trip
            pending = self._pending.get((op_id, round_trip)) if op_id else None
            if pending is None:
                continue
            self._lose_target(pending, frame.receiver, error, retryable, out)
        return out

    def on_peer_lost(self, server_id: str) -> List[Effect]:
        """A replica connection died terminally (reconnect gave up)."""
        out: List[Effect] = []
        for pending in list(self._pending.values()):
            if (
                not pending.queued
                and server_id in pending.targets
                and len(pending.replies) < pending.wait_for
            ):
                self._lose_target(
                    pending, server_id,
                    ConnectionError(f"replica {server_id} is unreachable"),
                    retryable=True, out=out,
                )
        return out

    def _lose_target(
        self,
        pending: _ProxyPending,
        server_id: str,
        error: BaseException,
        retryable: bool,
        out: List[Effect],
    ) -> None:
        if pending.awaiting_retry:
            return
        pending.lost_targets.add(server_id)
        reachable = len(pending.targets) - len(pending.lost_targets)
        if reachable >= pending.wait_for:
            return  # a quorum is still possible on the surviving targets
        if not retryable:
            self._finish(pending, out, error=f"{type(error).__name__}: {error}")
            return
        pending.transient_retries += 1
        if pending.transient_retries > self.policy.max_transient_retries:
            self._finish(pending, out, error=f"replica quorum unreachable: {error}")
            return
        # Wait out the reconnect window, then re-plan the idempotent round
        # (the redial may have landed by then, or the view moved on).
        pending.awaiting_retry = True
        out.append(
            StartTimer(
                ("pretry", pending.scoped_id, pending.sub.round_trip),
                self.policy.reconnect_interval,
            )
        )

    # -- timer fires ------------------------------------------------------------

    def on_timer(self, timer_id: TimerId) -> List[Effect]:
        out: List[Effect] = []
        kind = timer_id[0]
        if kind == "flush":
            self._flush(timer_id[1], out)
        elif kind == "lease":
            key = timer_id[1]
            entry = self._cache.peek(key) if self._cache is not None else None
            if entry is None or entry.stale:
                return out
            self.leases_expired += 1
            self.observer.emit(LEASE_EXPIRED, key=key)
            if (self.bounded_staleness and entry.granted
                    and entry.complete(self.read_round_trips)):
                # Bounded-staleness mode: hand the lease back (writers stop
                # blocking on us) but keep serving the expired entry for
                # one more half-TTL -- its age then stays under lease_ttl,
                # the bound the staleness checker verifies.
                entry.stale = True
                entry.grants.clear()
                if entry.route is not None:
                    self._release_lease(entry.route.servers, [key], out)
                out.append(StartTimer(("stale", key), self.lease_ttl * 0.5))
            else:
                self._evict(entry, out, reason="expired")
        elif kind == "stale":
            entry = self._cache.pop(timer_id[1]) if self._cache is not None else None
            if entry is not None:
                self._evict(entry, out, reason="staleness-budget")
        elif kind == "pretry":
            pending = self._pending.get((timer_id[1], timer_id[2]))
            if pending is not None and pending.awaiting_retry:
                self._drop(pending, out)
                self._dispatch(pending, out)
        elif kind == "round":
            pending = self._pending.get((timer_id[1], timer_id[2]))
            if pending is None or pending.queued or pending.awaiting_retry:
                return out
            # The attempt went silent: a targeted replica died after the
            # frame left the socket.  Replay the idempotent round -- the
            # redial may have landed by now -- or error the ack after
            # max_round_timeouts so the client is never left hanging.
            pending.timeouts += 1
            self._drop(pending, out)
            if pending.timeouts > self.policy.max_round_timeouts:
                self._finish(
                    pending,
                    out,
                    error=(
                        "round got no quorum within "
                        f"{pending.timeouts * self.policy.round_timeout:.0f}s; "
                        "with a restrictive read policy, give it spare >= the "
                        "fault budget to ride out crashed replicas"
                    ),
                )
            else:
                self._dispatch(pending, out)
        return out

    # -- lifecycle --------------------------------------------------------------

    def sever(self) -> None:
        """Drop every in-flight round and queue (the proxy was killed).

        Clients behind a killed proxy fail over and replay under fresh
        attempt scopes, so the stranded rounds here can never complete --
        clearing them keeps a restarted proxy from acking ghosts.  The
        adapter cancels its own outstanding timers alongside.
        """
        self._pending.clear()
        self._queues.clear()
        self._flush_scheduled.clear()
        if self._cache is not None:
            # No releases are possible from a dead proxy: the server-side
            # lease timers expire the orphaned grants within lease_ttl,
            # which is what unblocks any writers they were deferring.
            self._cache.clear()
