"""The group-server engine: batch multiplexing behind the epoch fence.

One :class:`GroupServerEngine` runs per replica of a *replica group* and
hosts the per-key registers of every shard placed on that group,
demultiplexing each shard-tagged sub-request to per-key single-register
server logic (created on demand from the group's protocol), then packing the
sub-replies into one ``batch-ack``.  Because the per-key logic objects are
the unmodified ones the single-register emulations use, every correctness
property (and every proof obligation) carries over key by key.

The engine also enforces the **epoch fence** that makes live rebalancing
safe: a sub-request whose (shard, epoch) tag does not match a hosted shard
is answered with a ``"stale-shard"`` bounce instead of touching any
register, and the client re-resolves its ring and replays the round.  The
hosting table is a control-plane surface (``host_shard`` / ``evict_shard``
/ ``extract_keys`` / ``install_keys``) driven by the migration module.

The engine is also the server half of the **read-lease protocol** behind
the proxies' hot-key read cache: a lease-marked read sub-request registers
its proxy as a lease holder for the key (confirmed by a ``"lease-grant"``
frame riding alongside the batch-ack), and any *mutating* sub-request for a
leased key is **deferred** -- its application and its reply are withheld --
while ``"lease-invalidate"`` frames chase the holders.  Served subs of the
same batch frame ack immediately in a *partial* batch-ack (one deferred
write must not stall unrelated keys' replies for up to the lease TTL); each
deferred sub's reply follows in its own batch-ack once every holder of its
key answers with ``"lease-release"`` or expires on the server-side timer.
A lease-marked *mutating* sub (a fill's writeback) is exempt only from the
sender's own lease: leases held by other proxies defer it like any write,
else a fill could complete a read of a half-applied write that another
proxy's still-granted cache entry orders after its old value.  Because a
cached entry is only served while a write-blocking set of replicas holds
the lease, no write can *complete* while any proxy serves the key from
cache -- which is exactly the intersection argument that keeps cached
reads atomic.

This is the server third of the sans-I/O core: ``on_frame`` consumes one
decoded frame and returns effects (sends and lease timers), with no
transport, runtime, or clock anywhere in sight.  ``handle`` remains as the
strict request-reply wrapper for lease-free deployments.  The simulator
wraps the engine in a process that models service time; the asyncio
backend serves it behind a TCP listener; the tests drive it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ...core.errors import ProtocolError
from ...messages import (
    BATCH_KIND,
    DEFAULT_LEASE_TTL,
    DRAIN_ACK_KIND,
    DRAIN_COMPLETE_KIND,
    DRAIN_FENCE_ACK_KIND,
    DRAIN_FENCE_KIND,
    DRAIN_HOST_KIND,
    DRAIN_INSTALL_KIND,
    DRAIN_TRANSFER_ACK_KIND,
    DRAIN_TRANSFER_KIND,
    LEASE_RELEASE_KIND,
    Message,
    SubRequest,
    make_batch_ack,
    make_lease_grant,
    make_lease_invalidate,
    unpack_batch,
    unpack_drain_complete,
    unpack_drain_fence,
    unpack_drain_host,
    unpack_drain_install,
    unpack_drain_transfer,
    unpack_lease_release,
)
from ...observe.events import (
    FRAME_RECEIVED,
    FRAME_SENT,
    LEASE_EXPIRED,
    LEASE_GRANTED,
    NULL_OBSERVER,
    STALE_BOUNCE,
    SUB_SERVED,
    EngineObserver,
)
from ...protocols.base import RegisterProtocol, ServerLogic
from .effects import CancelTimer, Effect, SendFrame, StartTimer, TimerId

__all__ = [
    "STALE_SHARD_KIND",
    "MAX_STALE_RETRIES",
    "StaleShardError",
    "make_stale_reply",
    "is_stale_reply",
    "GroupServerEngine",
]

#: Reply kind bouncing a sub-request whose (shard, epoch) tag is stale.
STALE_SHARD_KIND = "stale-shard"

#: Stale-epoch bounces one operation may absorb (re-resolving and replaying
#: its round each time) before the driver gives up -- shared by both
#: backends so they tolerate the same amount of rebalancing churn.
MAX_STALE_RETRIES = 16


class StaleShardError(ProtocolError):
    """A round-trip hit a server that no longer serves the shard at that epoch.

    Raised client-side so drivers re-resolve the ring and replay the round
    against the shard's current owner group.
    """

    def __init__(self, shard: Optional[str], sent_epoch: int,
                 current_epoch: Optional[int]) -> None:
        super().__init__(
            f"shard {shard!r} epoch {sent_epoch} is stale "
            f"(server hosts epoch {current_epoch})"
        )
        self.shard = shard
        self.sent_epoch = sent_epoch
        self.current_epoch = current_epoch


def make_stale_reply(sub: SubRequest, current_epoch: Optional[int]) -> Message:
    """The bounce for one stale sub-request, echoing its routing tag."""
    return sub.message.reply(
        STALE_SHARD_KIND,
        {"shard": sub.shard, "sent_epoch": sub.epoch, "epoch": current_epoch},
    )


def is_stale_reply(message: Optional[Message]) -> bool:
    return message is not None and message.kind == STALE_SHARD_KIND


@dataclass
class _HostedShard:
    """One shard's slice of a group server: its epoch and per-key registers.

    During an incremental drain, ``pending`` holds the keys whose state is
    still in flight from the donor replicas: a sub-request for a pending key
    bounces exactly like a stale epoch (the client replays after a delay)
    until the key's range is installed.  ``installed`` remembers which keys
    a drain already delivered, so a retried ``drain-host`` frame cannot
    resurrect pending-ness for a key that has already arrived.
    """

    epoch: int
    registers: Dict[str, ServerLogic] = field(default_factory=dict)
    pending: Set[str] = field(default_factory=set)
    installed: Set[str] = field(default_factory=set)


class GroupServerEngine(ServerLogic):
    """One replica of a replica group, serving many shards' keys.

    The only message kind it accepts is ``"batch"``; the kv-store client
    drivers wrap even solitary sub-requests in a batch of one, so the wire
    protocol stays uniform.  Sub-requests of different shards hosted by the
    same group coalesce into the same frame.
    """

    def __init__(
        self,
        server_id: str,
        protocol: RegisterProtocol,
        shard_epochs: Optional[Dict[str, int]] = None,
        observer: Optional[EngineObserver] = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
    ) -> None:
        super().__init__(server_id)
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        self.protocol = protocol
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.lease_ttl = lease_ttl
        self._shards: Dict[str, _HostedShard] = {}
        for shard_id, epoch in (shard_epochs or {}).items():
            self.host_shard(shard_id, epoch)
        self.batches_served = 0
        self.sub_ops_served = 0
        self.largest_batch = 0
        self.stale_bounces = 0
        # -- read-lease state ---------------------------------------------------
        #: key -> the proxies currently holding a read lease on it.
        self._leases: Dict[str, Set[str]] = {}
        #: key -> holders already chased with an invalidation this episode.
        self._invalidated: Dict[str, Set[str]] = {}
        #: key -> FIFO of (batch frame, sub index) awaiting the key's leases.
        self._deferred: Dict[str, List[Tuple[Message, int]]] = {}
        self.leases_granted = 0
        self.leases_expired = 0
        self.write_deferrals = 0

    # -- control plane (hosting table) -----------------------------------------

    def host_shard(
        self,
        shard_id: str,
        epoch: int,
        registers: Optional[Dict[str, ServerLogic]] = None,
    ) -> None:
        """Start serving ``shard_id`` at ``epoch`` (with migrated registers)."""
        hosted = _HostedShard(epoch=epoch)
        if registers:
            for logic in registers.values():
                logic.server_id = self.server_id
            hosted.registers.update(registers)
        self._shards[shard_id] = hosted

    def evict_shard(self, shard_id: str) -> Dict[str, ServerLogic]:
        """Stop serving ``shard_id``; returns its registers for migration."""
        hosted = self._shards.pop(shard_id, None)
        return hosted.registers if hosted is not None else {}

    def set_epoch(self, shard_id: str, epoch: int) -> None:
        """Fence ``shard_id`` at a new epoch (older tags bounce from now on)."""
        self._shards[shard_id].epoch = epoch

    def hosted_epoch(self, shard_id: str) -> Optional[int]:
        hosted = self._shards.get(shard_id)
        return hosted.epoch if hosted is not None else None

    def hosted_shards(self) -> List[str]:
        return list(self._shards)

    def keys_for(self, shard_id: str) -> List[str]:
        """The keys with materialized registers under ``shard_id`` here."""
        hosted = self._shards.get(shard_id)
        return list(hosted.registers) if hosted is not None else []

    def extract_keys(
        self, shard_id: str, keys: Iterable[str]
    ) -> Dict[str, ServerLogic]:
        """Remove and return the registers of ``keys`` (for migration)."""
        hosted = self._shards[shard_id]
        extracted: Dict[str, ServerLogic] = {}
        for key in keys:
            logic = hosted.registers.pop(key, None)
            if logic is not None:
                extracted[key] = logic
        return extracted

    def install_keys(self, shard_id: str, registers: Dict[str, ServerLogic]) -> None:
        """Adopt migrated registers under ``shard_id`` (which must be hosted)."""
        hosted = self._shards[shard_id]
        for key, logic in registers.items():
            logic.server_id = self.server_id
            hosted.registers[key] = logic

    # -- data plane -------------------------------------------------------------

    def register_for(self, shard_id: str, key: str) -> ServerLogic:
        """The per-key single-register server logic, created on first use."""
        hosted = self._shards[shard_id]
        logic = hosted.registers.get(key)
        if logic is None:
            logic = self.protocol.make_server(self.server_id)
            hosted.registers[key] = logic
        return logic

    @property
    def keys_hosted(self) -> int:
        return sum(len(hosted.registers) for hosted in self._shards.values())

    def handle(self, message: Message) -> Optional[Message]:
        """Strict request-reply wrapper over :meth:`on_frame`.

        The legacy entry point of lease-free deployments: exactly one reply
        frame (or none, for a deferred drain transfer).  Lease traffic needs
        timers and out-of-band sends, so a caller that mixes leases with
        this wrapper gets a loud error instead of silently dropped effects.
        """
        reply: Optional[Message] = None
        for effect in self.on_frame(message):
            if (isinstance(effect, SendFrame) and reply is None
                    and effect.destination == message.sender):
                reply = effect.frame
            else:
                raise RuntimeError(
                    "lease traffic requires the effect-driven adapter; "
                    f"handle() cannot execute {effect!r}"
                )
        return reply

    def on_frame(self, frame: Message) -> List[Effect]:
        """Consume one decoded frame, return the effects it causes."""
        out: List[Effect] = []
        drain_handler = self._DRAIN_HANDLERS.get(frame.kind)
        if drain_handler is not None:
            self.observer.emit(
                FRAME_RECEIVED, kind=frame.kind, source=frame.sender
            )
            if (frame.kind == DRAIN_TRANSFER_KIND
                    and self._defer_transfer(frame, out)):
                # Deferral by silence: the control plane retries unacked
                # transfer frames on its timer, so withholding the ack until
                # the range's lease holders clear needs no bookkeeping here.
                return out
            reply = drain_handler(self, frame)
            if reply is not None:
                out.append(SendFrame(reply.receiver, reply))
            return out
        if frame.kind == LEASE_RELEASE_KIND:
            self.observer.emit(
                FRAME_RECEIVED, kind=frame.kind, source=frame.sender
            )
            self._on_lease_release(frame, out)
            return out
        if frame.kind != BATCH_KIND:
            raise ValueError(
                f"GroupServerEngine only handles batch frames, got {frame.kind!r}"
            )
        self._serve_batch(frame, out)
        return out

    def _stale_reply_for(self, sub: SubRequest) -> Optional[Message]:
        """The stale bounce for ``sub``, or ``None`` when it is serveable."""
        hosted = self._shards.get(sub.shard) if sub.shard is not None else None
        if (hosted is None or sub.epoch != hosted.epoch
                or sub.key in hosted.pending):
            self.stale_bounces += 1
            current = hosted.epoch if hosted is not None else None
            self.observer.emit(
                STALE_BOUNCE, op_id=sub.message.op_id, key=sub.key,
                trace=sub.message.trace, shard=sub.shard,
                sent_epoch=sub.epoch, epoch=current,
            )
            return make_stale_reply(sub, current)
        return None

    def _serve_sub(self, sub: SubRequest) -> Optional[Message]:
        self.observer.emit(
            SUB_SERVED, op_id=sub.message.op_id, key=sub.key,
            trace=sub.message.trace, shard=sub.shard,
        )
        return self.register_for(sub.shard, sub.key).handle(sub.message)

    def _serve_batch(self, message: Message, out: List[Effect]) -> None:
        subs = unpack_batch(message)
        self.batches_served += 1
        self.sub_ops_served += len(subs)
        self.largest_batch = max(self.largest_batch, len(subs))
        self.observer.emit(
            FRAME_RECEIVED, kind=BATCH_KIND, source=message.sender, size=len(subs)
        )
        holder = message.sender
        mutating_kinds = self.protocol.mutating_kinds
        entries: List[Tuple[str, Optional[Message]]] = []
        granted: List[str] = []
        nonces: List[str] = []
        invalidations: Dict[str, List[str]] = {}
        for index, sub in enumerate(subs):
            stale = self._stale_reply_for(sub)
            if stale is not None:
                entries.append((sub.key, stale))
                continue
            holders = self._leases.get(sub.key)
            if holders and sub.message.kind in mutating_kinds:
                # A lease-marked mutation (a fill's writeback of an
                # already-existing tag) is exempt from the *sender's own*
                # lease only -- deferring it against that lease would
                # deadlock the fill.  Other proxies' leases defer it like
                # any write: their granted cache entries may still order
                # the key *before* the tag this writeback would complete.
                blockers = (holders - {holder} if sub.lease is not None
                            else holders)
                if blockers:
                    # A write against a leased key: chase every holder with
                    # an invalidation (once per episode) and withhold both
                    # the write's application and its reply until they
                    # release or expire.  The sender is chased too when its
                    # own fill is the deferred sub, so the holder set can
                    # drain (its invalidate detaches the fill proxy-side).
                    self.write_deferrals += 1
                    chased = self._invalidated.setdefault(sub.key, set())
                    for lease_holder in holders - chased:
                        chased.add(lease_holder)
                        invalidations.setdefault(lease_holder, []).append(
                            sub.key
                        )
                    self._deferred.setdefault(sub.key, []).append(
                        (message, index)
                    )
                    continue
            entries.append((sub.key, self._serve_sub(sub)))
            if (sub.lease is not None
                    and sub.message.kind not in mutating_kinds
                    and sub.key not in self._deferred):
                # Register (or refresh) the proxy's read lease.  Keys with
                # queued writes never grant: handing out fresh leases while
                # writers wait would starve them.
                self._leases.setdefault(sub.key, set()).add(holder)
                self._invalidated.get(sub.key, set()).discard(holder)
                out.append(
                    StartTimer(("lease", sub.key, holder), self.lease_ttl)
                )
                self.leases_granted += 1
                self.observer.emit(
                    LEASE_GRANTED, key=sub.key, holder=holder,
                    ttl=self.lease_ttl,
                )
                granted.append(sub.key)
                nonces.append(sub.lease)
        for target, keys in invalidations.items():
            self.observer.emit(FRAME_SENT, kind="lease-invalidate", dest=target)
            out.append(
                SendFrame(
                    target, make_lease_invalidate(self.server_id, target, keys)
                )
            )
        if granted:
            # The grant goes out *before* the batch-ack: adapters preserve
            # per-destination ordering, so by the time the proxy counts this
            # replica's ack toward its quorum it already knows whether the
            # replica registered the lease.  Echoing each key's fill nonce
            # lets the proxy drop grants that belong to an evicted entry.
            self.observer.emit(FRAME_SENT, kind="lease-grant", dest=holder)
            out.append(
                SendFrame(
                    holder,
                    make_lease_grant(self.server_id, holder, granted,
                                     self.lease_ttl, nonces),
                )
            )
        if entries:
            # A *partial* ack when some subs deferred: the served replies
            # must not wait out another key's lease TTL, and the proxy
            # matches sub-replies positionally by op id, not per frame.
            self._ack_batch(message, entries, out)

    def _ack_batch(
        self,
        request: Message,
        entries: List[Tuple[str, Optional[Message]]],
        out: List[Effect],
    ) -> None:
        self.observer.emit(FRAME_SENT, kind="batch-ack", dest=request.sender)
        ack = make_batch_ack(request, entries)
        out.append(SendFrame(ack.receiver, ack))

    # -- the lease protocol (proxy read cache <-> this replica) ------------------

    def lease_holders(self, key: str) -> Set[str]:
        """The proxies currently holding a read lease on ``key``."""
        return set(self._leases.get(key, ()))

    @property
    def deferred_subs(self) -> int:
        """Sub-requests currently withheld behind lease deferrals."""
        return sum(len(queue) for queue in self._deferred.values())

    def _on_lease_release(self, message: Message, out: List[Effect]) -> None:
        payload = unpack_lease_release(message)
        holder = message.sender
        for key in payload["keys"]:
            self._drop_holder(key, holder, out, cancel_timer=True)

    def _drop_holder(
        self, key: str, holder: str, out: List[Effect], cancel_timer: bool
    ) -> None:
        holders = self._leases.get(key)
        if holders is None or holder not in holders:
            return
        holders.discard(holder)
        if cancel_timer:
            out.append(CancelTimer(("lease", key, holder)))
        chased = self._invalidated.get(key)
        if chased is not None:
            chased.discard(holder)
        if not holders:
            del self._leases[key]
            self._invalidated.pop(key, None)
            self._flush_deferred(key, out)

    def _flush_deferred(self, key: str, out: List[Effect]) -> None:
        """Apply the writes a key's leases were holding back, oldest first.

        Each applied sub's reply goes out in a follow-up partial batch-ack
        (replies of one original frame coalesce); the served subs of that
        frame were acked when it arrived.  The stale check re-runs at
        application time: a drain may have fenced the shard while the write
        sat deferred, and applying it under the old epoch would slip it
        past the migration's census.
        """
        queue = self._deferred.pop(key, None)
        if not queue:
            return
        acks: Dict[int, Tuple[Message, List[Tuple[str, Optional[Message]]]]]
        acks = {}
        for request, index in queue:
            sub = unpack_batch(request)[index]
            stale = self._stale_reply_for(sub)
            reply = stale if stale is not None else self._serve_sub(sub)
            acks.setdefault(id(request), (request, []))[1].append(
                (sub.key, reply)
            )
        for request, entries in acks.values():
            self._ack_batch(request, entries, out)

    def on_timer(self, timer_id: TimerId) -> List[Effect]:
        """A server-side lease deadline passed without a release."""
        out: List[Effect] = []
        if timer_id[0] == "lease":
            _, key, holder = timer_id
            if holder in self._leases.get(key, ()):
                self.leases_expired += 1
                self.observer.emit(LEASE_EXPIRED, key=key, holder=holder)
                self._drop_holder(key, holder, out, cancel_timer=False)
        return out

    def _defer_transfer(self, frame: Message, out: List[Effect]) -> bool:
        """Whether a drain transfer must wait for lease holders to clear.

        A migrated key's new owner group knows nothing about leases granted
        here, so cutting a leased key over would let writes apply at the
        receiver while a proxy still serves the key from cache.  Chasing the
        holders and withholding the transfer ack (which gates the range's
        install, and therefore the receiver serving the key at all) closes
        that hole; the control plane's retry timer re-asks after the
        holders release.
        """
        payload = unpack_drain_transfer(frame)
        invalidations: Dict[str, List[str]] = {}
        for key in payload["keys"]:
            holders = self._leases.get(key)
            if not holders:
                continue
            chased = self._invalidated.setdefault(key, set())
            for holder in holders - chased:
                chased.add(holder)
                invalidations.setdefault(holder, []).append(key)
        for target, keys in invalidations.items():
            self.observer.emit(FRAME_SENT, kind="lease-invalidate", dest=target)
            out.append(
                SendFrame(
                    target, make_lease_invalidate(self.server_id, target, keys)
                )
            )
        return bool(invalidations) or any(
            self._leases.get(key) for key in payload["keys"]
        )

    # -- the incremental drain protocol (control plane -> this replica) ----------
    #
    # Every handler is idempotent: the control plane retries unacked frames
    # on a timer, so a frame can arrive twice (or after a duplicate raced a
    # slow ack) and must leave the same state behind.

    def _drain_ack(self, message: Message, kind: str,
                   extra: Optional[Dict[str, Any]] = None) -> Message:
        payload = {
            "mig": message.payload["mig"],
            "token": message.payload["token"],
            "shard": message.payload["shard"],
        }
        if extra:
            payload.update(extra)
        self.observer.emit(FRAME_SENT, kind=kind, dest=message.sender)
        return message.reply(kind, payload)

    def _handle_drain_fence(self, message: Message) -> Message:
        """Fence a donor shard and answer with this replica's key census.

        The epoch only moves forward (``max``), so duplicated or reordered
        fence frames cannot roll a shard back behind a later rebalance.
        Once the fence is applied, no sub-request can create or mutate a
        register under the old epoch, so the census in the ack is complete
        for this replica.
        """
        p = unpack_drain_fence(message)
        hosted = self._shards.get(p["shard"])
        if hosted is not None:
            hosted.epoch = max(hosted.epoch, p["epoch"])
            keys = sorted(hosted.registers)
        else:
            keys = []
        return self._drain_ack(
            message, DRAIN_FENCE_ACK_KIND,
            {"epoch": self.hosted_epoch(p["shard"]), "keys": keys},
        )

    def _handle_drain_host(self, message: Message) -> Message:
        """Start hosting a receiver shard with its incoming keys pending.

        Unlike :meth:`host_shard` this never replaces existing registers:
        a retried host frame on a replica that already absorbed some ranges
        must not wipe them, and the ``installed`` set keeps already-arrived
        keys from going pending again.
        """
        p = unpack_drain_host(message)
        hosted = self._shards.get(p["shard"])
        if hosted is None:
            hosted = _HostedShard(epoch=p["epoch"])
            self._shards[p["shard"]] = hosted
        else:
            hosted.epoch = max(hosted.epoch, p["epoch"])
        hosted.pending |= set(p["keys"]) - hosted.installed
        return self._drain_ack(message, DRAIN_ACK_KIND)

    def _handle_drain_transfer(self, message: Message) -> Message:
        """Export (copies of) one key range's register state.

        The registers stay in place until ``drain-complete`` -- exporting a
        copy keeps the transfer idempotent and the donor authoritative if
        the migration has to retry.  Keys with no materialized register here
        are simply absent from the ack; the control plane still clears them
        from the paired receiver's pending set via the install frame's
        explicit key list.
        """
        p = unpack_drain_transfer(message)
        hosted = self._shards.get(p["shard"])
        states: Dict[str, Dict[str, Any]] = {}
        if hosted is not None:
            for key in p["keys"]:
                logic = hosted.registers.get(key)
                if logic is not None:
                    states[key] = logic.export_state()
        return self._drain_ack(
            message, DRAIN_TRANSFER_ACK_KIND, {"states": states}
        )

    def _handle_drain_install(self, message: Message) -> Message:
        """Absorb one range's state blobs and un-pend every key of the range.

        ``absorb_state`` on a fresh register is a restore and merging the
        same blob twice is a no-op, so a duplicated install frame is
        harmless.  All of the range's keys leave ``pending`` -- including
        keys whose state existed on no donor replica paired with this one
        (a partial write): the per-replica pairing preserves exactly the
        replica counts the quorum-intersection arguments need.
        """
        p = unpack_drain_install(message)
        hosted = self._shards.get(p["shard"])
        if hosted is None:
            hosted = _HostedShard(epoch=p["epoch"])
            self._shards[p["shard"]] = hosted
        else:
            hosted.epoch = max(hosted.epoch, p["epoch"])
        absorbed = 0
        for key, blobs in p["states"].items():
            logic = self.register_for(p["shard"], key)
            for blob in blobs:
                logic.absorb_state(blob)
                absorbed += 1
        for key in p["keys"]:
            hosted.pending.discard(key)
            hosted.installed.add(key)
        return self._drain_ack(message, DRAIN_ACK_KIND, {"absorbed": absorbed})

    def _handle_drain_complete(self, message: Message) -> Message:
        """Finish a migration at this replica (donor or receiver role)."""
        p = unpack_drain_complete(message)
        hosted = self._shards.get(p["shard"])
        if hosted is not None:
            for key in p["drop_keys"]:
                hosted.registers.pop(key, None)
            hosted.pending.clear()
            hosted.installed.clear()
            if p["evict"]:
                self.evict_shard(p["shard"])
        return self._drain_ack(message, DRAIN_ACK_KIND)

    _DRAIN_HANDLERS = {
        DRAIN_FENCE_KIND: _handle_drain_fence,
        DRAIN_HOST_KIND: _handle_drain_host,
        DRAIN_TRANSFER_KIND: _handle_drain_transfer,
        DRAIN_INSTALL_KIND: _handle_drain_install,
        DRAIN_COMPLETE_KIND: _handle_drain_complete,
    }
