"""The client-session engine: round lifecycle, replay, and proxy failover.

One :class:`ClientSessionEngine` is one logical store client.  It may have
many operations (on distinct keys) in flight at once; each operation drives
the ordinary single-register client generator for its key, but instead of
sending one frame per sub-request the engine coalesces every sub-request
bound for the same *replica group* into one batch frame per replica --
operations on different shards hosted by the same group share rounds.  Every
sub-request carries the (shard, epoch) tag the client resolved; when a live
resize or shard move fences that epoch, the bounced round is replayed
against the new owner (round-trips are idempotent, so the per-key generator
never notices).

With a proxy candidate list the engine routes *every* round through its
current ingress proxy instead: in-flight rounds (for any shard, any group)
coalesce into one ``"proxy"`` frame per flush, the proxy owns shard
resolution and stale-epoch replay, and each round comes back as one
``"proxy-ack"`` carrying the whole quorum.  The proxy leg is
fault-tolerant: on proxy death -- reported by the transport
(:meth:`ClientSessionEngine.on_peer_lost`) or detected by the engine's own
watchdog timer where the transport drops traffic silently -- the engine
walks the candidate list (emitting :class:`~.effects.Connect` effects), or
falls back to **direct replica connections** when the list is exhausted,
and replays every in-flight round under a fresh failover *generation* scope
(:func:`~.routing.attempt_scoped_id`) so an ack relayed by the previous
proxy can never complete a round re-issued through the next one.

Everything here is sans-I/O: inputs are invocations, decoded frames, timer
fires and transport notifications; outputs are
:mod:`~repro.kvstore.engine.effects`.  The simulator and asyncio backends
are thin adapters around this one class.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Set, Tuple

from ...core.errors import ProtocolError
from ...core.operations import OpKind, new_op_id
from ...observe.events import (
    BATCH_CUT,
    FAILOVER_HOP,
    FRAME_RECEIVED,
    FRAME_SENT,
    NULL_OBSERVER,
    OP_COMPLETED,
    OP_FAILED,
    OP_INVOKED,
    ROUND_OPENED,
    ROUND_REPLAYED,
    EngineObserver,
)
from ...messages import (
    BATCH_ACK_KIND,
    BATCH_KIND,
    PROXY_ACK_KIND,
    PROXY_KIND,
    Message,
    ProxySubRequest,
    SubRequest,
    make_batch,
    make_proxy_request,
    unpack_batch,
    unpack_batch_ack,
    unpack_proxy_ack,
    unpack_proxy_request,
)
from ...protocols.base import Broadcast, ClientLogic, OperationOutcome
from ..perkey import KVHistoryRecorder
from ..sharding import ShardMap, ShardSpec
from .effects import (
    DIRECT_INGRESS,
    Connect,
    DEFAULT_RETRY_POLICY,
    Effect,
    OpCompleted,
    OpFailed,
    RetryPolicy,
    SendFrame,
    StartTimer,
    CancelTimer,
    TimerId,
)
from .routing import attempt_scoped_id
from .server import MAX_STALE_RETRIES, is_stale_reply
from .stats import BatchStats

__all__ = ["ClientSessionEngine", "PROXY_QUEUE"]

#: The shared queue key of proxy-bound rounds (the proxy does the per-group
#: split, so rounds for different groups coalesce too).
PROXY_QUEUE = "@proxy"

_WATCHDOG: TimerId = ("watchdog",)


@dataclass
class _PendingKVOp:
    """One in-flight kv operation driving a per-key register generator."""

    op_id: str
    key: str
    kind: OpKind
    spec: ShardSpec
    epoch: int
    generator: Any
    round_trip: int = 0
    wait_for: int = 0
    stale_retries: int = 0
    transient_retries: int = 0
    drain_backoffs: int = 0
    awaiting_retry: bool = False
    queued: bool = False
    request: Optional[Broadcast] = None
    replies: List[Message] = field(default_factory=list)
    lost_targets: Set[str] = field(default_factory=set)
    #: The failover-generation-scoped op id this round was last forwarded
    #: under (proxy mode only); the key into the proxy-rounds table.
    proxy_op_id: Optional[str] = None
    #: Cross-tier trace-context id: stamped once at invocation, carried in
    #: frame metadata through every tier (attempt-scoped ids are rewritten on
    #: retries, the trace id never is).
    trace: Optional[str] = None


class ClientSessionEngine:
    """One store client's protocol state machine (transport-agnostic)."""

    def __init__(
        self,
        client_id: str,
        shard_map: ShardMap,
        recorder: KVHistoryRecorder,
        policy: Optional[RetryPolicy] = None,
        max_batch: int = 8,
        flush_delay: float = 0.0,
        proxy_candidates: Optional[Sequence[str]] = None,
        observer: Optional[EngineObserver] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.client_id = client_id
        self.shard_map = shard_map
        self.recorder = recorder
        self.policy = policy or DEFAULT_RETRY_POLICY
        self.max_batch = max_batch
        self.flush_delay = flush_delay
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.stats = BatchStats()
        self.completed_operations = 0
        self.stale_replays = 0
        self.drain_backoffs = 0
        self.proxy_failovers = 0
        self._proxy_candidates = list(proxy_candidates or [])
        self.proxy_id: Optional[str] = (
            self._proxy_candidates[0] if self._proxy_candidates else None
        )
        #: Whether the ingress path (proxy connection, or the direct replica
        #: connections) is usable.  Adapters confirm via ``on_connected``;
        #: direct-from-birth sessions need no handshake.
        self._ingress_ready = self.proxy_id is None
        self._proxy_cursor = 0
        self._proxy_generation = 0
        self._proxy_rounds: Dict[Tuple[str, int], _PendingKVOp] = {}
        self._proxy_acks_seen = 0
        self._watchdog_armed = False
        self._watchdog_acks_at_arm = 0
        self._replay_inflight: List[_PendingKVOp] = []
        self._requeue: List[_PendingKVOp] = []
        self._readers: Dict[str, ClientLogic] = {}
        self._writers: Dict[str, ClientLogic] = {}
        self._logic_homes: Dict[str, str] = {}
        self._active: Dict[str, _PendingKVOp] = {}
        self._key_inflight: Set[str] = set()
        self._key_backlog: Dict[str, Deque[tuple]] = {}
        self._queues: Dict[str, List[_PendingKVOp]] = {}
        self._flush_scheduled: Set[str] = set()

    # -- per-key client logic ---------------------------------------------------

    def _refresh_home(self, key: str, spec: ShardSpec) -> None:
        # Cached per-key client logic was built against a specific group's
        # server list; when a move re-homes the shard, rebuild it (a fresh
        # reader/writer joining is always safe for every protocol here).
        if self._logic_homes.get(key) != spec.group.group_id:
            self._logic_homes[key] = spec.group.group_id
            self._readers.pop(key, None)
            self._writers.pop(key, None)

    def _logic_for(self, kind: OpKind, key: str, spec: ShardSpec) -> ClientLogic:
        cache = self._writers if kind is OpKind.WRITE else self._readers
        logic = cache.get(key)
        if logic is None:
            if kind is OpKind.WRITE:
                logic = spec.protocol.make_writer(self.client_id)
            else:
                logic = spec.protocol.make_reader(self.client_id)
            cache[key] = logic
        return logic

    # -- invoking operations ----------------------------------------------------

    def invoke(
        self, kind: OpKind, key: str, value: Any = None
    ) -> Tuple[str, List[Effect]]:
        """Start ``get``/``put``; returns the operation id and the effects."""
        out: List[Effect] = []
        op_id = new_op_id(f"{self.client_id}-{kind.value}")
        # The op id doubles as the trace-context id: it is unique, compact,
        # and -- unlike the attempt-scoped ids derived from it -- never
        # rewritten on retry or failover.
        self.observer.emit(
            OP_INVOKED, op_id=op_id, key=key, trace=op_id, kind=kind.value
        )
        if key in self._key_inflight:
            # Same client, same key: queue behind the in-flight operation so
            # the key's sub-history stays sequential for this client.
            self._key_backlog.setdefault(key, deque()).append((op_id, kind, value))
            return op_id, out
        self._start(op_id, kind, key, value, out)
        return op_id, out

    def _start(
        self, op_id: str, kind: OpKind, key: str, value: Any, out: List[Effect]
    ) -> None:
        spec = self.shard_map.shard_for(key)
        self._refresh_home(key, spec)
        logic = self._logic_for(kind, key, spec)
        generator = (
            logic.write_protocol(value) if kind is OpKind.WRITE else logic.read_protocol()
        )
        self._key_inflight.add(key)
        self.recorder.record_invocation(key, op_id, self.client_id, kind, value=value)
        pending = _PendingKVOp(
            op_id=op_id, key=key, kind=kind, spec=spec, epoch=spec.epoch,
            generator=generator, trace=op_id,
        )
        self._active[op_id] = pending
        self._advance(pending, out, first=True)

    # -- driving the generators -------------------------------------------------

    def _advance(
        self, pending: _PendingKVOp, out: List[Effect], first: bool = False
    ) -> None:
        try:
            if first:
                request = next(pending.generator)
            else:
                request = pending.generator.send(
                    list(pending.replies[: pending.wait_for])
                )
        except StopIteration as stop:
            self._complete(pending, stop.value, out)
            return
        if not isinstance(request, Broadcast):
            raise ProtocolError("client generators must yield Broadcast objects")
        pending.request = request
        self._dispatch_round(pending, out)

    def _dispatch_round(self, pending: _PendingKVOp, out: List[Effect]) -> None:
        """Send the current round (fresh or replayed) to the owner group."""
        pending.round_trip += 1
        pending.replies = []
        pending.lost_targets = set()
        pending.awaiting_retry = False
        spec = self.shard_map.shard_for(pending.key)
        pending.spec = spec
        pending.epoch = spec.epoch
        request = pending.request
        pending.wait_for = (
            request.wait_for if request.wait_for is not None else spec.quorum_size
        )
        self.observer.emit(
            ROUND_OPENED, op_id=pending.op_id, key=pending.key,
            trace=pending.trace, round_trip=pending.round_trip,
        )
        self._enqueue(pending, out)

    def _replay_round(self, pending: _PendingKVOp, out: List[Effect]) -> None:
        """Re-send the in-flight round after a stale-shard bounce.

        Round-trips are idempotent (queries trivially; updates because
        servers only adopt larger tags), so replaying the same broadcast
        against the re-resolved owner group is always safe -- the per-key
        generator never observes the bounce.  Bumping ``round_trip`` makes
        any straggler replies from the stale attempt ignorable.

        A bounce that re-resolves to the *same* route (group and epoch
        unchanged) is not staleness at all: the view already matches the
        authoritative map, so the key is mid-drain -- fenced on its donor
        or still pending on its receiver.  Replaying immediately would spin
        against the fence until the key's range installs; back off on the
        retry timer instead (without charging ``stale_retries`` -- the map
        has converged, the data just has not landed yet).
        """
        spec = self.shard_map.shard_for(pending.key)
        if (
            spec.group.group_id == pending.spec.group.group_id
            and spec.epoch == pending.epoch
        ):
            pending.drain_backoffs += 1
            self.drain_backoffs += 1
            self.observer.emit(
                ROUND_REPLAYED, op_id=pending.op_id, key=pending.key,
                trace=pending.trace, retries=pending.drain_backoffs,
                reason="drain-backoff",
            )
            if pending.drain_backoffs > self.policy.max_transient_retries:
                self._fail(
                    pending,
                    ProtocolError(
                        f"operation {pending.op_id} bounced off a draining "
                        f"range {pending.drain_backoffs} times; the drain "
                        "never completed"
                    ),
                    out,
                )
                return
            pending.awaiting_retry = True
            out.append(
                StartTimer(
                    ("retry", pending.op_id),
                    self.policy.drain_backoff_interval,
                )
            )
            return
        pending.stale_retries += 1
        self.stale_replays += 1
        self.observer.emit(
            ROUND_REPLAYED, op_id=pending.op_id, key=pending.key,
            trace=pending.trace, retries=pending.stale_retries,
        )
        if pending.stale_retries > MAX_STALE_RETRIES:
            self._fail(
                pending,
                ProtocolError(
                    f"operation {pending.op_id} bounced {pending.stale_retries} "
                    "times; shard map never converged"
                ),
                out,
            )
            return
        self._refresh_home(pending.key, spec)
        self._dispatch_round(pending, out)

    def _complete(
        self, pending: _PendingKVOp, outcome: OperationOutcome, out: List[Effect]
    ) -> None:
        if not isinstance(outcome, OperationOutcome):
            raise ProtocolError("operation generator must return an OperationOutcome")
        self.recorder.record_response(
            pending.op_id,
            value=outcome.value,
            tag=outcome.tag,
            round_trips=pending.round_trip,
        )
        self._retire(pending, out)
        self.completed_operations += 1
        self.observer.emit(
            OP_COMPLETED, op_id=pending.op_id, key=pending.key,
            trace=pending.trace, round_trips=pending.round_trip,
        )
        out.append(
            OpCompleted(pending.op_id, pending.key, outcome, pending.round_trip)
        )

    def _fail(
        self, pending: _PendingKVOp, error: BaseException, out: List[Effect]
    ) -> None:
        self._retire(pending, out)
        self.observer.emit(
            OP_FAILED, op_id=pending.op_id, key=pending.key,
            trace=pending.trace, error=type(error).__name__,
        )
        out.append(OpFailed(pending.op_id, pending.key, error))

    def _retire(self, pending: _PendingKVOp, out: List[Effect]) -> None:
        """Drop a finished op and start its key's next backlogged one."""
        del self._active[pending.op_id]
        if pending.proxy_op_id is not None:
            self._proxy_rounds.pop((pending.proxy_op_id, pending.round_trip), None)
        self._key_inflight.discard(pending.key)
        backlog = self._key_backlog.get(pending.key)
        if backlog:
            op_id, kind, value = backlog.popleft()
            self._start(op_id, kind, pending.key, value, out)

    # -- group batching ---------------------------------------------------------

    def _enqueue(self, pending: _PendingKVOp, out: List[Effect]) -> None:
        queue_key = (
            PROXY_QUEUE if self.proxy_id is not None else pending.spec.group.group_id
        )
        queue = self._queues.setdefault(queue_key, [])
        pending.queued = True
        queue.append(pending)
        if queue_key == PROXY_QUEUE and not self._ingress_ready:
            return  # flushed once the adapter confirms the ingress path
        if len(queue) >= self.max_batch:
            self._flush(queue_key, out)
        elif queue_key not in self._flush_scheduled:
            self._flush_scheduled.add(queue_key)
            out.append(StartTimer(("flush", queue_key), self.flush_delay))

    def _flush(self, queue_key: str, out: List[Effect]) -> None:
        self._flush_scheduled.discard(queue_key)
        if queue_key == PROXY_QUEUE and not self._ingress_ready:
            return  # a stale flush racing a failover; replay owns these rounds
        # Ops that failed while waiting (e.g. a non-retryable send error on an
        # earlier frame of the same operation) are skipped, not sent.
        queue = [
            op
            for op in self._queues.get(queue_key, [])
            if self._active.get(op.op_id) is op
        ]
        if not queue:
            self._queues.pop(queue_key, None)
            return
        batch, rest = queue[: self.max_batch], queue[self.max_batch :]
        self._queues[queue_key] = rest
        for op in batch:
            op.queued = False
        if rest and queue_key not in self._flush_scheduled:
            # More coalesced work than one frame carries: flush again at once.
            self._flush_scheduled.add(queue_key)
            out.append(StartTimer(("flush", queue_key), 0.0))
        self.stats.record(len(batch))
        self.observer.emit(BATCH_CUT, size=len(batch), queue=queue_key)
        if queue_key == PROXY_QUEUE:
            self._flush_proxy(batch, out)
            return
        group = batch[0].spec.group
        for server_id in group.servers:
            subs = [
                SubRequest(
                    key=op.key,
                    message=Message(
                        sender=self.client_id,
                        receiver=server_id,
                        kind=op.request.kind,
                        payload=op.request.payload_for(server_id),
                        op_id=op.op_id,
                        round_trip=op.round_trip,
                        trace=op.trace,
                    ),
                    shard=op.spec.shard_id,
                    epoch=op.epoch,
                )
                for op in batch
            ]
            self.stats.record_frames(sent=1)
            self.observer.emit(FRAME_SENT, kind=BATCH_KIND, dest=server_id)
            out.append(
                SendFrame(server_id, make_batch(self.client_id, server_id, subs))
            )

    def _flush_proxy(self, batch: List[_PendingKVOp], out: List[Effect]) -> None:
        subs = []
        for op in batch:
            # Scope the forwarded id by the failover generation: should this
            # round be replayed through a different proxy, replies relayed by
            # the old one miss the new key and are dropped.
            op.proxy_op_id = attempt_scoped_id(op.op_id, self._proxy_generation)
            self._proxy_rounds[(op.proxy_op_id, op.round_trip)] = op
            subs.append(
                ProxySubRequest(
                    key=op.key,
                    op_kind=op.kind.value,
                    kind=op.request.kind,
                    payload=op.request.payload,
                    op_id=op.proxy_op_id,
                    round_trip=op.round_trip,
                    wait_for=op.request.wait_for,
                    per_server=op.request.per_server_payload or None,
                    trace=op.trace,
                )
            )
        self.stats.record_frames(sent=1)
        self.observer.emit(FRAME_SENT, kind=PROXY_KIND, dest=self.proxy_id)
        out.append(
            SendFrame(
                self.proxy_id, make_proxy_request(self.client_id, self.proxy_id, subs)
            )
        )
        self._arm_watchdog(out)

    # -- proxy failover ---------------------------------------------------------

    def _arm_watchdog(self, out: List[Effect]) -> None:
        """Watch for a proxy that stops answering while rounds are out.

        Where the transport drops a crashed process's traffic *silently*
        (the simulator), proxy death has no connection-reset edge to
        observe; instead a single timer fires ``failover_timeout`` after
        the last arm.  Progress (any proxy ack) re-arms it; rounds all
        completing cancels it (so an idle client schedules nothing and
        quiescence-driven runs terminate at the workload's natural end).
        Only a proxy that is silent for the whole window -- with rounds
        still outstanding -- trips failover, and a spurious trip is merely
        wasteful, never unsafe: rounds are idempotent and replays are
        generation-scoped.  Transports that do observe connection death
        disable the watchdog (``failover_timeout=None``) and report via
        :meth:`on_peer_lost` instead.
        """
        if (
            self.policy.failover_timeout is None
            or self._watchdog_armed
            or self.proxy_id is None
            or not self._proxy_rounds
        ):
            return
        self._watchdog_armed = True
        self._watchdog_acks_at_arm = self._proxy_acks_seen
        out.append(StartTimer(_WATCHDOG, self.policy.failover_timeout))

    def _disarm_watchdog(self, out: List[Effect]) -> None:
        if self._watchdog_armed:
            self._watchdog_armed = False
            out.append(CancelTimer(_WATCHDOG))

    def _failover(self, out: List[Effect]) -> None:
        """The current proxy is dead: advance the ingress path and replay.

        The next candidate of the site takes over; with the list exhausted,
        ``proxy_id`` drops to ``None`` and the client broadcasts to replica
        groups directly (the pre-proxy data path, always available because
        proxies hold no register state).  Every in-flight round is stashed
        and -- once the adapter confirms the new ingress -- re-dispatched:
        re-resolved against the live shard map, re-batched, and forwarded
        under the bumped generation scope.
        """
        self.proxy_failovers += 1
        self._proxy_generation += 1
        self.observer.emit(
            FAILOVER_HOP,
            abandoned=self.proxy_id,
            generation=self._proxy_generation,
        )
        self._disarm_watchdog(out)
        inflight = list(self._proxy_rounds.values())
        self._proxy_rounds.clear()
        queued = self._queues.pop(PROXY_QUEUE, [])
        if PROXY_QUEUE in self._flush_scheduled:
            self._flush_scheduled.discard(PROXY_QUEUE)
            out.append(CancelTimer(("flush", PROXY_QUEUE)))
        for pending in inflight:
            pending.proxy_op_id = None
        self._replay_inflight.extend(inflight)
        # Never sent: no fresh attempt needed, just requeue at the new
        # ingress (or the owner group, when falling back to direct).
        self._requeue.extend(queued)
        self._advance_ingress(out)

    def _advance_ingress(self, out: List[Effect]) -> None:
        """Point at the next candidate (or direct) and ask for a connection."""
        self._ingress_ready = False
        self._proxy_cursor += 1
        if self._proxy_cursor < len(self._proxy_candidates):
            self.proxy_id = self._proxy_candidates[self._proxy_cursor]
            out.append(Connect(self.proxy_id))
        else:
            # The site's proxy list is exhausted: direct replica connections.
            self.proxy_id = None
            out.append(Connect(DIRECT_INGRESS))

    def on_connected(self, target: str) -> List[Effect]:
        """The adapter established the ingress path requested by ``Connect``."""
        out: List[Effect] = []
        current = self.proxy_id if self.proxy_id is not None else DIRECT_INGRESS
        if target != current or self._ingress_ready:
            return out  # a stale dial answered after another failover
        self._ingress_ready = True
        inflight, self._replay_inflight = self._replay_inflight, []
        requeue, self._requeue = self._requeue, []
        for pending in inflight:
            self._dispatch_round(pending, out)
        for pending in requeue:
            self._enqueue(pending, out)
        queue = self._queues.get(PROXY_QUEUE)
        if queue and PROXY_QUEUE not in self._flush_scheduled:
            self._flush_scheduled.add(PROXY_QUEUE)
            out.append(StartTimer(("flush", PROXY_QUEUE), 0.0))
        return out

    def on_connect_failed(self, target: str) -> List[Effect]:
        """The adapter could not establish ``target``: walk to the next one."""
        out: List[Effect] = []
        current = self.proxy_id if self.proxy_id is not None else DIRECT_INGRESS
        if target != current or self._ingress_ready:
            return out
        self._advance_ingress(out)
        return out

    def on_peer_lost(self, peer_id: str) -> List[Effect]:
        """The transport observed ``peer_id``'s connection die terminally.

        For the current ingress proxy this triggers failover (the
        connection-reset edge the watchdog exists to approximate); for a
        replica it fails the rounds that can no longer reach a quorum, so
        their transient-retry replay takes over instead of hanging.
        """
        out: List[Effect] = []
        if peer_id == self.proxy_id and self._ingress_ready:
            self._failover(out)
            return out
        for pending in list(self._active.values()):
            if (
                pending.proxy_op_id is None
                and pending.request is not None
                and not pending.queued
                and peer_id in pending.spec.group.servers
                and len(pending.replies) < pending.wait_for
            ):
                self._lose_target(
                    pending, peer_id,
                    ConnectionError(f"replica {peer_id} is unreachable"),
                    retryable=True, out=out,
                )
        return out

    # -- transport send failures ------------------------------------------------

    def on_frame_undeliverable(
        self, frame: Message, error: BaseException, retryable: bool = True
    ) -> List[Effect]:
        """A frame this engine emitted could not be delivered.

        ``retryable`` distinguishes transient transport loss (a dead
        connection being redialed -- replay after the reconnect window)
        from permanent failures (e.g. an oversized frame), which fail the
        affected operations immediately.
        """
        out: List[Effect] = []
        if frame.kind in (PROXY_KIND, BATCH_KIND):
            # The frame never reached the wire: uncount it, so frame totals
            # keep the "every frame counted exactly once" invariant even
            # across replays (the replayed attempt counts its own frames).
            self.stats.record_frames(sent=-1)
        if frame.kind == PROXY_KIND:
            if not retryable:
                for sub in unpack_proxy_request(frame):
                    pending = self._proxy_rounds.pop((sub.op_id, sub.round_trip), None)
                    if pending is not None:
                        self._fail(pending, error, out)
                return out
            if frame.receiver == self.proxy_id and self._ingress_ready:
                self._failover(out)
            return out
        if frame.kind != BATCH_KIND:
            return out
        for sub in unpack_batch(frame):
            op_id = sub.message.op_id
            pending = self._active.get(op_id) if op_id is not None else None
            if pending is None or sub.message.round_trip != pending.round_trip:
                continue
            self._lose_target(pending, frame.receiver, error, retryable, out)
        return out

    def _lose_target(
        self,
        pending: _PendingKVOp,
        server_id: str,
        error: BaseException,
        retryable: bool,
        out: List[Effect],
    ) -> None:
        if pending.awaiting_retry:
            return
        pending.lost_targets.add(server_id)
        reachable = len(pending.spec.group.servers) - len(pending.lost_targets)
        if reachable >= pending.wait_for:
            return  # a quorum is still possible on the surviving replicas
        if not retryable:
            self._fail(pending, error, out)
            return
        # Too many replicas were unreachable for this round (a kill
        # mid-flight).  Rounds are idempotent, so wait out the reconnect
        # window and replay.
        pending.transient_retries += 1
        if pending.transient_retries > self.policy.max_transient_retries:
            self._fail(pending, error, out)
            return
        pending.awaiting_retry = True
        out.append(
            StartTimer(("retry", pending.op_id), self.policy.reconnect_interval)
        )

    # -- timer fires ------------------------------------------------------------

    def on_timer(self, timer_id: TimerId) -> List[Effect]:
        out: List[Effect] = []
        kind = timer_id[0]
        if kind == "flush":
            self._flush(timer_id[1], out)
        elif kind == "retry":
            pending = self._active.get(timer_id[1])
            if pending is not None and pending.awaiting_retry:
                self._dispatch_round(pending, out)
        elif kind == "watchdog":
            self._watchdog_armed = False
            if self.proxy_id is None or not self._proxy_rounds:
                return out
            if self._proxy_acks_seen > self._watchdog_acks_at_arm:
                self._arm_watchdog(out)  # alive, just slow: watch another window
            else:
                self._failover(out)
        return out

    # -- network frames ---------------------------------------------------------

    def on_frame(self, message: Message) -> List[Effect]:
        out: List[Effect] = []
        if message.kind == PROXY_ACK_KIND:
            self.stats.record_frames(received=1)
            self.observer.emit(
                FRAME_RECEIVED, kind=PROXY_ACK_KIND, source=message.sender
            )
            self._proxy_acks_seen += 1
            for sub_reply in unpack_proxy_ack(message):
                pending = self._proxy_rounds.pop(
                    (sub_reply.op_id, sub_reply.round_trip), None
                )
                if pending is None:
                    continue  # straggler from a completed or replayed attempt
                if sub_reply.error is not None:
                    self._fail(
                        pending,
                        ProtocolError(
                            f"proxy failed operation {sub_reply.op_id}: "
                            f"{sub_reply.error}"
                        ),
                        out,
                    )
                    continue
                # The proxy delivers the whole quorum at once (it already
                # waited for wait_for distinct replicas and absorbed any
                # stale-epoch replays).
                pending.replies = list(sub_reply.replies)
                pending.wait_for = len(pending.replies)
                self._advance(pending, out)
            if not self._proxy_rounds:
                self._disarm_watchdog(out)
            return out
        if message.kind != BATCH_ACK_KIND:
            return out
        self.stats.record_frames(received=1)
        self.observer.emit(
            FRAME_RECEIVED, kind=BATCH_ACK_KIND, source=message.sender
        )
        for _key, sub in unpack_batch_ack(message):
            if sub is None or sub.op_id is None:
                continue
            pending = self._active.get(sub.op_id)
            if (
                pending is None
                or sub.round_trip != pending.round_trip
                or pending.awaiting_retry
            ):
                continue  # straggler from an earlier round-trip or operation
            if is_stale_reply(sub):
                # The shard was resized or moved while this round was in
                # flight; re-resolve and replay the round.  Bouncing bumps
                # round_trip, so the group's other (equally stale) replies
                # to this attempt are ignored.
                self._replay_round(pending, out)
                continue
            pending.replies.append(sub)
            if len(pending.replies) == pending.wait_for:
                self._advance(pending, out)
        return out
