"""Coalescing and frame accounting shared by every engine and adapter."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

__all__ = ["BatchStats"]


@dataclass
class BatchStats:
    """Coalescing and frame statistics for one component of one run.

    One instance belongs to one *component* -- a client driver or a proxy --
    and the frame counters follow a convention that makes merging safe
    across any set of components: every frame on the wire is counted
    **exactly once**, request frames by the component that *sent* them
    (``frames_sent``) and reply frames by the component that *received* them
    (``frames_received``).  A client behind a proxy counts its client->proxy
    requests and proxy->client acks; the proxy counts its proxy->replica
    requests and replica->proxy acks; summing the four numbers is the exact
    frame total of the deployment, with nothing counted twice.

    ``rounds``/``sub_operations`` describe this component's own coalescing
    (how many framed rounds it cut, carrying how many sub-operations), so
    merging client stats with proxy stats would conflate two different
    meanings -- keep tiers in separate instances and merge within a tier.
    """

    rounds: int = 0
    sub_operations: int = 0
    largest: int = 0
    frames_sent: int = 0
    frames_received: int = 0

    def record(self, batch_size: int) -> None:
        self.rounds += 1
        self.sub_operations += batch_size
        self.largest = max(self.largest, batch_size)

    def record_frames(self, sent: int = 0, received: int = 0) -> None:
        self.frames_sent += sent
        self.frames_received += received

    @property
    def mean_batch_size(self) -> float:
        return self.sub_operations / self.rounds if self.rounds else 0.0

    @property
    def frames_total(self) -> int:
        """Frames this component put on or took off the wire."""
        return self.frames_sent + self.frames_received

    def merge(self, other: "BatchStats") -> None:
        self.rounds += other.rounds
        self.sub_operations += other.sub_operations
        self.largest = max(self.largest, other.largest)
        self.frames_sent += other.frames_sent
        self.frames_received += other.frames_received

    def copy(self) -> "BatchStats":
        """A detached snapshot (for merge-without-mutation reporting)."""
        snapshot = BatchStats()
        snapshot.merge(self)
        return snapshot

    def as_dict(self) -> Dict[str, Union[int, float]]:
        """The canonical reporting shape, shared by the benchmark JSON and
        the CLI so every consumer assembles the same keys from one place."""
        return {
            "rounds": self.rounds,
            "sub_ops": self.sub_operations,
            "mean_batch": self.mean_batch_size,
            "largest_batch": self.largest,
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "frames_total": self.frames_total,
        }

    def summary(self) -> str:
        return (
            f"{self.rounds} batch rounds, {self.sub_operations} sub-ops, "
            f"mean batch {self.mean_batch_size:.2f}, largest {self.largest}, "
            f"{self.frames_sent} frames sent"
        )
