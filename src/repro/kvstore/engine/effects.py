"""The effect vocabulary of the sans-I/O kvstore engines.

Every engine in :mod:`repro.kvstore.engine` is a pure state machine: it
consumes decoded frames (and timer fires, and transport notifications) and
returns a list of *effects* describing what should happen in the outside
world.  The engines never touch a socket, a simulator runtime, or a clock --
executing effects is the adapter's job:

* the simulator backend maps :class:`SendFrame` onto the simulated network
  and :class:`StartTimer` onto the virtual-clock event queue;
* the asyncio backend maps :class:`SendFrame` onto stream writers and
  :class:`StartTimer` onto ``loop.call_later``.

Because both backends execute the *same* effect stream emitted by the *same*
engine classes, a feature implemented in the engine (stale-epoch replay,
proxy failover, delta view-push adoption, ...) works identically on both
transports by construction.

:class:`RetryPolicy` collects every timing knob the engines request timers
with.  The numbers are in the *adapter's* time unit -- seconds on asyncio,
virtual time units on the simulator -- so each backend configures windows
that make sense for its transport while the state machines stay shared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple, Union

from ...messages import Message
from ...protocols.base import OperationOutcome

__all__ = [
    "DIRECT_INGRESS",
    "TimerId",
    "SendFrame",
    "StartTimer",
    "CancelTimer",
    "Connect",
    "OpCompleted",
    "OpFailed",
    "Effect",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "SIM_RETRY_POLICY",
    "RECONNECT_INTERVAL",
    "MAX_TRANSIENT_RETRIES",
    "PROXY_ROUND_TIMEOUT",
    "MAX_ROUND_TIMEOUTS",
    "PROXY_FAILOVER_TIMEOUT",
]

#: The :class:`Connect` target meaning "no proxy: direct replica
#: connections" -- the ingress path of last resort once a client's proxy
#: candidate list is exhausted.
DIRECT_INGRESS = "@direct"

#: Timers are identified by tuples (kind first, then discriminators), so an
#: adapter can keep them in one dict and an engine can cancel exactly the
#: timer it armed.
TimerId = Tuple[Any, ...]


@dataclass(frozen=True)
class SendFrame:
    """Put one frame on the wire toward ``destination``.

    ``frame.receiver`` always equals ``destination``; the field is explicit
    so adapters route without re-inspecting the frame.  An adapter that
    cannot deliver the frame reports back via the engine's
    ``on_frame_undeliverable`` hook (transports with silent loss -- the
    simulated network -- simply never report).
    """

    destination: str
    frame: Message


@dataclass(frozen=True)
class StartTimer:
    """Arm (or re-arm) the timer ``timer_id`` to fire after ``delay``."""

    timer_id: TimerId
    delay: float


@dataclass(frozen=True)
class CancelTimer:
    """Disarm ``timer_id`` (a no-op if it already fired or never existed)."""

    timer_id: TimerId


@dataclass(frozen=True)
class Connect:
    """(Re)establish the ingress path ``target``.

    ``target`` is a proxy id, or :data:`DIRECT_INGRESS` for direct replica
    connections.  A connection-oriented adapter dials and then reports
    ``on_connected(target)`` / ``on_connect_failed(target)``; the simulator
    adapter, whose network needs no dialing, acknowledges immediately.
    """

    target: str


@dataclass(frozen=True)
class OpCompleted:
    """One client operation finished with ``outcome``."""

    op_id: str
    key: str
    outcome: OperationOutcome
    round_trips: int


@dataclass(frozen=True)
class OpFailed:
    """One client operation failed terminally with ``error``."""

    op_id: str
    key: str
    error: BaseException


Effect = Union[SendFrame, StartTimer, CancelTimer, Connect, OpCompleted, OpFailed]


#: Asyncio-backend defaults (seconds); see :class:`RetryPolicy`.
RECONNECT_INTERVAL = 0.05
MAX_TRANSIENT_RETRIES = 100
PROXY_ROUND_TIMEOUT = 2.0
MAX_ROUND_TIMEOUTS = 5

#: Simulator default (virtual time units) for the client's proxy-failover
#: watchdog.  Generous by design: a merely *slow* proxy resets the watchdog
#: with every ack it does deliver, so only a silent proxy -- crashed, its
#: traffic dropped -- trips it.
PROXY_FAILOVER_TIMEOUT = 200.0


@dataclass(frozen=True)
class RetryPolicy:
    """Timing knobs of the reconnect/replay/failover machinery.

    One policy is owned by a cluster and inherited by every engine built
    against it, so a whole deployment's failure windows scale together:

    * ``reconnect_interval * max_transient_retries`` bounds how long a
      caller keeps replaying over a transient outage (the kill/restart
      window);
    * ``round_timeout * max_round_timeouts`` bounds how long a proxy waits
      on a silently-lost replica round before erroring the ack
      (``round_timeout=None`` disables round timers -- the simulator's
      choice, where a lost round can only mean a crashed replica that the
      quorum already tolerates);
    * ``failover_timeout`` arms the client's proxy-death watchdog
      (``None`` disables it -- the asyncio backend's choice, where a dead
      proxy is observed as a severed TCP connection instead).

    Units are the owning backend's: seconds on asyncio, virtual time units
    on the simulator.
    """

    reconnect_interval: float = RECONNECT_INTERVAL
    max_transient_retries: int = MAX_TRANSIENT_RETRIES
    round_timeout: Optional[float] = PROXY_ROUND_TIMEOUT
    max_round_timeouts: int = MAX_ROUND_TIMEOUTS
    failover_timeout: Optional[float] = None
    #: How long a caller backs off before replaying a round that bounced
    #: off a *draining* key range (its shard view was already fresh, so
    #: replaying immediately would spin against the fence until the range
    #: installs).  ``None`` falls back to ``reconnect_interval``.
    drain_backoff: Optional[float] = None

    @property
    def transient_window(self) -> float:
        """Upper bound on the reconnect-and-replay window."""
        return self.reconnect_interval * self.max_transient_retries

    @property
    def drain_backoff_interval(self) -> float:
        """The resolved drain-bounce backoff window."""
        return (
            self.drain_backoff
            if self.drain_backoff is not None
            else self.reconnect_interval
        )

    def with_failover_timeout(self, timeout: Optional[float]) -> "RetryPolicy":
        """This policy with the watchdog window replaced."""
        return RetryPolicy(
            reconnect_interval=self.reconnect_interval,
            max_transient_retries=self.max_transient_retries,
            round_timeout=self.round_timeout,
            max_round_timeouts=self.max_round_timeouts,
            failover_timeout=timeout,
            drain_backoff=self.drain_backoff,
        )


#: What the asyncio backend runs with unless told otherwise.
DEFAULT_RETRY_POLICY = RetryPolicy()

#: What the simulator runs with: no round timers (the virtual network never
#: loses frames silently except at a crash the quorum covers), and the
#: watchdog armed in virtual time.
SIM_RETRY_POLICY = RetryPolicy(
    round_timeout=None,
    failover_timeout=PROXY_FAILOVER_TIMEOUT,
    # At the default 0.05 a long drain would be polled hundreds of times
    # per range; ~10 virtual units is a couple of network round trips.
    drain_backoff=10.0,
)
